//! The frozen pre-wheel event engine: one `BinaryHeap` of boxed closures.
//!
//! This is the original [`crate::Sim`] implementation, kept verbatim for
//! two jobs:
//!
//! * **differential oracle** — the wheel engine's property tests assert it
//!   fires the identical `(time, seq)` sequence as this heap across
//!   randomized schedules (see `event::proptests`);
//! * **legacy baseline** — `engine_bench` runs the same fixed-seed event
//!   storm through both engines and reports the wall-clock speedup, so the
//!   "fast vs. pre-PR" ratio is re-measured on every machine instead of
//!   trusting a stale absolute number.
//!
//! Do not optimize this module; its value is staying what the engine used
//! to be.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut HeapSim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap-only event queue and virtual clock (pre-wheel engine).
pub struct HeapSim<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    executed: u64,
}

impl<W> Default for HeapSim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> HeapSim<W> {
    pub fn new() -> Self {
        HeapSim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute virtual time `at`. Scheduling in the
    /// past is clamped to "now" (the event still runs, immediately next).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut HeapSim<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `after` from now.
    pub fn schedule_after(
        &mut self,
        after: SimDuration,
        f: impl FnOnce(&mut W, &mut HeapSim<W>) + 'static,
    ) {
        self.schedule_at(self.now + after, f);
    }

    /// Run the single earliest event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "time must be monotone");
                self.now = ev.at;
                self.executed += 1;
                (ev.f)(world, self);
                true
            }
            None => false,
        }
    }

    /// Run all events scheduled strictly before or at `until`. The clock is
    /// left at `until` even if the queue drains earlier.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.at <= until => {
                    let ev = self.queue.pop().expect("peeked");
                    self.now = ev.at;
                    self.executed += 1;
                    (ev.f)(world, self);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
    }

    /// Run events until the queue is empty (or `max_events` fire, as a
    /// runaway guard). Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events && self.step(world) {}
        self.executed - start
    }
}
