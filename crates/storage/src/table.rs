//! Versioned tables with snapshot visibility.

use gdb_model::{GdbError, GdbResult, Row, RowKey, Timestamp};
use gdb_simnet::SimTime;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One committed version of a row.
#[derive(Debug, Clone, PartialEq)]
pub struct Version {
    /// Commit timestamp of the writing transaction.
    pub commit_ts: Timestamp,
    /// Virtual time at which the commit completed (used to model readers
    /// waiting on a commit that is in flight at their read time).
    pub commit_vtime: SimTime,
    /// The row contents; `None` is a deletion tombstone.
    pub row: Option<Row>,
}

/// A visible row returned by a snapshot read.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibleRow<'a> {
    pub key: &'a RowKey,
    pub row: &'a Row,
    pub commit_ts: Timestamp,
    /// If the version's commit completes after the reader's current virtual
    /// time, the reader must wait until this instant (commit in flight).
    pub commit_vtime: SimTime,
}

/// The version chain for one primary key, newest last.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Append a version. Chains must stay ordered by commit timestamp —
    /// guaranteed by the lock table (a writer waits out the previous holder
    /// whose commit wait, in turn, guarantees a larger timestamp).
    fn push(&mut self, key: &RowKey, v: Version) -> GdbResult<()> {
        if let Some(last) = self.versions.last() {
            if v.commit_ts < last.commit_ts {
                return Err(GdbError::Internal(format!(
                    "version chain order violation at {key}: {} (vtime {}) after {} (vtime {})",
                    v.commit_ts, v.commit_vtime, last.commit_ts, last.commit_vtime
                )));
            }
        }
        self.versions.push(v);
        Ok(())
    }

    /// The newest version visible at `snapshot` (may be a tombstone).
    fn visible_at(&self, snapshot: Timestamp) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.commit_ts <= snapshot)
    }

    /// The newest version regardless of snapshot (for read-committed
    /// updates after a lock wait).
    fn newest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Drop versions no longer visible to any snapshot ≥ `horizon`
    /// (vacuum). Keeps the newest version at or below the horizon plus
    /// everything above it.
    fn vacuum(&mut self, horizon: Timestamp) -> usize {
        // Index of the newest version with commit_ts <= horizon.
        let keep_from = match self.versions.iter().rposition(|v| v.commit_ts <= horizon) {
            Some(i) => i,
            None => return 0,
        };
        let removed = keep_from;
        if removed > 0 {
            self.versions.drain(0..removed);
        }
        removed
    }

    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

/// A versioned table: primary-key ordered chains.
#[derive(Debug, Default, Clone)]
pub struct Table {
    rows: BTreeMap<RowKey, VersionChain>,
    /// Count of version installs (write amplification metric).
    pub versions_installed: u64,
}

impl Table {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a committed version (insert, update, or tombstone).
    /// `row = None` is a delete.
    pub fn install_version(
        &mut self,
        key: RowKey,
        row: Option<Row>,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.versions_installed += 1;
        let chain = self.rows.entry(key.clone()).or_default();
        chain.push(
            &key,
            Version {
                commit_ts,
                commit_vtime,
                row,
            },
        )
    }

    /// Point read at a snapshot. Tombstones read as `None`.
    pub fn read(&self, key: &RowKey, snapshot: Timestamp) -> Option<VisibleRow<'_>> {
        let (key, chain) = self.rows.get_key_value(key)?;
        let v = chain.visible_at(snapshot)?;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    /// The newest committed row regardless of snapshot (read-committed
    /// update path, used after acquiring the row lock).
    pub fn read_newest(&self, key: &RowKey) -> Option<VisibleRow<'_>> {
        let (key, chain) = self.rows.get_key_value(key)?;
        let v = chain.newest()?;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    /// True if any version (even a tombstone) exists for the key.
    pub fn contains_any_version(&self, key: &RowKey) -> bool {
        self.rows.contains_key(key)
    }

    /// True if the key has a live (non-tombstone) newest version.
    pub fn exists_newest(&self, key: &RowKey) -> bool {
        self.read_newest(key).is_some()
    }

    /// Range scan `[lo, hi]` (inclusive bounds; `None` = unbounded) at a
    /// snapshot, in key order.
    pub fn range(
        &self,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        snapshot: Timestamp,
    ) -> Vec<VisibleRow<'_>> {
        let lo_b = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let hi_b = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        self.rows
            .range((lo_b, hi_b))
            .filter_map(|(key, chain)| {
                chain.visible_at(snapshot).and_then(|v| {
                    v.row.as_ref().map(|row| VisibleRow {
                        key,
                        row,
                        commit_ts: v.commit_ts,
                        commit_vtime: v.commit_vtime,
                    })
                })
            })
            .collect()
    }

    /// Full scan at a snapshot.
    pub fn scan(&self, snapshot: Timestamp) -> Vec<VisibleRow<'_>> {
        self.range(None, None, snapshot)
    }

    /// Number of distinct keys (live or dead).
    pub fn key_count(&self) -> usize {
        self.rows.len()
    }

    /// Vacuum all chains up to `horizon`; returns versions removed.
    pub fn vacuum(&mut self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for chain in self.rows.values_mut() {
            removed += chain.vacuum(horizon);
        }
        // Drop keys whose only remaining version is an old tombstone.
        self.rows.retain(|_, chain| {
            !(chain.len() == 1
                && chain.versions[0].row.is_none()
                && chain.versions[0].commit_ts <= horizon)
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::Datum;

    fn k(v: i64) -> RowKey {
        RowKey::single(v)
    }

    fn r(v: i64, s: &str) -> Row {
        Row(vec![Datum::Int(v), Datum::Text(s.into())])
    }

    fn t(ts: u64) -> Timestamp {
        Timestamp(ts)
    }

    #[test]
    fn snapshot_reads_see_correct_version() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "v1")), t(10), SimTime::from_millis(10))
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "v2")), t(20), SimTime::from_millis(20))
            .unwrap();

        assert!(tbl.read(&k(1), t(5)).is_none(), "before first commit");
        assert_eq!(tbl.read(&k(1), t(10)).unwrap().row, &r(1, "v1"));
        assert_eq!(tbl.read(&k(1), t(15)).unwrap().row, &r(1, "v1"));
        assert_eq!(tbl.read(&k(1), t(20)).unwrap().row, &r(1, "v2"));
        assert_eq!(tbl.read(&k(1), t(99)).unwrap().row, &r(1, "v2"));
    }

    #[test]
    fn tombstones_hide_rows() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), None, t(20), SimTime::ZERO)
            .unwrap();
        assert!(tbl.read(&k(1), t(15)).is_some());
        assert!(tbl.read(&k(1), t(20)).is_none());
        assert!(tbl.read(&k(1), t(25)).is_none());
        assert!(!tbl.exists_newest(&k(1)));
        assert!(tbl.contains_any_version(&k(1)));
    }

    #[test]
    fn out_of_order_install_rejected() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "a")), t(20), SimTime::ZERO)
            .unwrap();
        let err = tbl
            .install_version(k(1), Some(r(1, "b")), t(10), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GdbError::Internal(_)));
    }

    #[test]
    fn equal_timestamps_allowed() {
        // Replays of idempotent records may install at the same ts.
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "a")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "b")), t(10), SimTime::ZERO)
            .unwrap();
        assert_eq!(tbl.read(&k(1), t(10)).unwrap().row, &r(1, "b"));
    }

    #[test]
    fn range_scan_is_key_ordered_and_snapshot_filtered() {
        let mut tbl = Table::new();
        for i in [5i64, 1, 3, 2, 4] {
            tbl.install_version(k(i), Some(r(i, "x")), t(10), SimTime::ZERO)
                .unwrap();
        }
        tbl.install_version(k(6), Some(r(6, "late")), t(50), SimTime::ZERO)
            .unwrap();
        let rows = tbl.range(Some(&k(2)), Some(&k(5)), t(20));
        let keys: Vec<i64> = rows.iter().map(|v| v.key.0[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![2, 3, 4, 5]);
        // Row committed at 50 invisible at snapshot 20, visible at 50.
        assert_eq!(tbl.scan(t(20)).len(), 5);
        assert_eq!(tbl.scan(t(50)).len(), 6);
    }

    #[test]
    fn read_newest_ignores_snapshot() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "old")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "new")), t(90), SimTime::ZERO)
            .unwrap();
        assert_eq!(tbl.read_newest(&k(1)).unwrap().row, &r(1, "new"));
    }

    #[test]
    fn vacuum_prunes_dead_versions() {
        let mut tbl = Table::new();
        for ts in [10u64, 20, 30, 40] {
            tbl.install_version(k(1), Some(r(1, "v")), t(ts), SimTime::ZERO)
                .unwrap();
        }
        let removed = tbl.vacuum(t(30));
        assert_eq!(removed, 2); // versions at 10 and 20 removed; 30 kept
        assert_eq!(tbl.read(&k(1), t(30)).unwrap().commit_ts, t(30));
        assert_eq!(tbl.read(&k(1), t(99)).unwrap().commit_ts, t(40));
    }

    #[test]
    fn vacuum_drops_old_tombstoned_keys() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), None, t(20), SimTime::ZERO)
            .unwrap();
        tbl.vacuum(t(50));
        assert_eq!(tbl.key_count(), 0);
    }

    #[test]
    fn commit_vtime_propagates_to_reads() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::from_millis(77))
            .unwrap();
        assert_eq!(
            tbl.read(&k(1), t(10)).unwrap().commit_vtime,
            SimTime::from_millis(77)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gdb_model::Datum;
    use proptest::prelude::*;

    proptest! {
        /// Visibility is the newest version with commit_ts <= snapshot —
        /// checked against a naive reference model.
        #[test]
        fn visibility_matches_reference(
            writes in proptest::collection::vec((0i64..5, 1u64..100, any::<bool>()), 1..40),
            snapshot in 0u64..120,
        ) {
            let mut sorted = writes.clone();
            // Install in ts order per key to respect chain ordering.
            sorted.sort_by_key(|(_, ts, _)| *ts);
            let mut tbl = Table::new();
            for (key, ts, delete) in &sorted {
                let row = if *delete { None } else {
                    Some(Row(vec![Datum::Int(*key), Datum::Int(*ts as i64)]))
                };
                tbl.install_version(
                    RowKey::single(*key),
                    row,
                    Timestamp(*ts),
                    SimTime::ZERO,
                ).unwrap();
            }
            // Reference: for each key, last write with ts <= snapshot.
            for key in 0i64..5 {
                let expected = sorted
                    .iter().rfind(|(k, ts, _)| *k == key && *ts <= snapshot)
                    .and_then(|(_, ts, delete)| {
                        if *delete { None } else { Some(*ts as i64) }
                    });
                let got = tbl
                    .read(&RowKey::single(key), Timestamp(snapshot))
                    .map(|v| v.row.0[1].as_int().unwrap());
                prop_assert_eq!(got, expected, "key {}", key);
            }
        }

        /// Vacuum never changes what snapshots at/above the horizon see.
        #[test]
        fn vacuum_preserves_visible_state(
            writes in proptest::collection::vec((0i64..3, 1u64..50), 1..30),
            horizon in 1u64..60,
        ) {
            let mut sorted = writes.clone();
            sorted.sort_by_key(|(_, ts)| *ts);
            let mut tbl = Table::new();
            for (key, ts) in &sorted {
                tbl.install_version(
                    RowKey::single(*key),
                    Some(Row(vec![Datum::Int(*ts as i64)])),
                    Timestamp(*ts),
                    SimTime::ZERO,
                ).unwrap();
            }
            let before: Vec<_> = (horizon..62).map(|s| {
                (0i64..3).map(|k| tbl.read(&RowKey::single(k), Timestamp(s)).map(|v| v.row.clone()))
                    .collect::<Vec<_>>()
            }).collect();
            tbl.vacuum(Timestamp(horizon));
            let after: Vec<_> = (horizon..62).map(|s| {
                (0i64..3).map(|k| tbl.read(&RowKey::single(k), Timestamp(s)).map(|v| v.row.clone()))
                    .collect::<Vec<_>>()
            }).collect();
            prop_assert_eq!(before, after);
        }
    }
}
