//! Fig. 6d — Sysbench Point-Select on the Three-City cluster. With hash
//! sharding, ~2/3 of uniform keys live on a shard whose primary is remote
//! from the submitting CN; GlobalDB reads them from local replicas
//! instead. The paper reports up to 8.9× improvement.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin fig6d`

use gdb_bench::{artifact, emit_artifact, print_table, ratio, series_from_run, BenchParams};
use gdb_workloads::driver::{run_workload, Workload};
use gdb_workloads::sysbench::{SysbenchMode, SysbenchScale, SysbenchWorkload};
use globaldb::{Cluster, ClusterConfig};

fn main() {
    let params = BenchParams::from_env();
    let mut art = artifact("fig6d", &params);
    let scale = SysbenchScale::small();

    let run = |config: ClusterConfig| {
        let mut cluster = Cluster::new(config);
        let mut wl = SysbenchWorkload::new(scale, SysbenchMode::PointSelect, params.seed);
        wl.setup(&mut cluster).expect("sysbench setup");
        let report = run_workload(&mut cluster, &mut wl, params.run);
        (cluster, report)
    };

    let (mut c_base, baseline) = run(ClusterConfig::baseline_three_city());
    let (mut cluster, globaldb) = run(ClusterConfig::globaldb_three_city());
    art.series
        .push(series_from_run("baseline", &mut c_base, &baseline));
    art.series
        .push(series_from_run("globaldb", &mut cluster, &globaldb));

    let b = baseline.throughput_per_sec();
    let g = globaldb.throughput_per_sec();
    let remote_frac = |r: &gdb_workloads::WorkloadReport| {
        let total = r.reads_on_primary + r.reads_on_replica;
        if total == 0 {
            0.0
        } else {
            r.reads_on_replica as f64 / total as f64
        }
    };
    let rows = vec![
        vec![
            "baseline (primary reads)".into(),
            format!("{b:.0}"),
            "1.00x".into(),
            format!("{}", baseline.mean_latency("point_select")),
            format!("{:.0}%", 100.0 * remote_frac(&baseline)),
        ],
        vec![
            "GlobalDB (ROR)".into(),
            format!("{g:.0}"),
            ratio(g, b),
            format!("{}", globaldb.mean_latency("point_select")),
            format!("{:.0}%", 100.0 * remote_frac(&globaldb)),
        ],
    ];
    print_table(
        "Fig. 6d — Sysbench Point-Select on Three-City",
        &[
            "system",
            "QPS (sim)",
            "speedup",
            "mean latency",
            "replica-read share",
        ],
        &rows,
    );
    println!(
        "Paper shape: up to 8.9x from reading local replicas (2/3 of \
         tuples are remote for the baseline). RCP lag: {:.1} ms.",
        gdb_bench::rcp_lag_ms(&cluster)
    );
    emit_artifact(&art);
}
