//! Shared data-model types for the GaussDB-Global reproduction.
//!
//! Every other crate in the workspace builds on these primitives: identifier
//! newtypes, the [`Timestamp`] ordering domain that the GTM / GClock / DUAL
//! transaction managers all produce into, SQL values ([`Datum`]), rows,
//! schemas, and the common error type.

pub mod datum;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod intern;
pub mod row;
pub mod schema;
pub mod timestamp;

pub use datum::{DataType, Datum};
pub use error::{GdbError, GdbResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{IndexId, ShardId, TableId, TxnId};
pub use intern::{Interner, Sym};
pub use row::{Row, RowKey};
pub use schema::{ColumnDef, DistributionKind, SchemaBuilder, TableSchema};
pub use timestamp::{Timestamp, TimestampBound};
