//! Ablation — TCP tuning: Nagle's algorithm and congestion control
//! (paper §V-A: GlobalDB disables Nagle and uses BBR).
//!
//! Runs the synchronous-replication configuration on the Three-City WAN
//! with the four combinations of {Nagle on/off} × {Reno, BBR}. Sync
//! commits wait on WAN shipping, so both knobs surface directly in commit
//! latency and throughput.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_network`

use gdb_bench::{print_table, BenchParams};
use gdb_simnet::{CongestionModel, LinkParams, SimDuration};
use gdb_workloads::driver::{run_workload, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccWorkload};
use globaldb::{Cluster, ClusterConfig, ReplicationMode};

fn main() {
    let params = BenchParams::from_env();
    let reno = CongestionModel::Reno {
        window_bytes: 1 << 20,
    };
    let combos = [
        ("Nagle on,  Reno", true, reno),
        ("Nagle on,  BBR", true, CongestionModel::Bbr),
        ("Nagle off, Reno", false, reno),
        ("Nagle off, BBR (GlobalDB)", false, CongestionModel::Bbr),
    ];
    let mut rows = Vec::new();
    for (label, nagle, congestion) in combos {
        let config = ClusterConfig {
            replication: ReplicationMode::SyncRemoteQuorum { quorum: 1 },
            ..ClusterConfig::globaldb_three_city()
        };
        let mut cluster = Cluster::new(config);
        // Apply the combo to every inter-region link before loading.
        let regions = cluster.db.regions().to_vec();
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                let base = cluster.db.topo().link(regions[i], regions[j]);
                cluster.db.topo_mut().set_link(
                    regions[i],
                    regions[j],
                    LinkParams {
                        nagle,
                        nagle_delay: SimDuration::from_millis(5),
                        congestion,
                        ..base
                    },
                );
            }
        }
        let mut wl = TpccWorkload::new(params.scale, TpccMix::standard(), params.seed);
        wl.set_all_local();
        wl.setup(&mut cluster).expect("setup");
        let mut report = run_workload(&mut cluster, &mut wl, params.run);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", report.tpmc()),
            format!("{}", report.mean_latency("new_order")),
            format!("{}", report.p99_latency("new_order")),
        ]);
    }
    print_table(
        "Ablation — Nagle × congestion control (sync replication, Three-City)",
        &[
            "network stack",
            "tpmC (sim)",
            "NewOrder mean",
            "NewOrder p99",
        ],
        &rows,
    );
    println!("Expected: Nagle-off and BBR each improve sync-commit latency; combined is best.");
}
