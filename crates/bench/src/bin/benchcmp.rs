//! Bench-artifact tooling for the CI perf gate:
//!
//! ```text
//! benchcmp merge OUT.json IN1.json [IN2.json ...]
//! benchcmp check BASELINE.json CURRENT.json [--tolerance 0.20]
//! benchcmp validate FILE.json [FILE.json ...]
//! ```
//!
//! `merge` bundles several `gdb-bench/v1` artifacts into one
//! `gdb-bench/bundle/v1` document. `check` compares current throughput
//! against a committed baseline and exits non-zero if any series
//! regressed beyond the tolerance (default 20%) or disappeared.
//! `validate` parses every given artifact file and fails on schema
//! drift (bad gate config, broken quantile ordering, duplicate or
//! missing series) — the lint stage runs it over all committed
//! `BENCH_*.json` baselines so drift is caught before a bench run.
//! `.toml` arguments are linted as scenario files instead (unknown
//! tables/keys, dangling plan or fault names), so the same stage covers
//! the committed `scenarios/*.toml`.

use gdb_obs::{bundle, compare_artifacts, load_artifacts, validate_artifacts, BenchArtifact, Json};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: benchcmp merge OUT.json IN.json [IN.json ...]\n\
         \x20      benchcmp check BASELINE.json CURRENT.json [--tolerance 0.20]\n\
         \x20      benchcmp validate FILE.json|SCENARIO.toml [...]"
    );
    std::process::exit(2);
}

fn read_artifacts(path: &str) -> Vec<BenchArtifact> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchcmp: read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("benchcmp: parse {path}: {e}");
        std::process::exit(2);
    });
    load_artifacts(&doc).unwrap_or_else(|e| {
        eprintln!("benchcmp: {path}: {e}");
        std::process::exit(2);
    })
}

fn merge(out: &str, inputs: &[String]) -> ExitCode {
    let mut all = Vec::new();
    for path in inputs {
        all.extend(read_artifacts(path));
    }
    let doc = bundle(&all).to_pretty();
    if let Err(e) = std::fs::write(out, doc) {
        eprintln!("benchcmp: write {out}: {e}");
        return ExitCode::from(2);
    }
    println!("merged {} artifacts into {out}", all.len());
    ExitCode::SUCCESS
}

fn check(baseline: &str, current: &str, tolerance: f64) -> ExitCode {
    let base = read_artifacts(baseline);
    let cur = read_artifacts(current);
    let comparisons = compare_artifacts(&base, &cur, tolerance);
    if comparisons.is_empty() {
        eprintln!("benchcmp: baseline {baseline} has no series to compare");
        return ExitCode::from(2);
    }
    let mut failed = 0;
    for c in &comparisons {
        println!("{}", c.render());
        if !c.ok {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!(
            "benchcmp: {failed}/{} comparisons regressed more than {:.0}% vs {baseline}",
            comparisons.len(),
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "all {} comparisons within {:.0}% of {baseline}",
            comparisons.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}

fn validate(paths: &[String]) -> ExitCode {
    let mut problems = 0;
    let mut artifacts = 0;
    let mut scenarios = 0;
    for path in paths {
        if path.ends_with(".toml") {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("benchcmp: read {path}: {e}");
                std::process::exit(2);
            });
            scenarios += 1;
            for msg in gdb_chaos::scenario::lint(&text) {
                eprintln!("benchcmp: {path}: {msg}");
                problems += 1;
            }
            continue;
        }
        let arts = read_artifacts(path);
        artifacts += arts.len();
        for msg in validate_artifacts(&arts) {
            eprintln!("benchcmp: {path}: {msg}");
            problems += 1;
        }
    }
    if problems > 0 {
        eprintln!(
            "benchcmp: {problems} problem(s) across {} file(s)",
            paths.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "validated {artifacts} artifacts and {scenarios} scenario(s) across {} file(s)",
            paths.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("merge") if args.len() >= 3 => merge(&args[1], &args[2..]),
        Some("validate") if args.len() >= 2 => validate(&args[1..]),
        Some("check") if args.len() >= 3 => {
            let mut tolerance = 0.20;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--tolerance" => {
                        i += 1;
                        tolerance = args
                            .get(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage());
                    }
                    _ => usage(),
                }
                i += 1;
            }
            check(&args[1], &args[2], tolerance)
        }
        _ => usage(),
    }
}
