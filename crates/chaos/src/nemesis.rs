//! The nemesis: a seeded random fault-schedule generator.
//!
//! Episodes are drawn one after another from a `SmallRng`; each pairs an
//! injection with its recovery, so the cluster keeps making progress over
//! a long run while every fault family still gets exercised. The schedule
//! is a pure function of `(seed, shape, config)` — replaying a seed
//! replays the exact schedule.

use crate::fault::Fault;
use crate::plan::FaultPlan;
use globaldb::{Cluster, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What the generator needs to know about the cluster it will torment.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    pub shards: usize,
    pub replicas_per_shard: usize,
    pub cns: usize,
    pub regions: usize,
}

impl ClusterShape {
    pub fn of(cluster: &Cluster) -> Self {
        ClusterShape {
            shards: cluster.db.shards.len(),
            replicas_per_shard: cluster
                .db
                .shards
                .first()
                .map(|s| s.replicas.len())
                .unwrap_or(0),
            cns: cluster.db.cns.len(),
            regions: cluster.db.regions.len(),
        }
    }
}

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct NemesisConfig {
    pub seed: u64,
    /// First injection fires here.
    pub start: SimTime,
    /// No injection fires at or after `start + duration`; recoveries may
    /// land slightly later (every episode recovers).
    pub duration: SimDuration,
}

impl NemesisConfig {
    pub fn new(seed: u64, start: SimTime, duration: SimDuration) -> Self {
        NemesisConfig {
            seed,
            start,
            duration,
        }
    }
}

/// Generate a random, fully paired fault schedule.
pub fn generate(cfg: &NemesisConfig, shape: &ClusterShape) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut plan = FaultPlan::new(format!("nemesis-{}", cfg.seed));
    let end = cfg.start + cfg.duration;
    let mut t = cfg.start;

    while t < end {
        let hold = SimDuration::from_millis(rng.gen_range(80u64..400));
        let kind = rng.gen_range(0u32..7);
        match kind {
            0 => {
                // Primary crash, recovered either in place (WAL catch-up)
                // or by failover + rejoin of the old primary.
                let shard = rng.gen_range(0..shape.shards);
                plan = plan.at(t, Fault::CrashPrimary { shard });
                if shape.replicas_per_shard > 0 && rng.gen_bool(0.5) {
                    let replica = rng.gen_range(0..shape.replicas_per_shard);
                    plan = plan
                        .at(t + hold, Fault::PromoteReplica { shard, replica })
                        .at(t + hold + hold, Fault::RejoinOldPrimary { shard });
                } else {
                    plan = plan.at(t + hold, Fault::RestartPrimary { shard });
                }
            }
            1 => {
                let shard = rng.gen_range(0..shape.shards);
                let replica = rng.gen_range(0..shape.replicas_per_shard.max(1));
                plan = plan
                    .at(t, Fault::CrashReplica { shard, replica })
                    .at(t + hold, Fault::RestartReplica { shard, replica });
            }
            2 => {
                plan = plan.at(t, Fault::CrashGtm).at(t + hold, Fault::RestartGtm);
            }
            3 => {
                let cn = rng.gen_range(0..shape.cns);
                plan = plan
                    .at(t, Fault::CrashCn { cn })
                    .at(t + hold, Fault::RestartCn { cn });
            }
            4 if shape.regions > 1 => {
                let a = rng.gen_range(0..shape.regions);
                let mut b = rng.gen_range(0..shape.regions);
                if b == a {
                    b = (a + 1) % shape.regions;
                }
                plan = plan
                    .at(t, Fault::PartitionRegions { a, b })
                    .at(t + hold, Fault::HealRegions { a, b });
            }
            5 => {
                let extra = SimDuration::from_micros(rng.gen_range(500u64..8_000));
                plan = plan
                    .at(t, Fault::DelaySpike { extra })
                    .at(t + hold, Fault::ClearDelay);
            }
            _ => {
                let cn = rng.gen_range(0..shape.cns);
                plan = plan
                    .at(t, Fault::ClockSyncOutage { cn })
                    .at(t + hold, Fault::ClockSyncResume { cn });
            }
        }
        // Quiet gap before the next episode.
        t = t + hold + SimDuration::from_millis(rng.gen_range(100u64..400));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ClusterShape {
        ClusterShape {
            shards: 6,
            replicas_per_shard: 2,
            cns: 6,
            regions: 3,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = NemesisConfig::new(7, SimTime::from_millis(500), SimDuration::from_secs(5));
        let a = generate(&cfg, &shape());
        let b = generate(&cfg, &shape());
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let s = shape();
        let a = generate(
            &NemesisConfig::new(1, SimTime::from_millis(500), SimDuration::from_secs(5)),
            &s,
        );
        let b = generate(
            &NemesisConfig::new(2, SimTime::from_millis(500), SimDuration::from_secs(5)),
            &s,
        );
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn every_injection_is_paired_with_recovery() {
        let cfg = NemesisConfig::new(11, SimTime::from_millis(500), SimDuration::from_secs(10));
        let plan = generate(&cfg, &shape());
        let injections = plan
            .events
            .iter()
            .filter(|e| e.fault.is_injection())
            .count();
        let recoveries = plan.events.len() - injections;
        // Failover episodes emit two recovery events (promote + rejoin),
        // so recoveries >= injections.
        assert!(recoveries >= injections, "{recoveries} < {injections}");
    }
}
