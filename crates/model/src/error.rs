//! The workspace-wide error type.

use std::fmt;

/// Errors surfaced by any layer of the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdbError {
    /// Schema/catalog violations (unknown table, type mismatch, ...).
    Schema(String),
    /// SQL parse errors.
    Parse(String),
    /// Planner/binder errors.
    Plan(String),
    /// Runtime execution errors.
    Execution(String),
    /// Transaction aborted (serialization failure, mode transition, ...).
    TxnAborted(String),
    /// Write conflict: another transaction holds a lock / wrote first.
    WriteConflict(String),
    /// The addressed node is down or unreachable.
    NodeUnavailable(String),
    /// No replica can satisfy the requested freshness bound.
    FreshnessUnsatisfiable(String),
    /// The request carried a stale routing epoch (shard ownership moved
    /// under it); the client must refresh its route table and retry.
    StaleRoute(String),
    /// Duplicate primary key on insert.
    DuplicateKey(String),
    /// Row not found where one was required.
    NotFound(String),
    /// Internal invariant violation — a bug if ever observed.
    Internal(String),
}

impl fmt::Display for GdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdbError::Schema(m) => write!(f, "schema error: {m}"),
            GdbError::Parse(m) => write!(f, "parse error: {m}"),
            GdbError::Plan(m) => write!(f, "plan error: {m}"),
            GdbError::Execution(m) => write!(f, "execution error: {m}"),
            GdbError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            GdbError::WriteConflict(m) => write!(f, "write conflict: {m}"),
            GdbError::NodeUnavailable(m) => write!(f, "node unavailable: {m}"),
            GdbError::FreshnessUnsatisfiable(m) => write!(f, "freshness unsatisfiable: {m}"),
            GdbError::StaleRoute(m) => write!(f, "stale routing epoch: {m}"),
            GdbError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            GdbError::NotFound(m) => write!(f, "not found: {m}"),
            GdbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for GdbError {}

/// Convenience alias used across the workspace.
pub type GdbResult<T> = Result<T, GdbError>;

impl GdbError {
    /// True for errors a client is expected to retry (aborts / conflicts),
    /// as opposed to programming or schema errors.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GdbError::TxnAborted(_)
                | GdbError::WriteConflict(_)
                | GdbError::NodeUnavailable(_)
                | GdbError::StaleRoute(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(GdbError::Parse("x".into()).to_string(), "parse error: x");
    }

    #[test]
    fn retryability() {
        assert!(GdbError::WriteConflict("k".into()).is_retryable());
        assert!(GdbError::TxnAborted("m".into()).is_retryable());
        assert!(GdbError::StaleRoute("epoch 3 < 4".into()).is_retryable());
        assert!(!GdbError::Schema("s".into()).is_retryable());
        assert!(!GdbError::DuplicateKey("d".into()).is_retryable());
    }
}
