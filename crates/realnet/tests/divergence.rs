//! Sim/real divergence harness: the chaos invariant oracle runs the
//! same probe schedule on every execution backend, and the backends
//! must agree.
//!
//! "Agree" means three things:
//!
//! 1. the oracle's invariants (external consistency, RCP monotonicity,
//!    durability of acked writes) hold on *every* backend — real
//!    threads and sockets introduce real concurrency in delivery, but
//!    the transaction logic still runs on the virtual-time driver, so
//!    nothing the oracle checks may break;
//! 2. the committed-write sets of sim and real runs coincide (measured
//!    as Jaccard overlap — wall-clock delays may tip an occasional
//!    probe across a timeout boundary, but nearly all commits must
//!    match);
//! 3. the plane-vs-silo accounting cross-check passes: every message
//!    the driver charged through a real transport was routed by exactly
//!    one silo.
//!
//! The fault tests reuse the chaos plan format unchanged
//! ([`FaultPlan::at`] with [`Fault`] variants): delay-spike and
//! partition nemeses manipulate the shared topology, which the real
//! transports consult per message — so the same plan runs *physically*
//! (injected delay actually slept, partitioned links actually refusing
//! delivery) on thread and TCP backends.

use gdb_chaos::trace::new_trace;
use gdb_chaos::{Fault, FaultPlan, Oracle};
use gdb_realnet::{Backend, RealCluster};
use gdb_simnet::{SimDuration, SimTime};
use globaldb::ClusterConfig;
use std::collections::BTreeSet;
use std::rc::Rc;

const KEYS: i64 = 8;

struct RunOutcome {
    backend: Backend,
    violations: Vec<String>,
    /// Every acknowledged probe write as `(key, value)` — per-key values
    /// are the strictly increasing `1, 2, 3, ...` chain, so two runs
    /// that committed the same probes produce identical sets.
    committed: BTreeSet<(i64, i64)>,
    probe_writes: u64,
}

/// Run the oracle probe schedule (plus an optional fault plan) on one
/// backend and collect the outcome.
fn oracle_run(backend: Backend, plan: Option<FaultPlan>, until: SimTime) -> RunOutcome {
    let mut rc = RealCluster::launch(ClusterConfig::globaldb_three_city(), backend);
    let oracle = Oracle::install(&mut rc.cluster, KEYS).expect("oracle install");
    let trace = new_trace();
    if let Some(plan) = plan {
        plan.schedule(&mut rc.cluster, Rc::clone(&trace));
    }
    oracle.schedule(
        &mut rc.cluster,
        SimTime::from_millis(250),
        SimTime::from_millis(1750),
        SimDuration::from_millis(50),
        &trace,
    );
    rc.cluster.run_until(until);
    // No failover faults in these plans, so the strict final-value
    // durability check applies (empty failover list).
    oracle.final_check(&mut rc.cluster, false, &[], SimDuration::ZERO);
    let report = rc.shutdown();
    report
        .verify_against_plane(rc.cluster.db.plane())
        .expect("plane/silo accounting must agree");
    let state = oracle.state.borrow();
    RunOutcome {
        backend,
        violations: state.violations.clone(),
        committed: state.history.iter().map(|r| (r.key, r.value)).collect(),
        probe_writes: state.writes_committed,
    }
}

fn assert_clean(r: &RunOutcome) {
    assert!(
        r.violations.is_empty(),
        "oracle violations on {} backend: {:?}",
        r.backend.label(),
        r.violations
    );
    assert!(
        r.probe_writes > 0,
        "{} backend committed no probe writes",
        r.backend.label()
    );
}

/// Jaccard overlap of two committed-write sets.
fn agreement(a: &BTreeSet<(i64, i64)>, b: &BTreeSet<(i64, i64)>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

#[test]
fn no_fault_oracle_passes_on_every_backend_and_committed_sets_agree() {
    let until = SimTime::from_secs(2);
    let sim = oracle_run(Backend::Sim, None, until);
    let thread = oracle_run(Backend::Thread, None, until);
    let tcp = oracle_run(Backend::Tcp, None, until);
    for r in [&sim, &thread, &tcp] {
        assert_clean(r);
    }
    for other in [&thread, &tcp] {
        let overlap = agreement(&sim.committed, &other.committed);
        println!(
            "committed-set agreement sim vs {}: {:.3} ({} sim / {} {} writes)",
            other.backend.label(),
            overlap,
            sim.committed.len(),
            other.committed.len(),
            other.backend.label(),
        );
        assert!(
            overlap >= 0.9,
            "sim and {} committed sets diverged: agreement {:.3}",
            other.backend.label(),
            overlap
        );
    }
}

/// The delay-spike + partition nemesis families, expressed in the
/// ordinary chaos plan format, executed physically on real backends.
fn delay_and_partition_plan() -> FaultPlan {
    FaultPlan::new("realnet_delay_partition")
        .at(
            SimTime::from_millis(1000),
            Fault::DelaySpike {
                extra: SimDuration::from_millis(2),
            },
        )
        .at(SimTime::from_millis(1400), Fault::ClearDelay)
        .at(
            SimTime::from_millis(1600),
            Fault::PartitionRegions { a: 0, b: 1 },
        )
        .at(
            SimTime::from_millis(2000),
            Fault::HealRegions { a: 0, b: 1 },
        )
}

#[test]
fn chaos_fault_plan_runs_physically_on_thread_backend() {
    let r = oracle_run(
        Backend::Thread,
        Some(delay_and_partition_plan()),
        SimTime::from_millis(2500),
    );
    assert_clean(&r);
}

#[test]
fn chaos_fault_plan_runs_physically_on_tcp_backend() {
    let r = oracle_run(
        Backend::Tcp,
        Some(delay_and_partition_plan()),
        SimTime::from_millis(2500),
    );
    assert_clean(&r);
}

/// Realnet-native socket-level faults (link drop + link delay via the
/// [`gdb_realnet::FaultController`]) scheduled mid-run in chaos-plan
/// style: the dropped link behaves like a partition at the connection
/// layer, and after healing the oracle's strict durability check must
/// still pass.
#[test]
fn link_drop_and_delay_hooks_hold_invariants_on_tcp_backend() {
    let mut rc = RealCluster::launch(ClusterConfig::globaldb_three_city(), Backend::Tcp);
    let faults = rc.faults();
    let oracle = Oracle::install(&mut rc.cluster, KEYS).expect("oracle install");
    let trace = new_trace();
    oracle.schedule(
        &mut rc.cluster,
        SimTime::from_millis(250),
        SimTime::from_millis(1750),
        SimDuration::from_millis(50),
        &trace,
    );
    // Host pair 0↔1 carries the bulk of cross-region traffic in the
    // three-city layout; drop it for 400 virtual ms, then slow it.
    let f = faults.clone();
    rc.cluster
        .sim
        .schedule_at(SimTime::from_millis(1000), move |_, _| {
            f.drop_link(0, 1);
        });
    let f = faults.clone();
    rc.cluster
        .sim
        .schedule_at(SimTime::from_millis(1400), move |_, _| {
            f.heal_link(0, 1);
            f.set_link_delay(0, 1, SimDuration::from_millis(1));
        });
    let f = faults.clone();
    rc.cluster
        .sim
        .schedule_at(SimTime::from_millis(1800), move |_, _| {
            f.heal_all();
        });
    rc.cluster.run_until(SimTime::from_millis(2500));
    oracle.final_check(&mut rc.cluster, false, &[], SimDuration::ZERO);
    let report = rc.shutdown();
    report
        .verify_against_plane(rc.cluster.db.plane())
        .expect("plane/silo accounting must agree");
    let state = oracle.state.borrow();
    assert!(
        state.violations.is_empty(),
        "oracle violations under link faults: {:?}",
        state.violations
    );
    assert!(state.writes_committed > 0);
    assert!(
        state.writes_rejected > 0,
        "the dropped link must have failed some probe writes"
    );
}
