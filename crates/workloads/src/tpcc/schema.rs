//! The TPC-C schema (nine tables), distributed by warehouse as the paper's
//! deployment does; `ITEM` is replicated to every shard.

/// DDL statements creating the full TPC-C schema, in dependency order.
pub fn ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE warehouse (
            w_id INT NOT NULL, w_name TEXT, w_tax DECIMAL, w_ytd DECIMAL,
            PRIMARY KEY (w_id)) DISTRIBUTE BY HASH(w_id)",
        "CREATE TABLE district (
            d_w_id INT NOT NULL, d_id INT NOT NULL, d_name TEXT,
            d_tax DECIMAL, d_ytd DECIMAL, d_next_o_id INT,
            PRIMARY KEY (d_w_id, d_id)) DISTRIBUTE BY HASH(d_w_id)",
        "CREATE TABLE customer (
            c_w_id INT NOT NULL, c_d_id INT NOT NULL, c_id INT NOT NULL,
            c_last TEXT, c_first TEXT, c_credit TEXT,
            c_discount DECIMAL, c_balance DECIMAL, c_ytd_payment DECIMAL,
            c_payment_cnt INT, c_delivery_cnt INT, c_data TEXT,
            PRIMARY KEY (c_w_id, c_d_id, c_id)) DISTRIBUTE BY HASH(c_w_id)",
        "CREATE INDEX cust_by_last ON customer (c_w_id, c_d_id, c_last)",
        "CREATE TABLE history (
            h_w_id INT NOT NULL, h_id INT NOT NULL,
            h_d_id INT, h_c_w_id INT, h_c_d_id INT, h_c_id INT,
            h_amount DECIMAL, h_date INT,
            PRIMARY KEY (h_w_id, h_id)) DISTRIBUTE BY HASH(h_w_id)",
        "CREATE TABLE orders (
            o_w_id INT NOT NULL, o_d_id INT NOT NULL, o_id INT NOT NULL,
            o_c_id INT, o_carrier_id INT, o_ol_cnt INT, o_entry_d INT,
            PRIMARY KEY (o_w_id, o_d_id, o_id)) DISTRIBUTE BY HASH(o_w_id)",
        "CREATE INDEX ord_by_cust ON orders (o_w_id, o_d_id, o_c_id)",
        "CREATE TABLE new_order (
            no_w_id INT NOT NULL, no_d_id INT NOT NULL, no_o_id INT NOT NULL,
            PRIMARY KEY (no_w_id, no_d_id, no_o_id)) DISTRIBUTE BY HASH(no_w_id)",
        "CREATE TABLE order_line (
            ol_w_id INT NOT NULL, ol_d_id INT NOT NULL, ol_o_id INT NOT NULL,
            ol_number INT NOT NULL, ol_i_id INT, ol_supply_w_id INT,
            ol_delivery_d INT, ol_quantity INT, ol_amount DECIMAL,
            PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)) DISTRIBUTE BY HASH(ol_w_id)",
        "CREATE TABLE item (
            i_id INT NOT NULL, i_name TEXT, i_price DECIMAL, i_data TEXT,
            PRIMARY KEY (i_id)) DISTRIBUTE BY REPLICATION",
        "CREATE TABLE stock (
            s_w_id INT NOT NULL, s_i_id INT NOT NULL,
            s_quantity INT, s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data TEXT,
            PRIMARY KEY (s_w_id, s_i_id)) DISTRIBUTE BY HASH(s_w_id)",
    ]
}
