//! Declarative fault plans and their scheduling onto the event engine.

use crate::fault::{ChaosState, Fault};
use crate::trace::TraceHandle;
use globaldb::{Cluster, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One fault at one instant of virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub fault: Fault,
}

/// A named, ordered fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub name: String,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Append a fault at `at`.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// True if the plan contains a promotion (possible data loss under
    /// asynchronous replication — the oracle relaxes durability checks).
    pub fn has_promotion(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.fault, Fault::PromoteReplica { .. }))
    }

    /// Schedule every fault of the plan as a first-class simulation event
    /// on `cluster`, recording each application into `trace`.
    pub fn schedule(&self, cluster: &mut Cluster, trace: TraceHandle) {
        let state = Rc::new(RefCell::new(ChaosState::default()));
        for ev in &self.events {
            let fault = ev.fault.clone();
            let trace = Rc::clone(&trace);
            let state = Rc::clone(&state);
            cluster.sim.schedule_at(ev.at, move |w, sim| {
                let now = sim.now();
                let line = fault.apply(w, sim, &mut state.borrow_mut(), now);
                trace.borrow_mut().record(now, line);
            });
        }
    }
}

/// Canned plans used by the integration suite and the `nemesis` binary.
/// All times are offsets the runner shifts past warmup.
pub mod canned {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Primary failover drill: crash a primary mid-traffic, promote a
    /// replica, re-admit the old primary as a replica, and separately
    /// crash + restart another primary in place (WAL catch-up).
    pub fn primary_failover() -> FaultPlan {
        FaultPlan::new("primary-failover")
            .at(t(300), Fault::CrashPrimary { shard: 0 })
            .at(
                t(600),
                Fault::PromoteReplica {
                    shard: 0,
                    replica: 0,
                },
            )
            .at(t(1000), Fault::RejoinOldPrimary { shard: 0 })
            .at(t(1400), Fault::CrashPrimary { shard: 1 })
            .at(t(1800), Fault::RestartPrimary { shard: 1 })
    }

    /// Network chaos: a region partition that heals, a `tc`-style delay
    /// spike, and a clock-sync outage riding on top.
    pub fn partition_and_delay() -> FaultPlan {
        FaultPlan::new("partition-and-delay")
            .at(t(300), Fault::PartitionRegions { a: 0, b: 1 })
            .at(t(800), Fault::HealRegions { a: 0, b: 1 })
            .at(
                t(1000),
                Fault::DelaySpike {
                    extra: SimDuration::from_millis(5),
                },
            )
            .at(t(1500), Fault::ClearDelay)
            .at(t(1700), Fault::ClockSyncOutage { cn: 1 })
            .at(t(2300), Fault::ClockSyncResume { cn: 1 })
    }

    /// Control-plane chaos: GTM crash/failover, a collector-CN crash and
    /// restart, and a replica crash with WAL catch-up restart.
    pub fn gtm_and_collector() -> FaultPlan {
        FaultPlan::new("gtm-and-collector")
            .at(t(300), Fault::CrashGtm)
            .at(t(700), Fault::RestartGtm)
            .at(t(900), Fault::CrashCn { cn: 0 })
            .at(t(1400), Fault::RestartCn { cn: 0 })
            .at(
                t(1600),
                Fault::CrashReplica {
                    shard: 2,
                    replica: 0,
                },
            )
            .at(
                t(2100),
                Fault::RestartReplica {
                    shard: 2,
                    replica: 0,
                },
            )
    }

    /// Overlapping faults: a region partition, a delay spike, and a CN
    /// crash all outstanding at once, then a clock-sync outage spanning a
    /// replica crash — the concurrent-failure windows the nemesis
    /// generator's `overlap` flag produces, in canned form.
    pub fn overlapping_faults() -> FaultPlan {
        FaultPlan::new("overlapping-faults")
            .at(t(300), Fault::PartitionRegions { a: 0, b: 1 })
            .at(
                t(450),
                Fault::DelaySpike {
                    extra: SimDuration::from_millis(2),
                },
            )
            .at(t(600), Fault::CrashCn { cn: 1 })
            .at(t(900), Fault::HealRegions { a: 0, b: 1 })
            .at(t(1000), Fault::ClearDelay)
            .at(t(1100), Fault::RestartCn { cn: 1 })
            .at(t(1300), Fault::ClockSyncOutage { cn: 2 })
            .at(
                t(1500),
                Fault::CrashReplica {
                    shard: 0,
                    replica: 0,
                },
            )
            .at(t(1900), Fault::ClockSyncResume { cn: 2 })
            .at(
                t(2100),
                Fault::RestartReplica {
                    shard: 0,
                    replica: 0,
                },
            )
    }

    /// Heavy overlap: the fault families that used to be kept apart —
    /// a primary crash, a GTM crash, and a region partition — all
    /// outstanding at once, with the heals interleaved (partition heals
    /// between GTM restart and failover in the first wave; GTM restarts
    /// *after* the partition heals in the second). Exercises the
    /// lifecycle layer's interleaved-heal ordering.
    pub fn heavy_overlap() -> FaultPlan {
        FaultPlan::new("heavy-overlap")
            .at(t(300), Fault::CrashPrimary { shard: 0 })
            .at(t(400), Fault::PartitionRegions { a: 1, b: 2 })
            .at(t(500), Fault::CrashGtm)
            .at(t(800), Fault::RestartGtm)
            .at(t(1000), Fault::HealRegions { a: 1, b: 2 })
            .at(
                t(1100),
                Fault::PromoteReplica {
                    shard: 0,
                    replica: 0,
                },
            )
            .at(t(1400), Fault::RejoinOldPrimary { shard: 0 })
            .at(t(1700), Fault::PartitionRegions { a: 0, b: 2 })
            .at(t(1800), Fault::CrashGtm)
            .at(t(2100), Fault::HealRegions { a: 0, b: 2 })
            .at(t(2300), Fault::RestartGtm)
    }

    /// Online shard migration under fire: a first migration whose
    /// freshly provisioned target dies mid-copy (the executor must abort
    /// and leave routing/ownership at the source, then the orphan target
    /// is restored), and a second migration of another shard that runs to
    /// its cutover while a delay spike and a primary crash/restart land
    /// elsewhere in the cluster.
    pub fn migrate_under_fire() -> FaultPlan {
        FaultPlan::new("migrate-under-fire")
            .at(
                t(300),
                Fault::StartMigration {
                    shard: 0,
                    to_region: 1,
                    to_host: 1,
                },
            )
            .at(t(340), Fault::CrashMigrationTarget)
            .at(t(700), Fault::RestoreMigrationTarget)
            .at(
                t(900),
                Fault::StartMigration {
                    shard: 3,
                    to_region: 2,
                    to_host: 0,
                },
            )
            .at(
                t(1400),
                Fault::DelaySpike {
                    extra: SimDuration::from_millis(2),
                },
            )
            .at(t(1800), Fault::ClearDelay)
            .at(t(1900), Fault::CrashPrimary { shard: 1 })
            .at(t(2200), Fault::RestartPrimary { shard: 1 })
    }

    /// Elastic membership under fire: scale out with a spare data node
    /// in region 1, then drain region 1's original host onto the
    /// survivors while a delay spike is up; crash the source of one
    /// drain move mid-flight (the member aborts, its plan-mates cut
    /// over, the host stays draining), restore it, and re-issue the
    /// drain so the host empties and its data nodes retire — all while
    /// an unrelated migration and a GTM failover land elsewhere.
    pub fn elastic_under_fire() -> FaultPlan {
        FaultPlan::new("elastic-under-fire")
            .at(t(200), Fault::AddNode { region: 1, host: 3 })
            .at(
                t(300),
                Fault::DelaySpike {
                    extra: SimDuration::from_millis(2),
                },
            )
            .at(t(400), Fault::RemoveNode { region: 1, host: 1 })
            .at(t(450), Fault::CrashMigrationSource)
            .at(t(900), Fault::ClearDelay)
            .at(t(1100), Fault::RestoreMigrationSource)
            .at(
                t(1400),
                Fault::StartMigration {
                    shard: 2,
                    to_region: 0,
                    to_host: 1,
                },
            )
            .at(t(1600), Fault::CrashGtm)
            .at(t(2000), Fault::RestartGtm)
            .at(t(2300), Fault::RemoveNode { region: 1, host: 1 })
    }

    /// All canned plans, by name.
    pub fn all() -> Vec<FaultPlan> {
        vec![
            primary_failover(),
            partition_and_delay(),
            gtm_and_collector(),
            overlapping_faults(),
            heavy_overlap(),
            migrate_under_fire(),
            elastic_under_fire(),
        ]
    }

    pub fn by_name(name: &str) -> Option<FaultPlan> {
        all().into_iter().find(|p| p.name == name)
    }
}

impl FaultPlan {
    /// Shift every event later by `offset` (runners place plans after
    /// workload warmup).
    pub fn shifted(mut self, offset: SimDuration) -> Self {
        for ev in &mut self.events {
            ev.at += offset;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_plans_are_named_and_nonempty() {
        let plans = canned::all();
        assert_eq!(plans.len(), 7);
        for p in &plans {
            assert!(!p.events.is_empty(), "{} is empty", p.name);
            assert!(canned::by_name(&p.name).is_some());
        }
        assert!(canned::primary_failover().has_promotion());
        assert!(!canned::partition_and_delay().has_promotion());
    }

    #[test]
    fn shifted_moves_every_event() {
        let p = canned::primary_failover().shifted(SimDuration::from_secs(1));
        assert_eq!(p.events[0].at, SimTime::from_millis(1300));
    }
}
