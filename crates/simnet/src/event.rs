//! The discrete-event engine.
//!
//! A [`Sim<W, E>`] owns a priority queue of events, each either a boxed
//! closure or a value of the world's typed-event enum `E`, run against the
//! world state `W` at a scheduled virtual time. Events scheduled for the
//! same instant fire in insertion order (a monotone sequence number breaks
//! ties), which makes runs fully deterministic.
//!
//! # Scheduling structure
//!
//! Almost every event in the system is *near-future*: message deliveries a
//! few hundred microseconds to a few milliseconds out, replay completions,
//! commit-wait timers, the 5–25 ms background intervals. A single binary
//! heap pays `O(log n)` plus a comparator cascade for each of them. The
//! engine instead keeps a three-level structure:
//!
//! * **current bucket** (`cur`): a small min-heap of events at or before
//!   the cursor slot — the only level that needs fine-grained ordering;
//! * **timing wheel** (`buckets`): a ring of [`SLOTS`] unsorted `Vec`s,
//!   each covering a `2^GRAN_BITS` ns span (~262 µs), with an occupancy
//!   bitmap. A near-future push is an O(1) `Vec::push`; slot vectors are
//!   drained (not dropped) when the cursor reaches them, so their
//!   allocations are reused wheel rotation after wheel rotation;
//! * **far heap** (`far`): events beyond the wheel window (~134 ms) fall
//!   back to the classic binary heap. They are rare (multi-second vacuum
//!   timers, long fault plans), so the heap stays tiny.
//!
//! Ordering is decided only by `(at, seq)`, never by which level an event
//! lives in, so the structure is invisible to users: the engine fires the
//! exact same sequence as a plain binary heap (property-tested against the
//! frozen [`crate::reference::HeapSim`]).
//!
//! # Typed events
//!
//! `E` is a world-specific closed enum implementing [`TypedEvent`]. Typed
//! events are stored inline — no `Box<dyn FnOnce>` allocation per event —
//! which is what the hot schedulers (log shipping, RCP rounds, heartbeats)
//! use. Closures remain fully supported for the open-ended sites (chaos
//! plans, migrations, tests); worlds that never need typed events use the
//! default `E = NoEvent` and see the old single-parameter API unchanged.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A closed set of events a world knows how to fire. Implemented by e.g.
/// the core crate's `CoreEvent`; stored inline in the queue (no boxing).
pub trait TypedEvent<W>: Sized {
    fn fire(self, world: &mut W, sim: &mut Sim<W, Self>);
}

/// Uninhabited placeholder for worlds that only schedule closures.
/// `Sim<W>` defaults to this, so closure-only users never see the second
/// type parameter.
pub enum NoEvent {}

impl<W> TypedEvent<W> for NoEvent {
    fn fire(self, _: &mut W, _: &mut Sim<W, Self>) {
        match self {}
    }
}

type EventFn<W, E> = Box<dyn FnOnce(&mut W, &mut Sim<W, E>)>;

enum Payload<W, E> {
    Fn(EventFn<W, E>),
    Typed(E),
}

struct Scheduled<W, E> {
    at: SimTime,
    seq: u64,
    payload: Payload<W, E>,
}

impl<W, E> PartialEq for Scheduled<W, E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W, E> Eq for Scheduled<W, E> {}
impl<W, E> PartialOrd for Scheduled<W, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W, E> Ord for Scheduled<W, E> {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Wheel geometry: 512 slots of 2^18 ns (~262 µs) each — a ~134 ms window
/// that covers deliveries, commit waits, and every background interval.
const SLOT_BITS: usize = 9;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const GRAN_BITS: u32 = 18;
const WORDS: usize = SLOTS / 64;

#[inline]
fn slot_of(at: SimTime) -> u64 {
    at.as_nanos() >> GRAN_BITS
}

/// The event queue and virtual clock.
pub struct Sim<W, E = NoEvent> {
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Absolute slot number the cursor sits on. Invariant: every wheel
    /// bucket holds only events with slot in `(cur_slot, cur_slot+SLOTS)`;
    /// events at or before the cursor slot live in `cur`.
    cur_slot: u64,
    /// Events at or before the cursor slot, fine-ordered by `(at, seq)`.
    cur: BinaryHeap<Scheduled<W, E>>,
    /// The wheel: ring of unsorted buckets, index = absolute slot & mask.
    buckets: Vec<Vec<Scheduled<W, E>>>,
    /// Occupancy bitmap over bucket indices (non-empty buckets).
    occupied: [u64; WORDS],
    /// Total events currently in wheel buckets.
    near: usize,
    /// Events beyond the wheel window.
    far: BinaryHeap<Scheduled<W, E>>,
}

impl<W, E: TypedEvent<W>> Default for Sim<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: TypedEvent<W>> Sim<W, E> {
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            cur_slot: 0,
            cur: BinaryHeap::new(),
            buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            near: 0,
            far: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.cur.len() + self.near + self.far.len()
    }

    /// Schedule `f` to run at absolute virtual time `at`. Scheduling in the
    /// past is clamped to "now" (the event still runs, immediately next).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static) {
        self.push(at, Payload::Fn(Box::new(f)));
    }

    /// Schedule `f` to run `after` from now.
    pub fn schedule_after(
        &mut self,
        after: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static,
    ) {
        self.schedule_at(self.now + after, f);
    }

    /// Schedule a typed event at absolute virtual time `at` (clamped to
    /// "now" like [`Sim::schedule_at`]). No allocation.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        self.push(at, Payload::Typed(event));
    }

    /// Schedule a typed event `after` from now. No allocation.
    pub fn schedule_event_after(&mut self, after: SimDuration, event: E) {
        self.schedule_event_at(self.now + after, event);
    }

    fn push(&mut self, at: SimTime, payload: Payload<W, E>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.insert(Scheduled { at, seq, payload });
    }

    /// Place an already-sequenced event in the right level. Also used to
    /// requeue an event popped past a `run_until` bound (seq preserved, so
    /// the global order is unchanged).
    fn insert(&mut self, ev: Scheduled<W, E>) {
        let slot = slot_of(ev.at);
        if slot <= self.cur_slot {
            self.cur.push(ev);
        } else if slot - self.cur_slot < SLOTS as u64 {
            let idx = (slot & SLOT_MASK) as usize;
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
            self.buckets[idx].push(ev);
            self.near += 1;
        } else {
            self.far.push(ev);
        }
    }

    /// Absolute slot of the nearest occupied wheel bucket. Scans the
    /// occupancy bitmap a word at a time; caller guarantees `near > 0`.
    fn next_occupied_slot(&self) -> u64 {
        debug_assert!(self.near > 0);
        let mut delta = 1u64;
        while delta < SLOTS as u64 {
            let idx = ((self.cur_slot + delta) & SLOT_MASK) as usize;
            let bits = self.occupied[idx >> 6] & (!0u64 << (idx & 63));
            if bits != 0 {
                let hit = (idx & !63) + bits.trailing_zeros() as usize;
                return self.cur_slot + delta + (hit - idx) as u64;
            }
            delta += 64 - (idx as u64 & 63);
        }
        unreachable!("near count positive but no occupied bucket")
    }

    /// Move an occupied bucket's events into the current heap and advance
    /// the cursor to it. The bucket `Vec` keeps its capacity for reuse.
    fn load_slot(&mut self, slot: u64) {
        debug_assert!(slot > self.cur_slot && slot - self.cur_slot < SLOTS as u64);
        let idx = (slot & SLOT_MASK) as usize;
        self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
        let mut bucket = std::mem::take(&mut self.buckets[idx]);
        self.near -= bucket.len();
        self.cur.extend(bucket.drain(..));
        self.buckets[idx] = bucket;
        self.cur_slot = slot;
    }

    /// Pop the globally earliest event by `(at, seq)`, loading wheel slots
    /// lazily. Returns `None` when no events remain anywhere.
    fn pop_next(&mut self) -> Option<Scheduled<W, E>> {
        loop {
            let take_far = match (self.cur.peek(), self.far.peek()) {
                // Bucketed events are always later than anything in `cur`
                // (their slots are strictly after the cursor slot), so a
                // cur-vs-far comparison settles the global minimum.
                (Some(c), Some(f)) => (f.at, f.seq) < (c.at, c.seq),
                (Some(_), None) => false,
                (None, Some(f)) if self.near > 0 => {
                    let next = self.next_occupied_slot();
                    if slot_of(f.at) < next {
                        true
                    } else {
                        self.load_slot(next);
                        continue;
                    }
                }
                (None, Some(_)) => true,
                (None, None) if self.near > 0 => {
                    let next = self.next_occupied_slot();
                    self.load_slot(next);
                    continue;
                }
                (None, None) => return None,
            };
            return if take_far {
                let ev = self.far.pop();
                if self.cur.is_empty() && self.near == 0 {
                    // Nothing in the window: snap the window forward so the
                    // followups this event schedules take the fast path.
                    // (With near events pending the cursor must not move —
                    // their slots have to stay strictly ahead of it.)
                    if let Some(ev) = &ev {
                        self.cur_slot = slot_of(ev.at);
                    }
                }
                ev
            } else {
                self.cur.pop()
            };
        }
    }

    /// Pop-and-fire the earliest event if it is at or before `until`.
    /// The single place where time advances and `executed` is counted.
    fn step_bounded(&mut self, world: &mut W, until: SimTime) -> bool {
        let Some(ev) = self.pop_next() else {
            return false;
        };
        if ev.at > until {
            // Not consumed: requeue with its original seq (order intact).
            self.insert(ev);
            return false;
        }
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        self.executed += 1;
        match ev.payload {
            Payload::Fn(f) => f(world, self),
            Payload::Typed(e) => e.fire(world, self),
        }
        true
    }

    /// Run the single earliest event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        self.step_bounded(world, SimTime::MAX)
    }

    /// Run all events scheduled strictly before or at `until`. The clock is
    /// left at `until` even if the queue drains earlier.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while self.step_bounded(world, until) {}
        self.now = self.now.max(until);
    }

    /// Run events until the queue is empty (or `max_events` fire, as a
    /// runaway guard). Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events && self.step(world) {}
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(20), |w, s| {
            w.log.push((s.now().as_millis(), "b"))
        });
        sim.schedule_at(SimTime::from_millis(10), |w, s| {
            w.log.push((s.now().as_millis(), "a"))
        });
        sim.schedule_at(SimTime::from_millis(30), |w, s| {
            w.log.push((s.now().as_millis(), "c"))
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_time_fifo() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_millis(5), move |w, s| {
                w.log.push((s.now().as_millis(), name))
            });
        }
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(1), |_, s| {
            s.schedule_after(SimDuration::from_millis(4), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "chained"));
            });
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(5, "chained")]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(10), |w, _| w.log.push((10, "in")));
        sim.schedule_at(SimTime::from_millis(50), |w, _| w.log.push((50, "out")));
        sim.run_until(&mut w, SimTime::from_millis(20));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(10), |_, s| {
            // Try to schedule "before now" — must clamp, not panic.
            s.schedule_at(SimTime::from_millis(1), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "clamped"));
            });
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(10, "clamped")]);
    }

    #[test]
    fn runaway_guard() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        // An event that perpetually reschedules itself.
        fn tick(w: &mut World, s: &mut Sim<World>) {
            w.log.push((s.now().as_millis(), "tick"));
            s.schedule_after(SimDuration::from_millis(1), tick);
        }
        sim.schedule_at(SimTime::ZERO, tick);
        let n = sim.run_to_completion(&mut w, 50);
        assert_eq!(n, 50);
    }

    #[test]
    fn far_future_events_fall_back_to_the_heap() {
        // Far beyond the wheel window (~134 ms): must still fire in order,
        // interleaved with near events scheduled later.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_secs(5), |w, s| {
            w.log.push((s.now().as_millis(), "vacuum"));
        });
        sim.schedule_at(SimTime::from_millis(1), |w, s| {
            w.log.push((s.now().as_millis(), "near"));
            s.schedule_after(SimDuration::from_secs(2), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "mid"));
            });
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(1, "near"), (2001, "mid"), (5000, "vacuum")]);
    }

    #[test]
    fn run_until_bound_mid_slot_keeps_order() {
        // A bound that lands inside an occupied slot: the later event in
        // the same slot must be requeued, then fire on the next run.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_nanos(100), |w, _| w.log.push((100, "a")));
        sim.schedule_at(SimTime::from_nanos(300), |w, _| w.log.push((300, "c")));
        sim.schedule_at(SimTime::from_nanos(200), |w, _| w.log.push((200, "b")));
        sim.run_until(&mut w, SimTime::from_nanos(250));
        assert_eq!(w.log, vec![(100, "a"), (200, "b")]);
        assert_eq!(sim.pending(), 1);
        sim.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(100, "a"), (200, "b"), (300, "c")]);
    }

    #[test]
    fn typed_events_fire_and_interleave_with_closures() {
        #[derive(Default)]
        struct TW {
            log: Vec<(u64, String)>,
        }
        enum Ev {
            Tick(u32),
            Chain,
        }
        impl TypedEvent<TW> for Ev {
            fn fire(self, w: &mut TW, sim: &mut Sim<TW, Ev>) {
                match self {
                    Ev::Tick(n) => w.log.push((sim.now().as_millis(), format!("tick{n}"))),
                    Ev::Chain => {
                        w.log.push((sim.now().as_millis(), "chain".into()));
                        sim.schedule_event_after(SimDuration::from_millis(3), Ev::Tick(9));
                    }
                }
            }
        }
        let mut sim: Sim<TW, Ev> = Sim::new();
        let mut w = TW::default();
        sim.schedule_event_at(SimTime::from_millis(2), Ev::Tick(1));
        sim.schedule_at(SimTime::from_millis(2), |w: &mut TW, s| {
            w.log.push((s.now().as_millis(), "closure".into()));
        });
        sim.schedule_event_at(SimTime::from_millis(1), Ev::Chain);
        sim.run_to_completion(&mut w, 100);
        let rendered: Vec<(u64, &str)> = w.log.iter().map(|(t, s)| (*t, s.as_str())).collect();
        assert_eq!(
            rendered,
            vec![(1, "chain"), (2, "tick1"), (2, "closure"), (4, "tick9")]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reference::HeapSim;
    use proptest::prelude::*;

    proptest! {
        /// Events always fire in (time, insertion) order regardless of the
        /// order they were scheduled in.
        #[test]
        fn events_fire_sorted(times in proptest::collection::vec(0u64..1_000, 1..50)) {
            struct W {
                fired: Vec<(u64, usize)>,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { fired: Vec::new() };
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, s| {
                    w.fired.push((s.now().as_micros(), i));
                });
            }
            sim.run_to_completion(&mut w, 10_000);
            prop_assert_eq!(w.fired.len(), times.len());
            // Non-decreasing times; ties broken by insertion order.
            for pair in w.fired.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0);
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1);
                }
            }
        }

        /// run_until(t) fires exactly the events at or before t and leaves
        /// the rest pending.
        #[test]
        fn run_until_is_a_clean_cut(
            times in proptest::collection::vec(0u64..1_000, 1..50),
            cut in 0u64..1_000,
        ) {
            struct W {
                count: usize,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { count: 0 };
            for &t in &times {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, _| {
                    w.count += 1;
                });
            }
            sim.run_until(&mut w, SimTime::from_micros(cut));
            let expected = times.iter().filter(|&&t| t <= cut).count();
            prop_assert_eq!(w.count, expected);
            prop_assert_eq!(sim.pending(), times.len() - expected);
            prop_assert_eq!(sim.now(), SimTime::from_micros(cut));
        }
    }

    /// One scripted event: fires at `at` (clamped), then schedules its
    /// children `delay` ns out. Children can themselves have children, so
    /// events schedule events to arbitrary depth. Times span well past the
    /// wheel window so near, current-slot, and far paths all get exercised,
    /// and small ranges force plenty of same-instant ties.
    #[derive(Debug, Clone)]
    struct Script {
        at: u64,
        children: Vec<(u64, Script)>,
    }

    /// Hand-rolled recursive strategy (the vendored proptest shim has no
    /// `prop_recursive`): scripts up to 3 levels deep, 0–3 children each.
    struct ScriptStrategy;

    impl Strategy for ScriptStrategy {
        type Value = Script;

        fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Script {
            fn gen_script(rng: &mut rand::rngs::SmallRng, depth: u32) -> Script {
                use rand::Rng;
                let at = rng.gen_range(0u64..600_000_000);
                let n = if depth == 0 { 0 } else { rng.gen_range(0..4) };
                let children = (0..n)
                    .map(|_| (rng.gen_range(0u64..400_000_000), gen_script(rng, depth - 1)))
                    .collect();
                Script { at, children }
            }
            gen_script(rng, 3)
        }
    }

    fn script_strategy() -> impl Strategy<Value = Script> {
        ScriptStrategy
    }

    #[derive(Default)]
    struct DiffWorld {
        fired: Vec<(u64, u32)>,
        next_id: u32,
    }

    /// Typed mirror of the closure script: fires, logs, schedules children.
    struct ScriptEvent {
        id: u32,
        children: Vec<(u64, Script)>,
    }

    impl TypedEvent<DiffWorld> for ScriptEvent {
        fn fire(self, w: &mut DiffWorld, sim: &mut Sim<DiffWorld, ScriptEvent>) {
            w.fired.push((sim.now().as_nanos(), self.id));
            for (delay, child) in self.children {
                schedule_typed(w, sim, delay, child);
            }
        }
    }

    fn schedule_typed(
        w: &mut DiffWorld,
        sim: &mut Sim<DiffWorld, ScriptEvent>,
        delay: u64,
        script: Script,
    ) {
        let id = w.next_id;
        w.next_id += 1;
        // Children are scheduled relative to the *script* time, which may be
        // in the past of `sim.now()` — exercising the clamp path.
        sim.schedule_event_at(
            SimTime::from_nanos(script.at.saturating_add(delay)),
            ScriptEvent {
                id,
                children: script.children,
            },
        );
    }

    fn schedule_ref(w: &mut DiffWorld, sim: &mut HeapSim<DiffWorld>, delay: u64, script: Script) {
        let id = w.next_id;
        w.next_id += 1;
        let children = script.children.clone();
        sim.schedule_at(
            SimTime::from_nanos(script.at.saturating_add(delay)),
            move |w: &mut DiffWorld, s| {
                w.fired.push((s.now().as_nanos(), id));
                for (d, c) in children {
                    schedule_ref(w, s, d, c);
                }
            },
        );
    }

    proptest! {
        /// Differential: the wheel engine fires events in the identical
        /// (time, seq) order as the frozen heap-only reference across
        /// randomized schedules — same-instant ties, past-clamped times,
        /// events-scheduling-events, and far-future fallbacks included.
        #[test]
        fn wheel_matches_heap_reference(
            scripts in proptest::collection::vec(script_strategy(), 1..12),
            cut in 0u64..700_000_000,
        ) {
            let mut wheel: Sim<DiffWorld, ScriptEvent> = Sim::new();
            let mut ww = DiffWorld::default();
            for s in &scripts {
                schedule_typed(&mut ww, &mut wheel, 0, s.clone());
            }

            let mut heap: HeapSim<DiffWorld> = HeapSim::new();
            let mut hw = DiffWorld::default();
            for s in &scripts {
                schedule_ref(&mut hw, &mut heap, 0, s.clone());
            }

            // Split the run at an arbitrary bound so requeue-at-the-bound
            // gets exercised, then drain both.
            wheel.run_until(&mut ww, SimTime::from_nanos(cut));
            heap.run_until(&mut hw, SimTime::from_nanos(cut));
            prop_assert_eq!(wheel.pending(), heap.pending());
            wheel.run_to_completion(&mut ww, 100_000);
            heap.run_to_completion(&mut hw, 100_000);

            prop_assert_eq!(&ww.fired, &hw.fired);
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.events_executed(), heap.events_executed());
        }
    }
}
