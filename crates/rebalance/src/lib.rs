//! `gdb-rebalance` — hot-shard detection and cost-model-driven shard
//! placement ("Placement v2").
//!
//! The *mechanics* of a migration (snapshot copy → redo catch-up →
//! cutover barrier, batched under one routing-epoch bump) live in
//! `globaldb::migrate`; this crate owns the *policy* side:
//!
//! * [`HotShardDetector`] — a windowed consumer of the live metrics
//!   registry. Every [`HotShardDetector::observe`] snapshots the
//!   `rebalance.shard_ops.*` / `rebalance.shard_bytes.*` counters the
//!   transaction layer maintains, subtracts the previous observation,
//!   and joins the deltas with the current primary/replica placement
//!   and drain state into a [`ClusterView`].
//! * [`PlacementCost`] — one scalar objective over a view (cross-region
//!   traffic, load spread, replica balance, drain pressure) with a
//!   greedy batch search, [`PlacementCost::propose_batch`], that emits
//!   strictly-cost-reducing moves gated by a [`Hysteresis`] margin.
//! * [`RebalanceController`] — glues the two together: call
//!   [`RebalanceController::tick`] between workload windows and it
//!   observes, reconciles the in-flight batch, and starts at most one
//!   batched migration plan.
//! * [`drain_host`] — the imperative scale-in entry point: mark a host
//!   draining and launch the plan that empties it.
//!
//! The pre-cost-model policy chain ([`LoadSpread`] → [`RegionAffinity`]
//! first-match) is frozen in [`legacy`] as a differential reference.
//!
//! Everything here is deterministic: observation order, host
//! enumeration, and tie-breaks are all fixed, so a seeded run proposes
//! the same migrations every time.

pub mod cost;
pub mod legacy;

pub use cost::{apply_move, CostPolicy, CostProposal, Hysteresis, PlacementCost};
pub use legacy::{
    LegacyController, LoadSpread, MigrationProposal, PlacementPolicy, RegionAffinity,
};

use gdb_simnet::{NetNodeId, RegionId};
use globaldb::migrate::metrics as mig_metrics;
use globaldb::{Cluster, CoreSim, GdbResult, GlobalDb, MigrationKind, MigrationSpec};
use std::collections::{BTreeMap, BTreeSet};

/// One replica placement of a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStat {
    /// The replica data node.
    pub node: NetNodeId,
    /// Host slot it occupies.
    pub slot: HostSlot,
}

/// One shard's load over the last observation window, joined with its
/// current placement.
#[derive(Debug, Clone)]
pub struct ShardStat {
    pub shard: usize,
    /// Region of the current primary.
    pub region: RegionId,
    /// Host (within-region machine index) of the current primary.
    pub host: u16,
    /// Data-node operations routed to the shard during the window.
    pub ops: u64,
    /// Payload bytes of those operations.
    pub bytes: u64,
    /// Ops split by the submitting CN's region, indexed like
    /// [`ClusterView::regions`].
    pub by_region: Vec<u64>,
    /// Current replica placements of the shard.
    pub replicas: Vec<ReplicaStat>,
}

/// A candidate placement slot: one physical host in one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HostSlot {
    pub region: RegionId,
    pub host: u16,
}

/// What the detector hands the cost model: per-shard window loads plus
/// the current host inventory and drain state.
#[derive(Debug, Clone)]
pub struct ClusterView {
    pub shards: Vec<ShardStat>,
    /// Every live host slot, sorted (deterministic tie-breaks).
    pub hosts: Vec<HostSlot>,
    /// Region ids in cluster order (the index space of
    /// [`ShardStat::by_region`]).
    pub regions: Vec<RegionId>,
    /// Host slots currently draining (scale-in): placements must move
    /// off them and nothing may move onto them.
    pub draining: Vec<HostSlot>,
}

impl ClusterView {
    /// Total windowed ops of the shards whose primary sits on `slot`.
    pub fn host_load(&self, slot: HostSlot) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.region == slot.region && s.host == slot.host)
            .map(|s| s.ops)
            .sum()
    }

    /// Imbalance metric: max host load over mean host load (1.0 =
    /// perfectly even, 0.0 = idle cluster).
    pub fn spread(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        let loads: Vec<u64> = self.hosts.iter().map(|&h| self.host_load(h)).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }
}

/// The pre-formatted metric names of one shard, built once per cluster
/// shape instead of 2+R `format!` allocations per shard per window.
#[derive(Debug, Clone)]
struct ShardMetricNames {
    ops: String,
    bytes: String,
    by_region: Vec<String>,
}

/// Windowed consumer of the metrics registry: each `observe` reads the
/// absolute `rebalance.shard_ops.*` counters, subtracts the previous
/// observation, and returns the per-window deltas joined with the
/// current placement.
#[derive(Debug, Default)]
pub struct HotShardDetector {
    prev: Vec<(u64, u64, Vec<u64>)>,
    /// Metric-name lookup table, keyed by shard; rebuilt only when the
    /// shard or region count changes. At the scale tier (hundreds of
    /// shards × several regions) re-formatting these every window
    /// dominated `observe`.
    names: Vec<ShardMetricNames>,
}

impl HotShardDetector {
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_names(&mut self, shard_count: usize, region_count: usize) {
        let stale = self.names.len() != shard_count
            || self
                .names
                .first()
                .is_some_and(|n| n.by_region.len() != region_count);
        if !stale {
            return;
        }
        self.names = (0..shard_count)
            .map(|s| ShardMetricNames {
                ops: format!("{}.{s}", mig_metrics::SHARD_OPS_PREFIX),
                bytes: format!("{}.{s}", mig_metrics::SHARD_BYTES_PREFIX),
                by_region: (0..region_count)
                    .map(|r| format!("{}.{s}.r{r}", mig_metrics::SHARD_OPS_PREFIX))
                    .collect(),
            })
            .collect();
    }

    /// Snapshot the cluster's metrics and return the load view for the
    /// window since the previous call (first call: since startup).
    pub fn observe(&mut self, db: &mut GlobalDb) -> ClusterView {
        let shard_count = db.shards().len();
        let regions: Vec<RegionId> = db.regions().to_vec();
        let report = db.metrics_snapshot();
        self.prev
            .resize_with(shard_count, || (0, 0, vec![0; regions.len()]));
        self.ensure_names(shard_count, regions.len());

        let mut shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let names = &self.names[s];
            let ops_total = report.counter(&names.ops).unwrap_or(0);
            let bytes_total = report.counter(&names.bytes).unwrap_or(0);
            let mut by_region_total = vec![0u64; regions.len()];
            for (r, slot) in by_region_total.iter_mut().enumerate() {
                *slot = report.counter(&names.by_region[r]).unwrap_or(0);
            }
            let prev = &mut self.prev[s];
            prev.2.resize(regions.len(), 0);
            let by_region: Vec<u64> = by_region_total
                .iter()
                .zip(&prev.2)
                .map(|(&cur, &old)| cur.saturating_sub(old))
                .collect();
            let primary = db.shards()[s].primary;
            let replicas = db.shards()[s]
                .replicas
                .iter()
                .map(|r| ReplicaStat {
                    node: r.node,
                    slot: HostSlot {
                        region: db.topo().node_region(r.node),
                        host: db.topo().node_host(r.node),
                    },
                })
                .collect();
            shards.push(ShardStat {
                shard: s,
                region: db.topo().node_region(primary),
                host: db.topo().node_host(primary),
                ops: ops_total.saturating_sub(prev.0),
                bytes: bytes_total.saturating_sub(prev.1),
                by_region,
                replicas,
            });
            *prev = (ops_total, bytes_total, by_region_total);
        }

        // Host inventory: every live host slot, sorted for
        // deterministic tie-breaks. Decommissioned slots are excluded
        // even if a co-located CN keeps answering — a drained machine
        // never rejoins placement.
        let retired: BTreeSet<HostSlot> = db
            .retired_hosts()
            .iter()
            .map(|&(region, host)| HostSlot { region, host })
            .collect();
        let mut seen: BTreeSet<HostSlot> = BTreeSet::new();
        for i in 0..db.topo().node_count() {
            let n = NetNodeId(i as u32);
            if db.topo().is_node_down(n) {
                continue;
            }
            let slot = HostSlot {
                region: db.topo().node_region(n),
                host: db.topo().node_host(n),
            };
            if !retired.contains(&slot) {
                seen.insert(slot);
            }
        }
        // BTreeSet iterates in order: same sorted inventory as before.
        let hosts: Vec<HostSlot> = seen.into_iter().collect();

        let mut draining: Vec<HostSlot> = db
            .draining_hosts()
            .iter()
            .map(|&(region, host)| HostSlot { region, host })
            .collect();
        draining.sort();

        ClusterView {
            shards,
            hosts,
            regions,
            draining,
        }
    }
}

/// Detector + cost model + batched migration trigger. Call
/// [`RebalanceController::tick`] between workload windows.
pub struct RebalanceController {
    pub detector: HotShardDetector,
    pub model: PlacementCost,
    pub policy: CostPolicy,
    pub hysteresis: Hysteresis,
    /// Shard → the proposal whose migration is still in flight.
    in_flight: BTreeMap<usize, CostProposal>,
    /// Every proposal that actually started a migration.
    pub history: Vec<CostProposal>,
}

impl Default for RebalanceController {
    fn default() -> Self {
        Self::new()
    }
}

impl RebalanceController {
    pub fn new() -> Self {
        RebalanceController {
            detector: HotShardDetector::new(),
            model: PlacementCost::default(),
            policy: CostPolicy::default(),
            hysteresis: Hysteresis::new(),
            in_flight: BTreeMap::new(),
            history: Vec::new(),
        }
    }

    /// Shards whose controller-started moves have not finished yet.
    pub fn in_flight_shards(&self) -> Vec<usize> {
        self.in_flight.keys().copied().collect()
    }

    /// Observe the window, reconcile the in-flight batch, and — when the
    /// cluster is quiescent — start the batched plan the cost model
    /// proposes. Returns the proposals that started (empty when the
    /// model is satisfied or a plan is still running). Always advances
    /// the detector window and decays the hysteresis, even when busy.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Vec<CostProposal> {
        let Cluster { db, sim, .. } = cluster;
        self.tick_at(db, sim)
    }

    /// [`RebalanceController::tick`] against the split world/scheduler
    /// borrow, so a scheduled simulation event (which owns
    /// `&mut GlobalDb` + `&mut CoreSim`, not a whole [`Cluster`]) can
    /// drive the controller — e.g. a scenario's recurring
    /// auto-rebalance tick.
    pub fn tick_at(&mut self, db: &mut GlobalDb, sim: &mut CoreSim) -> Vec<CostProposal> {
        let view = self.detector.observe(db);
        self.hysteresis.decay(&self.policy);

        // Reconcile: a tracked shard that is no longer migrating either
        // landed (charge hysteresis so it doesn't bounce right back) or
        // aborted (clear its penalty — the aborted move must not
        // suppress a re-proposal).
        let migrating: BTreeSet<usize> = db.migrating_shards().into_iter().collect();
        let finished: Vec<usize> = self
            .in_flight
            .keys()
            .copied()
            .filter(|s| !migrating.contains(s))
            .collect();
        for shard in finished {
            let p = self.in_flight.remove(&shard).expect("tracked");
            if Self::move_landed(db, &p) {
                self.hysteresis.note_move(shard, &self.policy);
            } else {
                self.hysteresis.clear(shard);
            }
        }

        // One plan in flight cluster-wide (also yields to migrations
        // started elsewhere, e.g. by a chaos fault).
        if !migrating.is_empty() {
            return Vec::new();
        }

        let proposals =
            self.model
                .propose_batch(&view, &self.policy, &self.hysteresis, &BTreeSet::new());
        if proposals.is_empty() {
            return Vec::new();
        }
        let specs: Vec<MigrationSpec> = proposals.iter().map(spec_of).collect();
        match globaldb::migrate::start_plan(db, sim, specs) {
            Ok(_) => {
                for p in &proposals {
                    self.in_flight.insert(p.shard, p.clone());
                    self.history.push(p.clone());
                }
                proposals
            }
            Err(_) => Vec::new(),
        }
    }

    /// Did the cluster end up where the proposal wanted?
    fn move_landed(db: &GlobalDb, p: &CostProposal) -> bool {
        let Some(shard) = db.shards().get(p.shard) else {
            return false;
        };
        match p.kind {
            MigrationKind::Primary => {
                db.topo().node_region(shard.primary) == p.to.region
                    && db.topo().node_host(shard.primary) == p.to.host
            }
            MigrationKind::Replica { node } => {
                !shard.replicas.iter().any(|r| r.node == node)
                    && shard.replicas.iter().any(|r| {
                        db.topo().node_region(r.node) == p.to.region
                            && db.topo().node_host(r.node) == p.to.host
                    })
            }
        }
    }
}

fn spec_of(p: &CostProposal) -> MigrationSpec {
    MigrationSpec {
        shard: p.shard,
        kind: p.kind,
        to_region: p.to.region,
        to_host: p.to.host,
    }
}

/// Elastic scale-in: mark `(region, host)` draining and start the
/// batched plan that moves every primary and replica off it (the drain
/// cost term makes each such move clear the margin regardless of shard
/// heat). Returns the number of moves started; `0` means the host was
/// already empty — in that case its data nodes are retired immediately.
///
/// Shards with a migration already in flight are skipped; the host
/// stays draining and a later [`RebalanceController::tick`] (or another
/// `drain_host` call) finishes the job.
pub fn drain_host(
    db: &mut GlobalDb,
    sim: &mut CoreSim,
    region: RegionId,
    host: u16,
) -> GdbResult<usize> {
    db.mark_host_draining(region, host);
    let mut detector = HotShardDetector::new();
    let view = detector.observe(db);
    let model = PlacementCost::default();
    let policy = CostPolicy {
        // A drain must empty the host in one plan if it can; don't cap
        // the batch at the steady-state size.
        max_batch: view.shards.len().max(1) * 3,
        ..CostPolicy::default()
    };
    let busy: BTreeSet<usize> = db.migrating_shards().into_iter().collect();
    let slot = HostSlot { region, host };
    let proposals: Vec<CostProposal> = model
        .propose_batch(&view, &policy, &Hysteresis::new(), &busy)
        .into_iter()
        .filter(|p| p.from == slot)
        .collect();
    if proposals.is_empty() {
        db.maybe_retire_drained();
        return Ok(0);
    }
    let specs: Vec<MigrationSpec> = proposals.iter().map(spec_of).collect();
    let n = specs.len();
    globaldb::migrate::start_plan(db, sim, specs)?;
    Ok(n)
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    pub fn view(shards: Vec<ShardStat>, hosts: Vec<(u16, u16)>, regions: usize) -> ClusterView {
        ClusterView {
            shards,
            hosts: hosts
                .into_iter()
                .map(|(r, h)| HostSlot {
                    region: RegionId(r),
                    host: h,
                })
                .collect(),
            regions: (0..regions as u16).map(RegionId).collect(),
            draining: Vec::new(),
        }
    }

    pub fn stat(shard: usize, region: u16, host: u16, ops: u64, by_region: Vec<u64>) -> ShardStat {
        ShardStat {
            shard,
            region: RegionId(region),
            host,
            ops,
            bytes: ops * 256,
            by_region,
            replicas: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{stat, view};
    use super::*;

    #[test]
    fn spread_metric_tracks_imbalance() {
        let skewed = view(
            vec![stat(0, 0, 0, 900, vec![900]), stat(1, 0, 1, 100, vec![100])],
            vec![(0, 0), (0, 1)],
            1,
        );
        let even = view(
            vec![stat(0, 0, 0, 500, vec![500]), stat(1, 0, 1, 500, vec![500])],
            vec![(0, 0), (0, 1)],
            1,
        );
        assert!(skewed.spread() > even.spread());
        assert!((even.spread() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_view_converges_in_one_batch() {
        // Eight shards, all traffic from region 0, half the primaries
        // stranded in region 1: the model moves exactly those four over
        // in one batch and is then satisfied.
        let mut shards = Vec::new();
        for s in 0..8 {
            let region = if s < 4 { 0 } else { 1 };
            shards.push(stat(s, region, 0, 100, vec![100, 0]));
        }
        let v = view(shards, vec![(0, 0), (1, 0)], 2);
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        let hysteresis = Hysteresis::new();
        let batch = model.propose_batch(&v, &policy, &hysteresis, &BTreeSet::new());
        assert_eq!(batch.len(), 4);
        for p in &batch {
            assert!(matches!(p.kind, MigrationKind::Primary));
            assert_eq!(p.to.region, RegionId(0));
            assert!(p.cost_after < p.cost_before);
        }
        let mut settled = v.clone();
        for p in &batch {
            apply_move(&mut settled, p);
        }
        let again = model.propose_batch(&settled, &policy, &hysteresis, &BTreeSet::new());
        assert!(again.is_empty(), "converged view re-proposed: {again:?}");
    }

    #[test]
    fn drain_pressure_overrides_min_ops() {
        // A cold shard (below min_shard_ops) still flees a draining host.
        let mut v = view(vec![stat(0, 0, 0, 10, vec![10])], vec![(0, 0), (0, 1)], 1);
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        assert!(model
            .propose_batch(&v, &policy, &Hysteresis::new(), &BTreeSet::new())
            .is_empty());
        v.draining.push(HostSlot {
            region: RegionId(0),
            host: 0,
        });
        let batch = model.propose_batch(&v, &policy, &Hysteresis::new(), &BTreeSet::new());
        assert_eq!(batch.len(), 1);
        assert_eq!(
            batch[0].to,
            HostSlot {
                region: RegionId(0),
                host: 1
            }
        );
    }

    #[test]
    fn replica_imbalance_is_leveled() {
        // Two replicas piled on one host, an empty host available: the
        // model relocates one replica (never onto the primary's host).
        let mk_replica = |id: u32, r: u16, h: u16| ReplicaStat {
            node: NetNodeId(id),
            slot: HostSlot {
                region: RegionId(r),
                host: h,
            },
        };
        let mut s0 = stat(0, 0, 0, 0, vec![0]);
        s0.replicas = vec![mk_replica(10, 0, 1)];
        let mut s1 = stat(1, 0, 0, 0, vec![0]);
        s1.replicas = vec![mk_replica(11, 0, 1)];
        let v = view(vec![s0, s1], vec![(0, 0), (0, 1), (0, 2)], 1);
        let model = PlacementCost::default();
        let batch = model.propose_batch(
            &v,
            &CostPolicy::default(),
            &Hysteresis::new(),
            &BTreeSet::new(),
        );
        assert_eq!(batch.len(), 1);
        assert!(matches!(batch[0].kind, MigrationKind::Replica { .. }));
        assert_eq!(
            batch[0].to,
            HostSlot {
                region: RegionId(0),
                host: 2
            }
        );
    }

    #[test]
    fn hysteresis_raises_the_bar_for_recent_movers() {
        // A marginal win (Δcost = 0.10) is blocked right after the shard
        // moved and allowed again once the penalty decays.
        let v = view(
            vec![stat(0, 0, 0, 100, vec![45, 55])],
            vec![(0, 0), (1, 0)],
            2,
        );
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        let mut hysteresis = Hysteresis::new();
        assert_eq!(
            model
                .propose_batch(&v, &policy, &hysteresis, &BTreeSet::new())
                .len(),
            1
        );
        hysteresis.note_move(0, &policy);
        assert!(model
            .propose_batch(&v, &policy, &hysteresis, &BTreeSet::new())
            .is_empty());
        hysteresis.decay(&policy);
        hysteresis.decay(&policy);
        assert_eq!(
            model
                .propose_batch(&v, &policy, &hysteresis, &BTreeSet::new())
                .len(),
            1
        );
    }
}
