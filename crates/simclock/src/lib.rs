//! Global clock infrastructure (paper §III).
//!
//! GaussDB-Global deploys a GPS + atomic-clock time device in each regional
//! cluster; machines synchronize against it every millisecond over TCP
//! (≤ 60 µs round trip) and their crystal drift is bounded at 200 PPM.
//! A GClock timestamp is `TS = T_clock + T_err` with
//! `T_err = T_sync + T_drift` (paper Eq. 1).
//!
//! This crate models exactly that on virtual time:
//!
//! * [`DriftClock`] — a hardware clock running at `1 ± drift` relative to
//!   true (virtual) time, resynchronized periodically with a residual error
//!   bounded by the sync round trip.
//! * [`GClock`] — the per-node time source returning
//!   [`gdb_model::TimestampBound`] uncertainty intervals, plus the commit /
//!   invocation wait rules.
//! * [`Hlc`] — a Hybrid Logical Clock, the approach CockroachDB/Yugabyte
//!   take (related work §II-C), used as a comparison baseline.

pub mod drift;
pub mod gclock;
pub mod hlc;
pub mod wall;

pub use drift::DriftClock;
pub use gclock::{GClock, GClockConfig};
pub use hlc::Hlc;
pub use wall::{TimeSource, WallClock};
