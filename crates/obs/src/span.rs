//! Virtual-time trace spans.
//!
//! A [`Span`] is a named interval of virtual time with an optional parent,
//! recorded **retrospectively**: the instrumented code computes its phase
//! boundaries (transactions execute synchronously inside one simulation
//! event, so all boundaries are known at commit) and records the finished
//! span in one call. Long-lived system activities (an RCP round awaiting
//! its finish phase) open a span with [`Tracer::begin`] and close it with
//! [`Tracer::end`] when the completion event fires.
//!
//! The tracer is **off by default** — a disabled tracer is two branch
//! instructions per record — and capacity-bounded when enabled: once
//! `capacity` spans are stored, further records increment a drop counter
//! instead of growing memory. All timestamps are virtual, so the same
//! seed produces a bit-identical trace ([`Tracer::render`] is the stable
//! form tests compare).

use gdb_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// Index of a span within its tracer's buffer.
pub type SpanId = u32;

/// Sentinel parent for root spans.
pub const NO_PARENT: SpanId = SpanId::MAX;

/// The span taxonomy (see DESIGN.md "Observability").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Whole transaction, begin to final ack. Root span.
    Txn,
    /// Snapshot acquisition (GTM round trip or local GClock read).
    SnapshotAcquire,
    /// Client operations between begin and commit request.
    Execute,
    /// 2PC prepare round across written shards.
    Prepare,
    /// Commit-timestamp acquisition + commit wait (GClock uncertainty or
    /// GTM round trip, per the commit plan).
    CommitWait,
    /// Synchronous-replication quorum ack after the commit point.
    ReplicationAck,
    /// One RCP round, collect through finish.
    RcpRound,
    /// One redo log-shipping batch, seal to arrival.
    LogShip,
    /// A skyline read-target re-selection (the router changed its pick).
    SkylineReselect,
    /// One shard's branch of a 2PC round (prepare fan-out or post-commit
    /// replication ack), child of `Prepare` / `ReplicationAck`.
    TwoPcBranch,
    /// Whole online TM-mode transition, start to completion. Root span.
    Transition,
    /// Transition phase: switch-to-DUAL fan-out through the last DUAL ack.
    TransitionDualAcks,
    /// Transition phase: the DUAL hold wait (GTM→GClock direction only).
    TransitionHold,
    /// Transition phase: final-mode fan-out through the last final ack.
    TransitionFinalAcks,
    /// Whole online shard migration, start to cutover/abort. Root span.
    Migration,
    /// Migration phase: snapshot copy of the source storage image.
    MigrationSnapshot,
    /// Migration phase: redo catch-up rounds until the backlog drains.
    MigrationCatchup,
    /// Migration phase: writer-drain barrier + ownership/epoch cutover.
    MigrationCutover,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::SnapshotAcquire => "snapshot_acquire",
            SpanKind::Execute => "execute",
            SpanKind::Prepare => "prepare",
            SpanKind::CommitWait => "commit_wait",
            SpanKind::ReplicationAck => "replication_ack",
            SpanKind::RcpRound => "rcp_round",
            SpanKind::LogShip => "log_ship",
            SpanKind::SkylineReselect => "skyline_reselect",
            SpanKind::TwoPcBranch => "two_pc_branch",
            SpanKind::Transition => "transition",
            SpanKind::TransitionDualAcks => "transition_dual_acks",
            SpanKind::TransitionHold => "transition_hold",
            SpanKind::TransitionFinalAcks => "transition_final_acks",
            SpanKind::Migration => "migration",
            SpanKind::MigrationSnapshot => "migration_snapshot",
            SpanKind::MigrationCatchup => "migration_catchup",
            SpanKind::MigrationCutover => "migration_cutover",
        }
    }
}

/// One recorded interval of virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    pub id: SpanId,
    /// Parent span id, or [`NO_PARENT`] for roots.
    pub parent: SpanId,
    pub kind: SpanKind,
    /// Small label distinguishing instances (txn seq, shard id, round id).
    pub label: u64,
    pub start: SimTime,
    /// Equal to `start` while a begin/end span is still open.
    pub end: SimTime,
}

impl Span {
    pub fn is_root(&self) -> bool {
        self.parent == NO_PARENT
    }
}

/// Bounded retrospective span recorder.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    spans: Vec<Span>,
    dropped: u64,
}

impl Tracer {
    /// A tracer that records nothing (the default for bench runs).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Enable recording with a hard span-count bound.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
        self.spans.reserve(capacity.min(4096));
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Spans silently dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    fn push(&mut self, mut span: Span) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return None;
        }
        let id = self.spans.len() as SpanId;
        span.id = id;
        self.spans.push(span);
        Some(id)
    }

    /// Record a completed root span.
    pub fn record(
        &mut self,
        kind: SpanKind,
        label: u64,
        start: SimTime,
        end: SimTime,
    ) -> Option<SpanId> {
        self.push(Span {
            id: 0,
            parent: NO_PARENT,
            kind,
            label,
            start,
            end,
        })
    }

    /// Record a completed child span under `parent`. A `None` parent
    /// (the parent itself was dropped or tracing is off) drops the child
    /// too, keeping the tree closed.
    pub fn record_child(
        &mut self,
        parent: Option<SpanId>,
        kind: SpanKind,
        label: u64,
        start: SimTime,
        end: SimTime,
    ) -> Option<SpanId> {
        let parent = parent?;
        self.push(Span {
            id: 0,
            parent,
            kind,
            label,
            start,
            end,
        })
    }

    /// Open a span whose end is not yet known (end == start until
    /// [`Tracer::end`]).
    pub fn begin(&mut self, kind: SpanKind, label: u64, start: SimTime) -> Option<SpanId> {
        self.record(kind, label, start, start)
    }

    /// Close a span opened with [`Tracer::begin`].
    pub fn end(&mut self, id: Option<SpanId>, end: SimTime) {
        if let Some(id) = id {
            if let Some(span) = self.spans.get_mut(id as usize) {
                span.end = end;
            }
        }
    }

    /// Direct children of `parent`, in recording order.
    pub fn children(&self, parent: SpanId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// Stable one-line-per-span rendering; identical seeds must produce
    /// identical renders. Format:
    /// `id parent kind label start_ns end_ns`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let parent = if s.is_root() {
                "-".to_string()
            } else {
                s.parent.to_string()
            };
            out.push_str(&format!(
                "{} {} {} {} {} {}\n",
                s.id,
                parent,
                s.kind.name(),
                s.label,
                s.start.as_nanos(),
                s.end.as_nanos()
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("dropped {}\n", self.dropped));
        }
        out
    }

    /// Forget all recorded spans (keeps enablement and capacity).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_simnet::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        assert_eq!(tr.record(SpanKind::Txn, 1, t(0), t(5)), None);
        assert!(tr.spans().is_empty());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn nesting_and_lifecycle() {
        let mut tr = Tracer::default();
        tr.enable(16);
        let txn = tr.record(SpanKind::Txn, 7, t(0), t(10));
        let snap = tr.record_child(txn, SpanKind::SnapshotAcquire, 7, t(0), t(1));
        let exec = tr.record_child(txn, SpanKind::Execute, 7, t(1), t(6));
        let wait = tr.record_child(txn, SpanKind::CommitWait, 7, t(6), t(9));
        assert!(snap.is_some() && exec.is_some() && wait.is_some());
        let kids = tr.children(txn.unwrap());
        assert_eq!(kids.len(), 3);
        assert!(kids.iter().all(|s| !s.is_root()));
        assert!(tr.spans()[txn.unwrap() as usize].is_root());
        // Children tile the parent interval in order.
        assert_eq!(kids[0].end, kids[1].start);
    }

    #[test]
    fn begin_end_closes_open_span() {
        let mut tr = Tracer::default();
        tr.enable(4);
        let id = tr.begin(SpanKind::RcpRound, 3, t(2));
        assert_eq!(tr.spans()[0].end, t(2));
        tr.end(id, t(8));
        assert_eq!(tr.spans()[0].end, t(8));
        assert_eq!(
            tr.spans()[0].end.since(tr.spans()[0].start),
            SimDuration::from_millis(6)
        );
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let mut tr = Tracer::default();
        tr.enable(2);
        let a = tr.record(SpanKind::Txn, 0, t(0), t(1));
        let _b = tr.record(SpanKind::Txn, 1, t(1), t(2));
        let c = tr.record(SpanKind::Txn, 2, t(2), t(3));
        assert!(a.is_some());
        assert_eq!(c, None);
        assert_eq!(tr.dropped(), 1);
        // A child of a dropped parent is dropped silently (tree stays closed).
        let kid = tr.record_child(c, SpanKind::Execute, 2, t(2), t(3));
        assert_eq!(kid, None);
        assert_eq!(tr.spans().len(), 2);
        assert!(tr.render().contains("dropped 1"));
    }

    #[test]
    fn render_is_stable() {
        let build = || {
            let mut tr = Tracer::default();
            tr.enable(8);
            let p = tr.record(SpanKind::Txn, 42, t(0), t(12));
            tr.record_child(p, SpanKind::Prepare, 42, t(5), t(7));
            tr.render()
        };
        assert_eq!(build(), build());
        assert!(build().starts_with("0 - txn 42 0 12000000\n1 0 prepare 42"));
    }
}
