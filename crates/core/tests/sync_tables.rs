//! Per-table synchronous replication (the paper's future-work extension):
//! a table marked synchronous pays the quorum wait on commit; the rest of
//! the database keeps asynchronous latency.

use globaldb::{Cluster, ClusterConfig, Datum, ReplicationMode, SimTime};

#[test]
fn sync_table_pays_quorum_wait_async_tables_do_not() {
    let mut c = Cluster::new(ClusterConfig::globaldb_three_city());
    for name in ["fast", "durable"] {
        c.ddl(&format!(
            "CREATE TABLE {name} (k INT NOT NULL, v INT, PRIMARY KEY (k)) \
             DISTRIBUTE BY HASH(k)"
        ))
        .unwrap();
        for k in 0..10i64 {
            c.execute_sql(
                0,
                SimTime::from_millis(5),
                &format!("INSERT INTO {name} VALUES (?, 0)"),
                &[Datum::Int(k)],
            )
            .unwrap();
        }
    }
    c.set_table_replication("durable", ReplicationMode::SyncRemoteQuorum { quorum: 2 })
        .unwrap();

    // Same-shape single-row updates against both tables from their home CN.
    let lat = |c: &mut Cluster, table: &str, at_ms: u64| {
        let table_id = c.db.catalog().table_by_name(table).unwrap().clone();
        let k = (0..10i64)
            .find(|&k| {
                let shard = table_id
                    .shard_of_pk(&gdb_model::RowKey::single(k), c.db.shards().len() as u16)
                    .0 as usize;
                c.db.shards()[shard].region == c.db.cns()[0].region
            })
            .unwrap_or(0);
        let (_, o) = c
            .execute_sql(
                0,
                SimTime::from_millis(at_ms),
                &format!("UPDATE {table} SET v = 1 WHERE k = ?"),
                &[Datum::Int(k)],
            )
            .unwrap();
        o.latency
    };
    let fast = lat(&mut c, "fast", 100);
    let durable = lat(&mut c, "durable", 200);
    assert!(
        durable.as_millis() >= fast.as_millis() + 20,
        "sync table must pay the WAN quorum wait: fast={fast} durable={durable}"
    );
}

#[test]
fn mixed_transaction_takes_the_stronger_mode() {
    let mut c = Cluster::new(ClusterConfig::globaldb_three_city());
    c.ddl("CREATE TABLE a (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    c.execute_sql(
        0,
        SimTime::from_millis(5),
        "INSERT INTO a VALUES (1, 0)",
        &[],
    )
    .unwrap();
    let async_latency = {
        let (_, o) = c
            .execute_sql(
                0,
                SimTime::from_millis(50),
                "UPDATE a SET v = 1 WHERE k = 1",
                &[],
            )
            .unwrap();
        o.latency
    };
    c.set_table_replication("a", ReplicationMode::SyncRemoteQuorum { quorum: 1 })
        .unwrap();
    let sync_latency = {
        let (_, o) = c
            .execute_sql(
                0,
                SimTime::from_millis(100),
                "UPDATE a SET v = 2 WHERE k = 1",
                &[],
            )
            .unwrap();
        o.latency
    };
    assert!(sync_latency > async_latency);
    // Reverting the override restores async latency.
    c.set_table_replication("a", ReplicationMode::Async)
        .unwrap();
    let (_, o) = c
        .execute_sql(
            0,
            SimTime::from_millis(150),
            "UPDATE a SET v = 3 WHERE k = 1",
            &[],
        )
        .unwrap();
    assert!(o.latency.as_micros() <= async_latency.as_micros() + 500);
}
