//! Rows and row keys.

use crate::datum::Datum;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A row: a vector of datums in schema column order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Row(pub Vec<Datum>);

impl Row {
    pub fn new(values: Vec<Datum>) -> Self {
        Row(values)
    }

    pub fn get(&self, idx: usize) -> Option<&Datum> {
        self.0.get(idx)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Project the datums at `indices` into a new row (used to extract keys).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Datum>> for Row {
    fn from(v: Vec<Datum>) -> Self {
        Row(v)
    }
}

/// A primary-key value: the tuple of key-column datums.
///
/// Ordered with [`Datum::key_cmp`] so it can index a B-tree; hashed with
/// [`Datum::stable_hash`] so shard placement is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowKey(pub Vec<Datum>);

impl RowKey {
    pub fn new(values: Vec<Datum>) -> Self {
        RowKey(values)
    }

    /// Single-column key helper.
    pub fn single(d: impl Into<Datum>) -> Self {
        RowKey(vec![d.into()])
    }

    /// Combined stable hash of all key columns (for hash distribution).
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0x9e3779b97f4a7c15;
        for d in &self.0 {
            h = h.rotate_left(13) ^ d.stable_hash();
            h = h.wrapping_mul(0xff51afd7ed558ccd);
        }
        h
    }
}

impl PartialOrd for RowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.key_cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl fmt::Display for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_projection() {
        let r = Row::new(vec![Datum::Int(1), Datum::Text("a".into()), Datum::Int(3)]);
        assert_eq!(
            r.project(&[2, 0]),
            Row::new(vec![Datum::Int(3), Datum::Int(1)])
        );
    }

    #[test]
    fn key_ordering_lexicographic() {
        let a = RowKey::new(vec![Datum::Int(1), Datum::Int(2)]);
        let b = RowKey::new(vec![Datum::Int(1), Datum::Int(3)]);
        let c = RowKey::new(vec![Datum::Int(2)]);
        assert!(a < b);
        assert!(b < c);
        // Prefix sorts before its extension.
        let p = RowKey::new(vec![Datum::Int(1)]);
        assert!(p < a);
    }

    #[test]
    fn key_hash_order_independent_of_process() {
        let k = RowKey::new(vec![Datum::Int(42), Datum::Text("w".into())]);
        assert_eq!(k.stable_hash(), k.clone().stable_hash());
        assert_ne!(
            RowKey::single(1i64).stable_hash(),
            RowKey::single(2i64).stable_hash()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_datum() -> impl Strategy<Value = Datum> {
        prop_oneof![
            Just(Datum::Null),
            any::<i64>().prop_map(Datum::Int),
            any::<i64>().prop_map(Datum::Decimal),
            "[a-z]{0,8}".prop_map(Datum::Text),
            any::<bool>().prop_map(Datum::Bool),
        ]
    }

    fn arb_key() -> impl Strategy<Value = RowKey> {
        proptest::collection::vec(arb_datum(), 1..4).prop_map(RowKey)
    }

    proptest! {
        /// RowKey ordering is a total order: antisymmetric and transitive
        /// (required for BTreeMap correctness).
        #[test]
        fn key_order_is_total(a in arb_key(), b in arb_key(), c in arb_key()) {
            use std::cmp::Ordering::*;
            // Antisymmetry.
            match a.cmp(&b) {
                Less => prop_assert_eq!(b.cmp(&a), Greater),
                Greater => prop_assert_eq!(b.cmp(&a), Less),
                Equal => prop_assert_eq!(b.cmp(&a), Equal),
            }
            // Transitivity.
            if a.cmp(&b) != Greater && b.cmp(&c) != Greater {
                prop_assert_ne!(a.cmp(&c), Greater);
            }
        }

        /// Equal keys hash equally (stable hash is a function of value).
        #[test]
        fn equal_keys_equal_hashes(a in arb_key()) {
            let b = a.clone();
            prop_assert_eq!(a.stable_hash(), b.stable_hash());
        }

        /// Ordering agrees with equality.
        #[test]
        fn order_consistent_with_eq(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
        }
    }
}
