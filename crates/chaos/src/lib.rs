//! Chaos testing for GaussDB-Global: declarative fault plans, a seeded
//! nemesis schedule generator, and an invariant oracle.
//!
//! The subsystem has two halves:
//!
//! * a **fault plan engine** ([`plan::FaultPlan`]) that schedules
//!   [`fault::Fault`]s as first-class simulation events — node crashes and
//!   restarts with WAL catch-up, replica promotion, GTM failover,
//!   collector-CN crashes mid-RCP-round, region partitions, `tc`-style
//!   delay spikes, and clock-sync outages — either hand-written (canned
//!   plans) or generated from a seed by the [`nemesis`] module, so any run
//!   replays bit-for-bit from `--seed N`;
//! * an **invariant oracle** ([`oracle`]) that drives probe transactions
//!   through the cluster while the plan executes and checks external
//!   consistency, RCP monotonicity and bounds, replica-read correctness,
//!   durability of acknowledged writes, and (via
//!   [`gdb_workloads::tpcc::consistency`]) the TPC-C consistency
//!   conditions once the dust settles.
//!
//! [`runner::run_plan`] / [`runner::run_nemesis`] tie the two together
//! with a TPC-C workload running in the foreground.

pub mod fault;
pub mod nemesis;
pub mod oracle;
pub mod plan;
pub mod runner;
pub mod scenario;
pub mod trace;

pub use fault::Fault;
pub use nemesis::NemesisConfig;
pub use oracle::{FailoverWindow, Oracle, PROBE_LATENCY_US};
pub use plan::{FaultEvent, FaultPlan};
pub use runner::{run_nemesis, run_plan, run_plan_on, run_plan_prepped, ChaosConfig, ChaosReport};
pub use scenario::{PlanSource, Scenario};
pub use trace::{Trace, TraceHandle};
