//! Metric names owned by the redo-replication subsystem.
//!
//! Shipping totals are recorded live at flush time (channels are replaced
//! on promote/rejoin, so their internal stats cannot be summed after the
//! fact).

/// Log-shipping batches sealed and sent.
pub const SHIP_BATCHES: &str = "replication.ship.batches";
/// Redo records shipped.
pub const SHIP_RECORDS: &str = "replication.ship.records";
/// Redo bytes before compression.
pub const SHIP_RAW_BYTES: &str = "replication.ship.raw_bytes";
/// Redo bytes on the wire (post-compression).
pub const SHIP_WIRE_BYTES: &str = "replication.ship.wire_bytes";
/// Seal-to-arrival latency of one shipped batch.
pub const SHIP_BATCH_US: &str = "replication.ship.batch_us";
