//! Collector-CN election (paper §IV-A).
//!
//! One CN at the remote site periodically collects max commit timestamps
//! from the replicas, computes the RCP, and distributes it to the other
//! CNs. If the collector CN goes down, a different CN takes over. Routing
//! the RCP through a single collector keeps it monotone from every
//! client's perspective even when clients fail over between CNs.

/// Tracks which CN currently collects/distributes the RCP.
#[derive(Debug, Clone)]
pub struct CollectorElection {
    alive: Vec<bool>,
    current: Option<usize>,
}

impl CollectorElection {
    /// An election over `cn_count` CNs; the lowest-indexed alive CN leads.
    pub fn new(cn_count: usize) -> Self {
        let mut e = CollectorElection {
            alive: vec![true; cn_count],
            current: None,
        };
        e.elect();
        e
    }

    fn elect(&mut self) {
        self.current = self.alive.iter().position(|&a| a);
    }

    /// The current collector, if any CN is alive.
    pub fn collector(&self) -> Option<usize> {
        self.current
    }

    /// Mark a CN down; re-elects if it was the collector. Returns the new
    /// collector if the leadership changed.
    pub fn on_cn_down(&mut self, cn: usize) -> Option<usize> {
        if cn >= self.alive.len() {
            return None;
        }
        self.alive[cn] = false;
        if self.current == Some(cn) {
            self.elect();
            self.current
        } else {
            None
        }
    }

    /// Mark a CN back up (it does not preempt the current collector).
    pub fn on_cn_up(&mut self, cn: usize) {
        if cn < self.alive.len() {
            self.alive[cn] = true;
            if self.current.is_none() {
                self.elect();
            }
        }
    }

    pub fn is_alive(&self, cn: usize) -> bool {
        self.alive.get(cn).copied().unwrap_or(false)
    }

    /// Refresh the whole liveness view from an external health check (the
    /// fault-injection entry point). Returns the new collector if the
    /// leadership changed — i.e. a collector failover happened.
    pub fn refresh(&mut self, alive: &[bool]) -> Option<usize> {
        let before = self.current;
        for (cn, &up) in alive.iter().enumerate() {
            if up {
                self.on_cn_up(cn);
            } else {
                self.on_cn_down(cn);
            }
        }
        if self.current != before {
            self.current
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_alive_leads() {
        let e = CollectorElection::new(3);
        assert_eq!(e.collector(), Some(0));
    }

    #[test]
    fn failover_on_collector_death() {
        let mut e = CollectorElection::new(3);
        let new = e.on_cn_down(0);
        assert_eq!(new, Some(1));
        assert_eq!(e.collector(), Some(1));
        // Non-collector death changes nothing.
        assert_eq!(e.on_cn_down(2), None);
        assert_eq!(e.collector(), Some(1));
    }

    #[test]
    fn refresh_reports_failover_only_on_change() {
        let mut e = CollectorElection::new(3);
        // No change: everyone alive.
        assert_eq!(e.refresh(&[true, true, true]), None);
        // Collector dies: failover reported.
        assert_eq!(e.refresh(&[false, true, true]), Some(1));
        // Same view again: no new failover.
        assert_eq!(e.refresh(&[false, true, true]), None);
        // Old collector returns but does not preempt.
        assert_eq!(e.refresh(&[true, true, true]), None);
        assert_eq!(e.collector(), Some(1));
    }

    #[test]
    fn all_down_then_recovery() {
        let mut e = CollectorElection::new(2);
        e.on_cn_down(0);
        e.on_cn_down(1);
        assert_eq!(e.collector(), None);
        e.on_cn_up(1);
        assert_eq!(e.collector(), Some(1));
        // CN 0 returning does not preempt.
        e.on_cn_up(0);
        assert_eq!(e.collector(), Some(1));
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let mut e = CollectorElection::new(1);
        assert_eq!(e.on_cn_down(9), None);
        e.on_cn_up(9);
        assert_eq!(e.collector(), Some(0));
        assert!(!e.is_alive(9));
    }
}
