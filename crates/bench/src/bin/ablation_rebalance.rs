//! Ablation — online rebalancing under a skewed workload.
//!
//! Sysbench Update-Index with Zipfian keys, every client pinned to a
//! region-0 CN: the hot keys pile onto a handful of shards whose
//! primaries sit in remote regions, so the static cluster pays the
//! cross-region round trip on most commits. The rebalance run ticks a
//! [`RebalanceController`] at every window boundary; its placement cost
//! model scores the whole cluster view (cross-region traffic, per-host
//! load spread, replica balance) and starts one batched migration plan
//! whenever a move clears the hysteresis margin — snapshot copy, redo
//! catch-up, cutover barrier, one routing-epoch bump per batch — without
//! any window dropping to zero commits.
//!
//! The old policy chain thrashed here: with every client in one region,
//! its affinity and load-spread policies optimized conflicting
//! objectives and oscillated (16 ping-pong migrations in a 10 s run).
//! The cost model's single objective plus the decaying per-shard
//! hysteresis penalty converges instead, so the artifact pins the
//! migration count with a lower-is-better counter gate: the
//! `rebalance-skew` series must localize the hot shards in at most
//! [`MAX_MIGRATIONS`] moves, and a ping-pong regression fails the CI
//! gate even if throughput barely moves.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_rebalance`

use gdb_bench::{artifact, emit_artifact, print_table, ratio, series_from_run, BenchParams};
use gdb_obs::{COUNTER_GATE_MAX_KEY, COUNTER_GATE_METRIC_KEY, COUNTER_GATE_SERIES_KEY};
use gdb_rebalance::RebalanceController;
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{SimDuration, SimTime};
use gdb_workloads::driver::{KeyDistribution, Workload};
use gdb_workloads::sysbench::{SysbenchMode, SysbenchScale, SysbenchWorkload};
use gdb_workloads::WorkloadReport;
use globaldb::{Cluster, ClusterConfig};

/// The convergence budget the counter gate enforces: one-sided traffic
/// must localize in at most this many migrations (the legacy chain
/// needed 16 and kept going).
const MAX_MIGRATIONS: u64 = 4;

fn window() -> SimDuration {
    SimDuration::from_millis(500)
}

struct WindowStat {
    commits: u64,
    latency: LatencyHistogram,
    event: String,
}

/// One windowed closed-loop run; `controller` ticks at window
/// boundaries when present.
fn run(
    params: &BenchParams,
    mut controller: Option<&mut RebalanceController>,
) -> (Cluster, WorkloadReport, Vec<WindowStat>) {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    let scale = match params.scale_name {
        "tiny" => SysbenchScale::tiny(),
        _ => SysbenchScale::small(),
    };
    let mut wl = SysbenchWorkload::new(scale, SysbenchMode::UpdateIndex, params.seed)
        .with_key_dist(KeyDistribution::Zipfian { theta: 0.99 });
    wl.pin_cn = Some(0);
    wl.setup(&mut cluster).expect("sysbench setup");

    let windows = ((params.run.duration.as_nanos() / window().as_nanos()).max(4)) as usize;
    let t0 = cluster.now();
    let t_end = t0 + window() * windows as u64;
    let mut report = WorkloadReport {
        duration: window() * windows as u64,
        ..Default::default()
    };
    let mut stats: Vec<WindowStat> = (0..windows)
        .map(|_| WindowStat {
            commits: 0,
            latency: LatencyHistogram::bounded(),
            event: String::new(),
        })
        .collect();

    let mut next_at: Vec<SimTime> = (0..params.run.terminals)
        .map(|i| t0 + SimDuration::from_micros(1 + i as u64 * 137))
        .collect();
    let mut cur_w = 0usize;
    while let Some((term, &at)) = next_at.iter().enumerate().min_by_key(|(_, t)| t.as_nanos()) {
        if at >= t_end {
            break;
        }
        let w = ((at.since(t0).as_nanos() / window().as_nanos()) as usize).min(windows - 1);
        while cur_w < w {
            // Window boundary: let the controller read the finished
            // window's shard counters and (maybe) start a batched plan.
            if let Some(c) = controller.as_deref_mut() {
                let batch = c.tick(&mut cluster);
                if !batch.is_empty() {
                    stats[cur_w].event = if batch.len() == 1 {
                        batch[0].reason.clone()
                    } else {
                        format!("batch of {}: {}", batch.len(), batch[0].reason)
                    };
                }
            }
            cur_w += 1;
        }
        let (kind, res) = wl.run_one(&mut cluster, term, at);
        match res {
            Ok(outcome) => {
                report.record_commit(kind, outcome.latency);
                stats[w].commits += 1;
                stats[w].latency.record(outcome.latency);
                next_at[term] = outcome.completed_at + params.run.think_time;
            }
            Err(e) if e.is_retryable() => {
                report.record_abort(kind);
                next_at[term] = at + params.run.think_time;
            }
            Err(e) => panic!("sysbench error ({kind}): {e}"),
        }
    }
    cluster.run_until(t_end);
    (cluster, report, stats)
}

fn main() {
    let params = BenchParams::from_env();
    let mut art = artifact("ablation_rebalance", &params);
    // The counter gate: `rebalance-skew` must converge within the
    // migration budget, and never regress past the blessed count.
    art.config_kv(COUNTER_GATE_METRIC_KEY, "rebalance.migrations_started");
    art.config_kv(COUNTER_GATE_MAX_KEY, MAX_MIGRATIONS);
    art.config_kv(COUNTER_GATE_SERIES_KEY, "rebalance-skew");

    let (mut c_static, r_static, _) = run(&params, None);
    let mut controller = RebalanceController::new();
    if params.scale_name == "tiny" {
        // At tiny scale a 500 ms window carries too few ops to clear
        // the default noise floor; lower it so the smoke run exercises
        // (and gates) real migrations rather than a silent no-op twin.
        controller.policy.min_shard_ops = 8;
    }
    let (mut c_rebal, r_rebal, mut windows) = run(&params, Some(&mut controller));

    art.series
        .push(series_from_run("static-skew", &mut c_static, &r_static));
    art.series
        .push(series_from_run("rebalance-skew", &mut c_rebal, &r_rebal));

    let rows: Vec<Vec<String>> = windows
        .iter_mut()
        .enumerate()
        .map(|(i, w)| {
            vec![
                format!(
                    "{}..{} ms",
                    i as u64 * window().as_millis(),
                    (i as u64 + 1) * window().as_millis()
                ),
                format!("{}", w.commits),
                format!("{}", w.latency.percentile(95.0)),
                w.event.clone(),
            ]
        })
        .collect();
    print_table(
        "Ablation — Sysbench Update-Index (Zipf 0.99, clients in region 0) with online rebalancing",
        &["window", "commits", "p95", "event"],
        &rows,
    );

    let snap = c_rebal.db.metrics_snapshot();
    let c = |n: &str| snap.counter(n).unwrap_or(0);
    let s = r_static.throughput_per_sec();
    let g = r_rebal.throughput_per_sec();
    println!(
        "static: {s:.0} txn/s; with rebalancing: {g:.0} txn/s ({}). Migrations: \
         {} started, {} completed, {} aborted; routing epoch {}.",
        ratio(g, s),
        c("rebalance.migrations_started"),
        c("rebalance.migrations_completed"),
        c("rebalance.migrations_aborted"),
        c("rebalance.routing_epoch"),
    );
    for p in &controller.history {
        println!("  - {}", p.reason);
    }
    // Time to converge: once the last plan started, the cost model was
    // satisfied for every remaining window.
    if let Some(last) = windows.iter().rposition(|w| !w.event.is_empty()) {
        println!(
            "converged after {} ms ({} windows): no further proposals",
            (last as u64 + 1) * window().as_millis(),
            last + 1
        );
    }

    // The convergence claim the artifact gates: a bounded number of
    // migrations (the legacy chain ping-ponged 16 times here) ...
    let started = c("rebalance.migrations_started");
    assert!(
        started <= MAX_MIGRATIONS,
        "cost model failed to converge: {started} migrations started (budget {MAX_MIGRATIONS})"
    );
    // ... and zero downtime: the cutovers must never starve a window.
    let min = windows.iter().map(|w| w.commits).min().unwrap_or(0);
    assert!(min > 0, "a window starved during a migration!");
    emit_artifact(&art);
}
