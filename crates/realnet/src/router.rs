//! Per-silo message routing: dispatch a request by `RpcKind` +
//! destination node to that node's role handler.
//!
//! The authoritative database state lives in the driver's `GlobalDb`
//! (the simulation executes transaction logic there); what a silo keeps
//! is the *physical* per-node state a real deployment would: the GTM's
//! monotonic counter, each DN's applied-redo cursor, per-node message
//! tallies. The harness cross-checks these against the driver's
//! message-plane accounting at shutdown, so a dropped or double-routed
//! frame cannot go unnoticed.

use crate::wire::{Ack, Request};
use gdb_simnet::{NetNodeId, NodeKind};
use globaldb::RpcKind;
use std::collections::BTreeMap;

/// Physical state of one hosted node.
#[derive(Debug, Clone, Default)]
struct NodeState {
    kind: Option<NodeKind>,
    /// GTM role: the monotonic timestamp counter.
    counter: u64,
    /// DN role: cumulative redo/payload bytes applied.
    applied_bytes: u64,
    msgs: u64,
}

/// Routes requests to the role handlers of one silo's nodes.
#[derive(Debug, Default)]
pub struct MessageRouter {
    nodes: BTreeMap<u32, NodeState>,
}

impl MessageRouter {
    /// Register a hosted node. Requests to unregistered nodes are
    /// answered with `ok = false` (misrouted frame).
    pub fn host(&mut self, node: NetNodeId, kind: NodeKind) {
        let s = self.nodes.entry(node.0).or_default();
        s.kind = Some(kind);
    }

    /// Dispatch one request to its destination node's handler.
    pub fn route(&mut self, req: &Request) -> Ack {
        let Some(state) = self.nodes.get_mut(&req.to.0) else {
            return Ack {
                seq: req.seq,
                ok: false,
                value: 0,
            };
        };
        state.msgs += 1;
        let value = match req.kind {
            // Timestamp service: bump and return the counter, whatever
            // silo-local node plays the GTM.
            RpcKind::GtmBeginTs | RpcKind::GtmCommitTs | RpcKind::GtmDualCommit => {
                state.counter += 1;
                state.counter
            }
            // Redo-carrying traffic advances the DN's applied cursor.
            RpcKind::DnWrite
            | RpcKind::TwoPcPrepare
            | RpcKind::TwoPcCommit
            | RpcKind::SyncQuorumShip
            | RpcKind::LogShipBatch
            | RpcKind::MigrateSnapshot
            | RpcKind::MigrateCatchup => {
                state.applied_bytes += req.declared;
                state.applied_bytes
            }
            // Control traffic: echo the sequence number.
            RpcKind::DnRead
            | RpcKind::RcpGather
            | RpcKind::RcpDistribute
            | RpcKind::SkylineProbe
            | RpcKind::TransitionBarrier
            | RpcKind::MigrateCutover => req.seq,
        };
        Ack {
            seq: req.seq,
            ok: true,
            value,
        }
    }

    /// Messages routed to `node` so far.
    pub fn msgs(&self, node: NetNodeId) -> u64 {
        self.nodes.get(&node.0).map_or(0, |s| s.msgs)
    }

    /// The GTM counter of `node` (0 unless it served timestamp traffic).
    pub fn counter(&self, node: NetNodeId) -> u64 {
        self.nodes.get(&node.0).map_or(0, |s| s.counter)
    }

    /// Cumulative applied redo bytes of `node`.
    pub fn applied_bytes(&self, node: NetNodeId) -> u64 {
        self.nodes.get(&node.0).map_or(0, |s| s.applied_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: RpcKind, to: u32, seq: u64, declared: u64) -> Request {
        Request {
            kind,
            from: NetNodeId(99),
            to: NetNodeId(to),
            seq,
            declared,
            delay_ns: 0,
        }
    }

    #[test]
    fn gtm_counter_is_monotonic_per_request() {
        let mut r = MessageRouter::default();
        r.host(NetNodeId(5), NodeKind::GtmServer);
        for i in 1..=10u64 {
            let ack = r.route(&req(RpcKind::GtmBeginTs, 5, i, 16));
            assert!(ack.ok);
            assert_eq!(ack.value, i, "counter must advance by 1 per request");
        }
        assert_eq!(r.counter(NetNodeId(5)), 10);
        assert_eq!(r.msgs(NetNodeId(5)), 10);
    }

    #[test]
    fn dn_applied_cursor_accumulates_declared_bytes() {
        let mut r = MessageRouter::default();
        r.host(NetNodeId(2), NodeKind::DataNodeReplica);
        r.route(&req(RpcKind::LogShipBatch, 2, 1, 4_000));
        let ack = r.route(&req(RpcKind::SyncQuorumShip, 2, 2, 1_000));
        assert_eq!(ack.value, 5_000);
        assert_eq!(r.applied_bytes(NetNodeId(2)), 5_000);
        // Reads echo the seq and leave the cursor alone.
        let ack = r.route(&req(RpcKind::DnRead, 2, 77, 128));
        assert_eq!(ack.value, 77);
        assert_eq!(r.applied_bytes(NetNodeId(2)), 5_000);
    }

    #[test]
    fn misrouted_frames_are_rejected() {
        let mut r = MessageRouter::default();
        r.host(NetNodeId(1), NodeKind::ComputeNode);
        let ack = r.route(&req(RpcKind::DnRead, 9, 3, 0));
        assert!(!ack.ok, "unhosted destination must be rejected");
        assert_eq!(ack.seq, 3);
    }
}
