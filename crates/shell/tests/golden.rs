//! Determinism and backend-agreement gates for the operator console.
//!
//! * The golden test runs the same script on two fresh sim-backed
//!   shells and requires byte-identical transcripts — any wall-clock,
//!   address, or hash-order leak into the output fails here.
//! * The thread-backend test replays the SQL portion on a real-threads
//!   cluster and requires the same statement results as sim, plus a
//!   clean plane/silo accounting cross-check at teardown.

use gdb_realnet::Backend;
use gdb_shell::Shell;

const SCRIPT: &str = "
# operator smoke: observe, write, break, heal, migrate
status
nodes
shards
sql CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)
sql INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)
run 200ms
sql SELECT v FROM kv WHERE k = 2
lag
fault crash-primary shard=0
run 100ms
fault restart-primary shard=0
run 500ms
sql SELECT v FROM kv WHERE k = 1
metrics replication.ship
use cn 1
sql UPDATE kv SET v = 21 WHERE k = 2
migrate 0 1 1
shards
run 2s
shards
sql SELECT v FROM kv WHERE k = 2
";

const SQL_SCRIPT: &str = "
sql CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)
sql INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)
run 200ms
sql UPDATE kv SET v = 11 WHERE k = 1
run 200ms
sql SELECT v FROM kv WHERE k = 1
sql SELECT COUNT(*) FROM kv
";

#[test]
fn golden_transcript_is_byte_identical() {
    let run = || {
        let mut shell = Shell::launch(7, Backend::Sim);
        let transcript = shell.run_script(SCRIPT);
        assert!(!shell.failed(), "script failed:\n{transcript}");
        transcript
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "transcript must replay byte-identically");
    // Sanity: the transcript actually exercised the surfaces it claims.
    for needle in ["-- via ", "lag_ms", "MIGRATING", "replication.ship.batches"] {
        assert!(first.contains(needle), "missing {needle:?}:\n{first}");
    }
}

/// The statement-visible results (rows, counts) of every SQL command,
/// excluding the `--` footer whose latency depends on physical timing.
fn sql_results(transcript: &str) -> Vec<String> {
    transcript
        .lines()
        .filter(|l| l.starts_with('(') || l.ends_with("row(s)") || l.ends_with("affected"))
        .map(str::to_string)
        .collect()
}

#[test]
fn thread_backend_agrees_with_sim() {
    let run = |backend: Backend| {
        let mut shell = Shell::launch(7, backend);
        let transcript = shell.run_script(SQL_SCRIPT);
        let teardown = shell.shutdown();
        assert!(
            teardown.contains("plane verified"),
            "{backend:?}: {teardown}"
        );
        assert!(!shell.failed(), "{backend:?} failed:\n{transcript}");
        sql_results(&transcript)
    };
    let sim = run(Backend::Sim);
    let thread = run(Backend::Thread);
    assert!(!sim.is_empty(), "script produced no SQL results");
    assert_eq!(sim, thread, "committed results must agree across backends");
}

#[test]
fn committed_scenarios_lint_clean() {
    for text in [
        include_str!("../../../scenarios/migrate-under-fire.toml"),
        include_str!("../../../scenarios/elastic-under-fire.toml"),
    ] {
        let errors = gdb_chaos::scenario::lint(text);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
