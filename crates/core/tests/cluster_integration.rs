//! End-to-end integration tests for the GlobalDB cluster: SQL over
//! sharded MVCC storage, asynchronous replication with RCP-consistent
//! replica reads, 2PC, online mode transitions, and failure handling.

use globaldb::{
    Cluster, ClusterConfig, Datum, GdbError, Geometry, ReplicationMode, SimDuration, SimTime,
    TmMode, TransitionDirection,
};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// A small cluster with the accounts table loaded.
fn cluster_with_accounts(config: ClusterConfig, rows: i64) -> Cluster {
    let mut c = Cluster::new(config);
    c.ddl(
        "CREATE TABLE accounts (id INT NOT NULL, region TEXT, balance DECIMAL, \
         PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
    )
    .unwrap();
    let table = c.db.catalog().table_by_name("accounts").unwrap().id;
    let data: Vec<gdb_model::Row> = (0..rows)
        .map(|i| {
            gdb_model::Row(vec![
                Datum::Int(i),
                Datum::Text(if i % 2 == 0 { "east" } else { "west" }.into()),
                Datum::Decimal(i * 100),
            ])
        })
        .collect();
    c.bulk_load(table, data).unwrap();
    c.finish_load();
    c
}

#[test]
fn sql_insert_read_roundtrip() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 0);
    let (out, outcome) = c
        .execute_sql(
            0,
            t(10),
            "INSERT INTO accounts VALUES (?, ?, ?)",
            &[
                Datum::Int(1),
                Datum::Text("east".into()),
                Datum::Decimal(500),
            ],
        )
        .unwrap();
    assert_eq!(out.count(), 1);
    assert!(outcome.commit_ts.is_some());
    assert!(!outcome.latency.is_zero(), "commit costs latency");

    let (rows, _) = c
        .execute_sql(
            0,
            t(20),
            "SELECT balance FROM accounts WHERE id = ?",
            &[Datum::Int(1)],
        )
        .unwrap();
    assert_eq!(rows.rows()[0].0[0], Datum::Decimal(500));
}

#[test]
fn multi_statement_transaction_reads_own_writes() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 10);
    let ins = c.prepare("INSERT INTO accounts VALUES (?, ?, ?)").unwrap();
    let sel = c
        .prepare("SELECT balance FROM accounts WHERE id = ?")
        .unwrap();
    let upd = c
        .prepare("UPDATE accounts SET balance = balance + ? WHERE id = ?")
        .unwrap();

    let ((), outcome) = c
        .run_transaction(0, t(10), false, false, |txn| {
            txn.execute(
                &ins,
                &[
                    Datum::Int(100),
                    Datum::Text("east".into()),
                    Datum::Decimal(10),
                ],
            )?;
            // Read our own uncommitted insert.
            let out = txn.execute(&sel, &[Datum::Int(100)])?;
            assert_eq!(out.rows()[0].0[0], Datum::Decimal(10));
            // Update it twice; accumulation must be visible.
            txn.execute(&upd, &[Datum::Decimal(5), Datum::Int(100)])?;
            txn.execute(&upd, &[Datum::Decimal(7), Datum::Int(100)])?;
            let out = txn.execute(&sel, &[Datum::Int(100)])?;
            assert_eq!(out.rows()[0].0[0], Datum::Decimal(22));
            Ok(())
        })
        .unwrap();
    assert!(!outcome.shards_written.is_empty());

    // Committed state visible to a later transaction.
    let (rows, _) = c
        .execute_sql(1, t(50), "SELECT balance FROM accounts WHERE id = 100", &[])
        .unwrap();
    assert_eq!(rows.rows()[0].0[0], Datum::Decimal(22));
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 5);
    let ins = c.prepare("INSERT INTO accounts VALUES (?, ?, ?)").unwrap();
    let res: Result<((), _), _> = c.run_transaction(0, t(10), false, false, |txn| {
        txn.execute(
            &ins,
            &[Datum::Int(99), Datum::Text("x".into()), Datum::Decimal(1)],
        )?;
        Err(GdbError::TxnAborted("client rollback".into()))
    });
    assert!(res.is_err());
    let (rows, _) = c
        .execute_sql(0, t(50), "SELECT id FROM accounts WHERE id = 99", &[])
        .unwrap();
    assert!(rows.rows().is_empty());
    // A later insert of the same key succeeds (locks were released).
    c.execute_sql(0, t(60), "INSERT INTO accounts VALUES (99, 'y', 2)", &[])
        .unwrap();
}

#[test]
fn replication_reaches_replicas_and_rcp_advances() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 4);
    let (_, outcome) = c
        .execute_sql(0, t(10), "INSERT INTO accounts VALUES (50, 'east', 1)", &[])
        .unwrap();
    let commit_ts = outcome.commit_ts.unwrap();

    // Give shipping + replay + RCP rounds time to settle.
    c.run_until(t(500));
    let table = c.db.catalog().table_by_name("accounts").unwrap().id;
    let schema = c.db.catalog().table(table).unwrap().clone();
    let key = gdb_model::RowKey::single(50i64);
    let shard = schema.shard_of_key(&key, c.db.shards().len() as u16).0 as usize;
    for replica in &c.db.shards()[shard].replicas {
        assert!(
            replica.applier.max_commit_ts() >= commit_ts,
            "replica not caught up"
        );
    }
    // The RCP visible at every CN covers the commit.
    for cn in 0..3 {
        assert!(c.db.cn_rcp(cn) >= commit_ts, "cn {cn} rcp behind");
    }
}

#[test]
fn ror_reads_hit_replicas_with_rcp_snapshot() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 20);
    c.run_until(t(200)); // let the load + heartbeats settle into an RCP
    let sel = c
        .prepare("SELECT balance FROM accounts WHERE id = ?")
        .unwrap();
    let ((), outcome) = c
        .run_transaction(1, t(210), true, true, |txn| {
            assert!(txn.is_ror(), "read-only txn should use ROR");
            let out = txn.execute(&sel, &[Datum::Int(3)])?;
            assert_eq!(out.rows()[0].0[0], Datum::Decimal(300));
            Ok(())
        })
        .unwrap();
    assert!(outcome.used_replica, "read must be served by a replica");
    assert!(c.db.stats().reads_on_replica > 0);
}

#[test]
fn ror_respects_freshness_of_rcp_snapshot() {
    // A write committed but not yet replicated is invisible to ROR reads
    // (bounded staleness), then becomes visible once the RCP catches up.
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 10);
    c.run_until(t(200));
    c.execute_sql(
        0,
        t(210),
        "UPDATE accounts SET balance = 7777 WHERE id = 2",
        &[],
    )
    .unwrap();
    let sel = c
        .prepare("SELECT balance FROM accounts WHERE id = ?")
        .unwrap();
    // Immediately after: ROR snapshot (RCP) predates the update.
    let ((), o1) = c
        .run_transaction(1, t(212), true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(2)])?;
            let _: () = assert_eq!(out.rows()[0].0[0], Datum::Decimal(200));
            Ok(())
        })
        .unwrap();
    // Later: the RCP passed the commit; the new value is visible.
    let ((), o2) = c
        .run_transaction(1, t(600), true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(2)])?;
            let _: () = assert_eq!(out.rows()[0].0[0], Datum::Decimal(7777));
            Ok(())
        })
        .unwrap();
    assert!(o2.snapshot > o1.snapshot, "RCP advanced monotonically");
}

#[test]
fn multi_shard_transactions_use_2pc_and_cost_more() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 100);
    // Find two ids on different shards.
    let table = c.db.catalog().table_by_name("accounts").unwrap().id;
    let schema = c.db.catalog().table(table).unwrap().clone();
    let shard_of = |i: i64| schema.shard_of_key(&gdb_model::RowKey::single(i), 6).0;
    let a = 1i64;
    let b = (2..100).find(|&i| shard_of(i) != shard_of(a)).unwrap();

    let upd = c
        .prepare("UPDATE accounts SET balance = balance + 1 WHERE id = ?")
        .unwrap();
    // Single-shard write.
    let ((), o1) = c
        .run_transaction(0, t(10), false, false, |txn| {
            txn.execute(&upd, &[Datum::Int(a)])?;
            Ok(())
        })
        .unwrap();
    assert_eq!(o1.shards_written.len(), 1);
    // Cross-shard write: 2PC.
    let ((), o2) = c
        .run_transaction(0, t(100), false, false, |txn| {
            txn.execute(&upd, &[Datum::Int(a)])?;
            txn.execute(&upd, &[Datum::Int(b)])?;
            Ok(())
        })
        .unwrap();
    assert_eq!(o2.shards_written.len(), 2);
    assert!(
        o2.latency > o1.latency,
        "2PC must cost more: {} vs {}",
        o2.latency,
        o1.latency
    );
}

#[test]
fn lock_conflicts_serialize_hot_row_updates() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 5);
    let upd = c
        .prepare("UPDATE accounts SET balance = balance + 1 WHERE id = 0")
        .unwrap();
    // Two transactions updating the same row at overlapping times.
    let ((), o1) = c
        .run_transaction(0, t(10), false, false, |txn| {
            txn.execute(&upd, &[])?;
            Ok(())
        })
        .unwrap();
    // Second starts before the first's commit applies.
    let start2 = t(10) + SimDuration::from_micros(100);
    let ((), o2) = c
        .run_transaction(1, start2, false, false, |txn| {
            txn.execute(&upd, &[])?;
            Ok(())
        })
        .unwrap();
    assert!(
        c.db.stats().lock_waits > 0,
        "second txn must wait for the lock"
    );
    assert!(o2.completed_at > o1.completed_at);
    // Both increments applied.
    let (rows, _) = c
        .execute_sql(2, t(500), "SELECT balance FROM accounts WHERE id = 0", &[])
        .unwrap();
    assert_eq!(rows.rows()[0].0[0], Datum::Decimal(2));
}

#[test]
fn gclock_mode_avoids_gtm_roundtrip_under_injected_delay() {
    // With 50 ms injected inter-host delay, GTM-mode commits pay the GTM
    // round trips; GClock commits only pay the (local) shard round trip
    // plus the microsecond-scale commit wait. Run from CN 1 (not
    // co-located with the GTM).
    let mk = |mode: TmMode| {
        let mut cfg = ClusterConfig::baseline_one_region();
        cfg.geometry = Geometry::OneRegion {
            injected_delay: SimDuration::from_millis(50),
        };
        cfg.tm_mode = mode;
        cfg.replication = ReplicationMode::Async;
        cluster_with_accounts(cfg, 10)
    };
    let run = |c: &mut Cluster| {
        let (_, o) = c
            .execute_sql(
                1,
                t(10),
                "UPDATE accounts SET balance = 1 WHERE id = 1",
                &[],
            )
            .unwrap();
        o.latency
    };
    let mut gtm = mk(TmMode::Gtm);
    let mut gclock = mk(TmMode::GClock);
    let l_gtm = run(&mut gtm);
    let l_gclock = run(&mut gclock);
    assert!(
        l_gtm.as_millis() >= l_gclock.as_millis() + 100,
        "GTM {} vs GClock {}",
        l_gtm,
        l_gclock
    );
}

#[test]
fn sync_remote_quorum_pays_wan_latency_async_does_not() {
    let mk = |repl: ReplicationMode| {
        let mut cfg = ClusterConfig::globaldb_three_city();
        cfg.replication = repl;
        cluster_with_accounts(cfg, 10)
    };
    let run = |c: &mut Cluster| {
        let (_, o) = c
            .execute_sql(
                0,
                t(10),
                "UPDATE accounts SET balance = 1 WHERE id = 1",
                &[],
            )
            .unwrap();
        o.latency
    };
    let mut sync = mk(ReplicationMode::SyncRemoteQuorum { quorum: 1 });
    let mut async_ = mk(ReplicationMode::Async);
    let l_sync = run(&mut sync);
    let l_async = run(&mut async_);
    assert!(
        l_sync.as_millis() >= l_async.as_millis() + 10,
        "sync {} vs async {}",
        l_sync,
        l_async
    );
}

#[test]
fn online_transition_gtm_to_gclock_without_downtime() {
    let mut cfg = ClusterConfig::globaldb_one_region();
    cfg.tm_mode = TmMode::Gtm;
    let mut c = cluster_with_accounts(cfg, 50);
    assert_eq!(c.db.cn_mode(0), TmMode::Gtm);

    let upd = c
        .prepare("UPDATE accounts SET balance = balance + 1 WHERE id = ?")
        .unwrap();
    // Keep writing while the transition runs.
    c.run_until(t(100));
    c.start_transition(TransitionDirection::ToGClock);
    let mut committed = 0;
    for i in 0..40u64 {
        let at = t(100) + SimDuration::from_millis(i * 2);
        if c.run_transaction((i % 3) as usize, at, false, false, |txn| {
            txn.execute(&upd, &[Datum::Int((i % 50) as i64)])
                .map(|_| ())
        })
        .is_ok()
        {
            committed += 1;
        }
    }
    c.run_until(t(2000));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGClock)
    );
    for cn in 0..3 {
        assert_eq!(c.db.cn_mode(cn), TmMode::GClock);
    }
    assert_eq!(c.db.gtm().mode(), TmMode::GClock);
    // Zero downtime: every transaction issued during the transition
    // committed (none were rejected; at most stragglers abort, and these
    // all ran to completion within events).
    assert_eq!(committed, 40);

    // And writes work in the new mode.
    c.execute_sql(
        0,
        t(2100),
        "UPDATE accounts SET balance = 0 WHERE id = 1",
        &[],
    )
    .unwrap();
}

#[test]
fn online_transition_back_to_gtm_after_clock_failure() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 20);
    assert_eq!(c.db.cn_mode(0), TmMode::GClock);
    c.run_until(t(100));
    // Some GClock commits happen first.
    c.execute_sql(
        0,
        t(110),
        "UPDATE accounts SET balance = 5 WHERE id = 3",
        &[],
    )
    .unwrap();
    // Clock trouble: fall back to GTM (Fig. 3).
    c.start_transition(TransitionDirection::ToGtm);
    c.run_until(t(1500));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGtm)
    );
    assert_eq!(c.db.gtm().mode(), TmMode::Gtm);
    // New GTM timestamps exceed all previous GClock timestamps: a new
    // write is visible to a subsequent read.
    let (_, o) = c
        .execute_sql(
            1,
            t(1600),
            "UPDATE accounts SET balance = 6 WHERE id = 3",
            &[],
        )
        .unwrap();
    let commit = o.commit_ts.unwrap();
    let (rows, o2) = c
        .execute_sql(2, t(1700), "SELECT balance FROM accounts WHERE id = 3", &[])
        .unwrap();
    assert!(o2.snapshot >= commit);
    assert_eq!(rows.rows()[0].0[0], Datum::Decimal(6));
}

#[test]
fn replicated_table_writes_fan_out_reads_stay_local() {
    let mut c = Cluster::new(ClusterConfig::globaldb_three_city());
    c.ddl(
        "CREATE TABLE item (i_id INT NOT NULL, i_name TEXT, PRIMARY KEY (i_id)) \
         DISTRIBUTE BY REPLICATION",
    )
    .unwrap();
    let (_, o) = c
        .execute_sql(0, t(10), "INSERT INTO item VALUES (1, 'widget')", &[])
        .unwrap();
    // A replicated-table write touches every shard.
    assert_eq!(o.shards_written.len(), c.db.shards().len());
    // Readable from every CN.
    for cn in 0..3 {
        let (rows, _) = c
            .execute_sql(
                cn,
                t(200 + cn as u64 * 10),
                "SELECT i_name FROM item WHERE i_id = 1",
                &[],
            )
            .unwrap();
        assert_eq!(rows.rows()[0].0[0], Datum::Text("widget".into()));
    }
}

#[test]
fn heartbeats_advance_rcp_without_writes() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 2);
    c.run_until(t(300));
    let rcp1 = c.db.cn_rcp(0);
    c.run_until(t(800));
    let rcp2 = c.db.cn_rcp(0);
    assert!(
        rcp2 > rcp1,
        "idle cluster RCP must advance via heartbeats: {rcp1:?} vs {rcp2:?}"
    );
    assert!(c.db.stats().heartbeats_sent > 10);
}

#[test]
fn replica_down_falls_back_to_primary() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 20);
    c.run_until(t(300));
    // Kill every replica of every shard.
    let replica_nodes: Vec<_> =
        c.db.shards()
            .iter()
            .flat_map(|s| s.replicas.iter().map(|r| r.node))
            .collect();
    for n in replica_nodes {
        c.db.topo_mut().set_node_down(n, true);
    }
    let sel = c
        .prepare("SELECT balance FROM accounts WHERE id = ?")
        .unwrap();
    let ((), outcome) = c
        .run_transaction(0, t(310), true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(4)])?;
            let _: () = assert_eq!(out.rows()[0].0[0], Datum::Decimal(400));
            Ok(())
        })
        .unwrap();
    assert!(!outcome.used_replica, "must fall back to primary");
}

#[test]
fn ddl_gates_ror_until_replicas_catch_up() {
    let mut c = cluster_with_accounts(ClusterConfig::globaldb_one_region(), 10);
    c.run_until(t(300));
    // A fresh DDL on the accounts table.
    c.run_until(t(310));
    c.ddl("CREATE INDEX acc_by_region ON accounts (region)")
        .unwrap();
    let before = c.db.stats().ror_rejected_ddl;
    let sel = c
        .prepare("SELECT balance FROM accounts WHERE id = ?")
        .unwrap();
    // Immediately after the DDL: RCP has not passed the DDL timestamp, so
    // ROR falls back (condition check fails).
    let ((), o) = c
        .run_transaction(1, t(311), true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(1)]).map(|_| ())
        })
        .unwrap();
    assert!(c.db.stats().ror_rejected_ddl > before);
    assert!(!o.used_replica);
    // Much later the DDL has replayed everywhere; ROR works again. Pick an
    // id whose shard primary is NOT co-hosted with CN 1 (otherwise the
    // skyline correctly prefers the local primary).
    c.run_until(t(1000));
    let table = c.db.catalog().table_by_name("accounts").unwrap().id;
    let schema = c.db.catalog().table(table).unwrap().clone();
    let cn1_host = c.db.topo().node_host(c.db.cns()[1].node);
    let id = (0..10i64)
        .find(|&i| {
            let s = schema
                .shard_of_key(&gdb_model::RowKey::single(i), c.db.shards().len() as u16)
                .0 as usize;
            c.db.topo().node_host(c.db.shards()[s].primary) != cn1_host
        })
        .expect("some id on a non-local shard");
    let ((), o2) = c
        .run_transaction(1, t(1001), true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(id)]).map(|_| ())
        })
        .unwrap();
    assert!(o2.used_replica);
}

#[test]
fn deterministic_under_same_seed() {
    let run = || {
        let mut c = cluster_with_accounts(ClusterConfig::globaldb_three_city(), 30);
        let upd = c
            .prepare("UPDATE accounts SET balance = balance + 1 WHERE id = ?")
            .unwrap();
        let mut latencies = Vec::new();
        for i in 0..10u64 {
            let ((), o) = c
                .run_transaction((i % 3) as usize, t(10 + i * 20), false, false, |txn| {
                    txn.execute(&upd, &[Datum::Int((i % 30) as i64)])
                        .map(|_| ())
                })
                .unwrap();
            latencies.push(o.latency);
        }
        latencies
    };
    assert_eq!(run(), run(), "same seed ⇒ identical execution");
}
