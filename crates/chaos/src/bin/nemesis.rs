//! Replayable chaos runs from the command line:
//!
//! ```text
//! cargo run -p gdb-chaos --bin nemesis -- --seed 7 --duration 10s
//! cargo run -p gdb-chaos --bin nemesis -- --plan primary-failover
//! ```
//!
//! The same `--seed` always produces the identical fault schedule, event
//! interleaving, and trace. Exits non-zero if any invariant was violated.

use gdb_chaos::plan::canned;
use gdb_chaos::{run_nemesis, run_plan, ChaosConfig, ChaosReport};
use gdb_obs::{flag_value, parse_duration, BenchArtifact, BenchSeries, NetStats};
use gdb_simnet::SimDuration;
use std::process::ExitCode;

/// Encode one run as a `gdb-bench/v1` artifact (figure `nemesis`).
fn to_artifact(report: &ChaosReport, seed: u64) -> BenchArtifact {
    let mut art = BenchArtifact::new("nemesis");
    art.config_kv("seed", seed);
    art.config_kv("plan", &report.plan_name);
    art.config_kv("duration_s", report.duration.as_secs_f64());
    art.config_kv("violations", report.violations.len());
    let c = |n: &str| report.metrics.counter(n).unwrap_or(0);
    let secs = report.duration.as_secs_f64().max(1e-9);
    art.series.push(BenchSeries {
        label: report.plan_name.clone(),
        throughput_txn_s: report.txns_committed as f64 / secs,
        tpmc: 0.0,
        commits: report.txns_committed,
        aborts: report.txns_aborted,
        latency: report.latency.clone(),
        phases: report
            .metrics
            .metrics
            .iter()
            .filter_map(|(name, m)| {
                let rest = name.strip_prefix(gdb_txnmgr::metrics::PHASE_PREFIX)?;
                match m {
                    globaldb::Metric::Histogram(h) => {
                        Some((rest.trim_end_matches("_us").to_string(), h.clone()))
                    }
                    _ => None,
                }
            })
            .collect(),
        net: NetStats {
            wire_bytes: c(gdb_replication::metrics::SHIP_WIRE_BYTES),
            raw_bytes: c(gdb_replication::metrics::SHIP_RAW_BYTES),
            batches: c(gdb_replication::metrics::SHIP_BATCHES),
            cross_region_msgs: c(gdb_simnet::metrics::CROSS_REGION_MSGS),
            cross_region_bytes: c(gdb_simnet::metrics::CROSS_REGION_BYTES),
        },
        metrics: report.metrics.clone(),
    });
    art
}

fn usage() -> ! {
    eprintln!(
        "usage: nemesis [--seed N] [--duration 60s|500ms] [--plan NAME] [--json PATH] \
         [--overlap] [--migrations] [--elastic]\n\
         plans: {}",
        canned::all()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Reject typos up front: every flag must be one we know, and value
    // flags must have their value.
    let value_flags = ["--seed", "--duration", "--plan", "--json"];
    let bool_flags = ["--overlap", "--migrations", "--elastic"];
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            if args.get(i + 1).is_none() {
                usage();
            }
            i += 2;
        } else if bool_flags.contains(&a) {
            i += 1;
        } else {
            usage();
        }
    }

    let seed: u64 = match flag_value(&args, "--seed") {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => 1,
    };
    let duration = match flag_value(&args, "--duration") {
        Some(v) => parse_duration(v).unwrap_or_else(|| usage()),
        None => SimDuration::from_secs(3),
    };
    let plan_name = flag_value(&args, "--plan").map(str::to_string);
    let json_path = flag_value(&args, "--json").map(str::to_string);
    let overlap = args.iter().any(|a| a == "--overlap");
    let migrations = args.iter().any(|a| a == "--migrations");
    let elastic = args.iter().any(|a| a == "--elastic");

    let mut cfg = ChaosConfig::quick(seed);
    cfg.duration = duration;
    cfg.overlap = overlap;
    cfg.migrations = migrations;
    cfg.elastic = elastic;

    let report = match plan_name {
        Some(name) => match canned::by_name(&name) {
            Some(plan) => run_plan(plan, &cfg),
            None => usage(),
        },
        None => run_nemesis(seed, &cfg),
    };

    print!("{}", report.render());
    if let Some(path) = json_path {
        let art = to_artifact(&report, seed);
        std::fs::write(&path, art.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
