//! The nemesis: a seeded random fault-schedule generator.
//!
//! Episodes are drawn one after another from a `SmallRng`; each pairs an
//! injection with its recovery, so the cluster keeps making progress over
//! a long run while every fault family still gets exercised. The schedule
//! is a pure function of `(seed, shape, config)` — replaying a seed
//! replays the exact schedule.

use crate::fault::Fault;
use crate::plan::FaultPlan;
use globaldb::{Cluster, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What the generator needs to know about the cluster it will torment.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    pub shards: usize,
    pub replicas_per_shard: usize,
    pub cns: usize,
    pub regions: usize,
}

impl ClusterShape {
    pub fn of(cluster: &Cluster) -> Self {
        ClusterShape {
            shards: cluster.db.shards().len(),
            replicas_per_shard: cluster
                .db
                .shards()
                .first()
                .map(|s| s.replicas.len())
                .unwrap_or(0),
            cns: cluster.db.cns().len(),
            regions: cluster.db.regions().len(),
        }
    }
}

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct NemesisConfig {
    pub seed: u64,
    /// First injection fires here.
    pub start: SimTime,
    /// No injection fires at or after `start + duration`; recoveries may
    /// land slightly later (every episode recovers).
    pub duration: SimDuration,
    /// Overlay a second concurrent fault on some episodes (~40% of
    /// them), drawn from any family other than the main episode's —
    /// including the heavy ones (GTM crash, region partition) — with
    /// the overlay's whole lifetime nested inside the main fault's
    /// outage. Off by default: one fault at a time.
    pub overlap: bool,
    /// Include the online-migration family: episodes that start a shard
    /// migration mid-traffic, half of which crash (then restore) the
    /// migration target mid-copy. Off by default so existing seeds keep
    /// replaying their exact historical schedules.
    pub migrations: bool,
    /// Include the elastic-membership family: episodes that provision a
    /// spare data node and then drain one of the original hosts onto the
    /// survivors mid-traffic, half of them crashing (then restoring) a
    /// drain-move source mid-flight. Off by default, same reason.
    pub elastic: bool,
}

impl NemesisConfig {
    pub fn new(seed: u64, start: SimTime, duration: SimDuration) -> Self {
        NemesisConfig {
            seed,
            start,
            duration,
            overlap: false,
            migrations: false,
            elastic: false,
        }
    }

    pub fn with_overlap(mut self) -> Self {
        self.overlap = true;
        self
    }

    pub fn with_migrations(mut self) -> Self {
        self.migrations = true;
        self
    }

    pub fn with_elastic(mut self) -> Self {
        self.elastic = true;
        self
    }
}

/// Generate a random, fully paired fault schedule.
pub fn generate(cfg: &NemesisConfig, shape: &ClusterShape) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut plan = FaultPlan::new(format!("nemesis-{}", cfg.seed));
    let end = cfg.start + cfg.duration;
    let mut t = cfg.start;

    // Enabled families, indexed by the same u32 draw as ever: with only
    // `migrations` on, the list is `[0..=7]` and the draw is identical to
    // the historical `gen_range(0..8)`, so existing seeds replay their
    // exact schedules; `elastic` appends family 8.
    let mut families: Vec<u32> = (0..=6).collect();
    if cfg.migrations {
        families.push(7);
    }
    if cfg.elastic {
        families.push(8);
    }
    while t < end {
        let hold = SimDuration::from_millis(rng.gen_range(80u64..400));
        let kind = families[rng.gen_range(0u32..families.len() as u32) as usize];
        match kind {
            0 => {
                // Primary crash, recovered either in place (WAL catch-up)
                // or by failover + rejoin of the old primary.
                let shard = rng.gen_range(0..shape.shards);
                plan = plan.at(t, Fault::CrashPrimary { shard });
                if shape.replicas_per_shard > 0 && rng.gen_bool(0.5) {
                    let replica = rng.gen_range(0..shape.replicas_per_shard);
                    plan = plan
                        .at(t + hold, Fault::PromoteReplica { shard, replica })
                        .at(t + hold + hold, Fault::RejoinOldPrimary { shard });
                } else {
                    plan = plan.at(t + hold, Fault::RestartPrimary { shard });
                }
            }
            1 => {
                let shard = rng.gen_range(0..shape.shards);
                let replica = rng.gen_range(0..shape.replicas_per_shard.max(1));
                plan = plan
                    .at(t, Fault::CrashReplica { shard, replica })
                    .at(t + hold, Fault::RestartReplica { shard, replica });
            }
            2 => {
                plan = plan.at(t, Fault::CrashGtm).at(t + hold, Fault::RestartGtm);
            }
            3 => {
                let cn = rng.gen_range(0..shape.cns);
                plan = plan
                    .at(t, Fault::CrashCn { cn })
                    .at(t + hold, Fault::RestartCn { cn });
            }
            4 if shape.regions > 1 => {
                let a = rng.gen_range(0..shape.regions);
                let mut b = rng.gen_range(0..shape.regions);
                if b == a {
                    b = (a + 1) % shape.regions;
                }
                plan = plan
                    .at(t, Fault::PartitionRegions { a, b })
                    .at(t + hold, Fault::HealRegions { a, b });
            }
            5 => {
                let extra = SimDuration::from_micros(rng.gen_range(500u64..8_000));
                plan = plan
                    .at(t, Fault::DelaySpike { extra })
                    .at(t + hold, Fault::ClearDelay);
            }
            7 => {
                // Online shard migration as a chaos event. Half the
                // episodes crash the freshly provisioned target mid-copy
                // (abort-and-rollback to the source) and restore the
                // orphan by the end of the hold; the rest race the
                // migration against the surrounding faults to cutover.
                let shard = rng.gen_range(0..shape.shards);
                let to_region = rng.gen_range(0..shape.regions);
                let to_host = rng.gen_range(0..3u16);
                plan = plan.at(
                    t,
                    Fault::StartMigration {
                        shard,
                        to_region,
                        to_host,
                    },
                );
                if rng.gen_bool(0.5) {
                    let half = SimDuration::from_nanos(hold.as_nanos() / 2);
                    plan = plan
                        .at(t + half, Fault::CrashMigrationTarget)
                        .at(t + hold, Fault::RestoreMigrationTarget);
                }
            }
            8 => {
                // Elastic membership mid-traffic: provision a spare node
                // off the initial footprint, then drain one original host
                // onto the survivors. Half the episodes crash a drain-move
                // source mid-flight (the member aborts, the host stays
                // draining) and restore it by the end of the hold.
                let add_region = rng.gen_range(0..shape.regions);
                let add_host = 3 + rng.gen_range(0..2u16);
                let drain_region = rng.gen_range(0..shape.regions);
                plan = plan.at(
                    t,
                    Fault::AddNode {
                        region: add_region,
                        host: add_host,
                    },
                );
                let quarter = SimDuration::from_nanos(hold.as_nanos() / 4);
                plan = plan.at(
                    t + quarter,
                    Fault::RemoveNode {
                        region: drain_region,
                        host: drain_region as u16,
                    },
                );
                if rng.gen_bool(0.5) {
                    plan = plan
                        .at(t + quarter + quarter, Fault::CrashMigrationSource)
                        .at(t + hold, Fault::RestoreMigrationSource);
                }
            }
            _ => {
                let cn = rng.gen_range(0..shape.cns);
                plan = plan
                    .at(t, Fault::ClockSyncOutage { cn })
                    .at(t + hold, Fault::ClockSyncResume { cn });
            }
        }
        if cfg.overlap && rng.gen_bool(0.4) {
            plan = overlay_episode(&mut rng, plan, shape, kind, t, hold);
        }
        // Quiet gap before the next episode.
        t = t + hold + SimDuration::from_millis(rng.gen_range(100u64..400));
    }
    plan
}

/// Overlay a second fault inside the main episode's hold window, so two
/// faults are outstanding at once. The overlay injects at a quarter of
/// the hold and recovers at three quarters, so its whole lifetime nests
/// strictly inside the main fault's outage — the heal ordering the
/// lifecycle layer has to get right. Eligible families are the light
/// ones (CN crash, delay spike, clock-sync outage) plus the heavy ones
/// (GTM crash, region partition) whose interleaved heals
/// `lifecycle.rs` now sequences; the family matching the main episode
/// is excluded so an overlay never recovers the main fault early.
fn overlay_episode(
    rng: &mut SmallRng,
    plan: FaultPlan,
    shape: &ClusterShape,
    main_kind: u32,
    t: SimTime,
    hold: SimDuration,
) -> FaultPlan {
    let quarter = SimDuration::from_nanos(hold.as_nanos() / 4);
    let from = t + quarter;
    let until = t + quarter + quarter + quarter;
    let mut families: Vec<u32> = vec![2, 3, 5, 6];
    if shape.regions > 1 {
        families.push(4);
    }
    families.retain(|&f| f != main_kind);
    let family = families[rng.gen_range(0..families.len())];
    match family {
        2 => plan.at(from, Fault::CrashGtm).at(until, Fault::RestartGtm),
        3 => {
            let cn = rng.gen_range(0..shape.cns);
            plan.at(from, Fault::CrashCn { cn })
                .at(until, Fault::RestartCn { cn })
        }
        4 => {
            let a = rng.gen_range(0..shape.regions);
            let mut b = rng.gen_range(0..shape.regions);
            if b == a {
                b = (a + 1) % shape.regions;
            }
            plan.at(from, Fault::PartitionRegions { a, b })
                .at(until, Fault::HealRegions { a, b })
        }
        5 => {
            let extra = SimDuration::from_micros(rng.gen_range(500u64..8_000));
            plan.at(from, Fault::DelaySpike { extra })
                .at(until, Fault::ClearDelay)
        }
        _ => {
            let cn = rng.gen_range(0..shape.cns);
            plan.at(from, Fault::ClockSyncOutage { cn })
                .at(until, Fault::ClockSyncResume { cn })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ClusterShape {
        ClusterShape {
            shards: 6,
            replicas_per_shard: 2,
            cns: 6,
            regions: 3,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = NemesisConfig::new(7, SimTime::from_millis(500), SimDuration::from_secs(5));
        let a = generate(&cfg, &shape());
        let b = generate(&cfg, &shape());
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let s = shape();
        let a = generate(
            &NemesisConfig::new(1, SimTime::from_millis(500), SimDuration::from_secs(5)),
            &s,
        );
        let b = generate(
            &NemesisConfig::new(2, SimTime::from_millis(500), SimDuration::from_secs(5)),
            &s,
        );
        assert_ne!(a.events, b.events);
    }

    /// Two injections back-to-back in time order with no recovery between
    /// them means two faults were outstanding at once.
    fn has_concurrent_injections(plan: &FaultPlan) -> bool {
        let mut evs = plan.events.clone();
        evs.sort_by_key(|e| e.at);
        let mut prev_was_injection = false;
        for e in &evs {
            if e.fault.is_injection() {
                if prev_was_injection {
                    return true;
                }
                prev_was_injection = true;
            } else {
                prev_was_injection = false;
            }
        }
        false
    }

    #[test]
    fn overlap_flag_overlays_concurrent_episodes() {
        let base = NemesisConfig::new(9, SimTime::from_millis(500), SimDuration::from_secs(5));
        let plain = generate(&base, &shape());
        assert!(
            !has_concurrent_injections(&plain),
            "without the flag every episode recovers before the next injects"
        );
        let overlapped = generate(&base.with_overlap(), &shape());
        assert!(
            has_concurrent_injections(&overlapped),
            "overlap flag produced no concurrent episodes"
        );
        assert!(overlapped.events.len() > plain.events.len());
        // Still deterministic.
        assert_eq!(
            overlapped.events,
            generate(&base.with_overlap(), &shape()).events
        );
    }

    /// The faults injected while another injection is still outstanding
    /// (i.e. the overlays), in time order.
    fn concurrent_faults(plan: &FaultPlan) -> Vec<Fault> {
        let mut evs = plan.events.clone();
        evs.sort_by_key(|e| e.at);
        let mut out = Vec::new();
        let mut prev_was_injection = false;
        for e in &evs {
            if e.fault.is_injection() {
                if prev_was_injection {
                    out.push(e.fault.clone());
                }
                prev_was_injection = true;
            } else {
                prev_was_injection = false;
            }
        }
        out
    }

    #[test]
    fn overlap_mode_overlays_heavy_fault_families() {
        let mut gtm = 0usize;
        let mut partition = 0usize;
        for seed in 1..=20 {
            let cfg =
                NemesisConfig::new(seed, SimTime::from_millis(500), SimDuration::from_secs(5))
                    .with_overlap();
            for f in concurrent_faults(&generate(&cfg, &shape())) {
                match f {
                    Fault::CrashGtm => gtm += 1,
                    Fault::PartitionRegions { .. } => partition += 1,
                    _ => {}
                }
            }
        }
        assert!(gtm > 0, "no overlay ever crashed the GTM");
        assert!(partition > 0, "no overlay ever partitioned regions");
    }

    #[test]
    fn migration_family_is_gated_by_the_flag() {
        let cfg = NemesisConfig::new(13, SimTime::from_millis(500), SimDuration::from_secs(10));
        let plain = generate(&cfg, &shape());
        assert!(
            !plain
                .events
                .iter()
                .any(|e| matches!(e.fault, Fault::StartMigration { .. })),
            "default schedules must not start migrations"
        );
        let with = generate(&cfg.with_migrations(), &shape());
        assert!(
            with.events
                .iter()
                .any(|e| matches!(e.fault, Fault::StartMigration { .. })),
            "migration flag drew no migration episode over 10s"
        );
        // Still deterministic with the extra family.
        assert_eq!(
            with.events,
            generate(&cfg.with_migrations(), &shape()).events
        );
    }

    #[test]
    fn elastic_family_is_gated_by_the_flag() {
        let cfg = NemesisConfig::new(13, SimTime::from_millis(500), SimDuration::from_secs(10));
        let plain = generate(&cfg.with_migrations(), &shape());
        assert!(
            !plain
                .events
                .iter()
                .any(|e| matches!(e.fault, Fault::AddNode { .. } | Fault::RemoveNode { .. })),
            "schedules without the flag must not touch membership"
        );
        let with = generate(&cfg.with_migrations().with_elastic(), &shape());
        assert!(
            with.events
                .iter()
                .any(|e| matches!(e.fault, Fault::AddNode { .. })),
            "elastic flag drew no add-node episode over 10s"
        );
        assert!(
            with.events
                .iter()
                .any(|e| matches!(e.fault, Fault::RemoveNode { .. })),
            "elastic flag drew no remove-node episode over 10s"
        );
        // Still deterministic with the extra family.
        assert_eq!(
            with.events,
            generate(&cfg.with_migrations().with_elastic(), &shape()).events
        );
    }

    #[test]
    fn every_injection_is_paired_with_recovery() {
        let cfg = NemesisConfig::new(11, SimTime::from_millis(500), SimDuration::from_secs(10));
        let plan = generate(&cfg, &shape());
        let injections = plan
            .events
            .iter()
            .filter(|e| e.fault.is_injection())
            .count();
        let recoveries = plan.events.len() - injections;
        // Failover episodes emit two recovery events (promote + rejoin),
        // so recoveries >= injections.
        assert!(recoveries >= injections, "{recoveries} < {injections}");
    }
}
