//! Ablation — online rebalancing under a skewed workload.
//!
//! Sysbench Update-Index with Zipfian keys, every client pinned to a
//! region-0 CN: the hot keys pile onto a handful of shards whose
//! primaries sit in remote regions, so the static cluster pays the
//! cross-region round trip on most commits. The rebalance run ticks a
//! [`RebalanceController`] at every window boundary; its region-affinity
//! policy detects the one-sided traffic and migrates hot shards into
//! region 0 online — snapshot copy, redo catch-up, cutover barrier,
//! routing-epoch bump — without any window dropping to zero commits.
//!
//! At tiny scale the per-window load stays under the policies' noise
//! floor (`min_shard_ops`), so the smoke artifact gates a deterministic
//! no-migration twin of the same timeline.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_rebalance`

use gdb_bench::{artifact, emit_artifact, print_table, ratio, series_from_run, BenchParams};
use gdb_rebalance::{PlacementPolicy, RebalanceController, RegionAffinity};
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{SimDuration, SimTime};
use gdb_workloads::driver::{KeyDistribution, Workload};
use gdb_workloads::sysbench::{SysbenchMode, SysbenchScale, SysbenchWorkload};
use gdb_workloads::WorkloadReport;
use globaldb::{Cluster, ClusterConfig};

fn window() -> SimDuration {
    SimDuration::from_millis(500)
}

struct WindowStat {
    commits: u64,
    latency: LatencyHistogram,
    event: String,
}

/// One windowed closed-loop run; `controller` ticks at window
/// boundaries when present.
fn run(
    params: &BenchParams,
    mut controller: Option<&mut RebalanceController>,
) -> (Cluster, WorkloadReport, Vec<WindowStat>) {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    let scale = match params.scale_name {
        "tiny" => SysbenchScale::tiny(),
        _ => SysbenchScale::small(),
    };
    let mut wl = SysbenchWorkload::new(scale, SysbenchMode::UpdateIndex, params.seed)
        .with_key_dist(KeyDistribution::Zipfian { theta: 0.99 });
    wl.pin_cn = Some(0);
    wl.setup(&mut cluster).expect("sysbench setup");

    let windows = ((params.run.duration.as_nanos() / window().as_nanos()).max(4)) as usize;
    let t0 = cluster.now();
    let t_end = t0 + window() * windows as u64;
    let mut report = WorkloadReport {
        duration: window() * windows as u64,
        ..Default::default()
    };
    let mut stats: Vec<WindowStat> = (0..windows)
        .map(|_| WindowStat {
            commits: 0,
            latency: LatencyHistogram::bounded(),
            event: String::new(),
        })
        .collect();

    let mut next_at: Vec<SimTime> = (0..params.run.terminals)
        .map(|i| t0 + SimDuration::from_micros(1 + i as u64 * 137))
        .collect();
    let mut cur_w = 0usize;
    while let Some((term, &at)) = next_at.iter().enumerate().min_by_key(|(_, t)| t.as_nanos()) {
        if at >= t_end {
            break;
        }
        let w = ((at.since(t0).as_nanos() / window().as_nanos()) as usize).min(windows - 1);
        while cur_w < w {
            // Window boundary: let the controller read the finished
            // window's shard counters and (maybe) start a migration.
            if let Some(c) = controller.as_deref_mut() {
                if let Some(p) = c.tick(&mut cluster) {
                    stats[cur_w].event = p.reason;
                }
            }
            cur_w += 1;
        }
        let (kind, res) = wl.run_one(&mut cluster, term, at);
        match res {
            Ok(outcome) => {
                report.record_commit(kind, outcome.latency);
                stats[w].commits += 1;
                stats[w].latency.record(outcome.latency);
                next_at[term] = outcome.completed_at + params.run.think_time;
            }
            Err(e) if e.is_retryable() => {
                report.record_abort(kind);
                next_at[term] = at + params.run.think_time;
            }
            Err(e) => panic!("sysbench error ({kind}): {e}"),
        }
    }
    cluster.run_until(t_end);
    (cluster, report, stats)
}

fn main() {
    let params = BenchParams::from_env();
    let mut art = artifact("ablation_rebalance", &params);

    let (mut c_static, r_static, _) = run(&params, None);
    // Affinity-only policy chain: with every client in one region the
    // objective is locality, and a load-spread policy in the chain would
    // evict freshly-localized shards right back to a remote host (the
    // two policies optimize conflicting objectives here and the cluster
    // thrashes — 16 oscillating migrations in a 10 s run).
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![Box::new(RegionAffinity::default())];
    let mut controller = RebalanceController::with_policies(policies);
    let (mut c_rebal, r_rebal, mut windows) = run(&params, Some(&mut controller));

    art.series
        .push(series_from_run("static-skew", &mut c_static, &r_static));
    art.series
        .push(series_from_run("rebalance-skew", &mut c_rebal, &r_rebal));

    let rows: Vec<Vec<String>> = windows
        .iter_mut()
        .enumerate()
        .map(|(i, w)| {
            vec![
                format!(
                    "{}..{} ms",
                    i as u64 * window().as_millis(),
                    (i as u64 + 1) * window().as_millis()
                ),
                format!("{}", w.commits),
                format!("{}", w.latency.percentile(95.0)),
                w.event.clone(),
            ]
        })
        .collect();
    print_table(
        "Ablation — Sysbench Update-Index (Zipf 0.99, clients in region 0) with online rebalancing",
        &["window", "commits", "p95", "event"],
        &rows,
    );

    let snap = c_rebal.db.metrics_snapshot();
    let c = |n: &str| snap.counter(n).unwrap_or(0);
    let s = r_static.throughput_per_sec();
    let g = r_rebal.throughput_per_sec();
    println!(
        "static: {s:.0} txn/s; with rebalancing: {g:.0} txn/s ({}). Migrations: \
         {} started, {} completed, {} aborted; routing epoch {}.",
        ratio(g, s),
        c("rebalance.migrations_started"),
        c("rebalance.migrations_completed"),
        c("rebalance.migrations_aborted"),
        c("rebalance.routing_epoch"),
    );
    for p in &controller.history {
        println!("  - {}", p.reason);
    }

    // Zero-downtime claim: the cutovers must never starve a window.
    let min = windows.iter().map(|w| w.commits).min().unwrap_or(0);
    assert!(min > 0, "a window starved during a migration!");
    emit_artifact(&art);
}
