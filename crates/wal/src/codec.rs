//! Low-level binary encoding helpers: LEB128 varints, length-prefixed
//! strings, and datum/row/key encoding shared by all redo record types.

use gdb_model::{DataType, Datum, Row, RowKey};
use std::fmt;

/// Decode failure: the byte stream is malformed or truncated.
///
/// Deliberately `Copy` with only static payloads: decode errors used to
/// carry a formatted `String`, which put an allocation (and a `format!`)
/// on every hot-path error check even though the message was always one
/// of a handful of fixed shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the named field completed.
    Truncated(&'static str),
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An unrecognized tag byte for the named kind.
    UnknownTag { kind: &'static str, tag: u8 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(what) => write!(f, "truncated {what}"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidUtf8 => write!(f, "invalid utf8"),
            DecodeError::UnknownTag { kind, tag } => write!(f, "unknown {kind} tag {tag}"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub type DecodeResult<T> = Result<T, DecodeError>;

pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

pub fn put_varint_i64(out: &mut Vec<u8>, v: i64) {
    // ZigZag encoding.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn u8(&mut self) -> DecodeResult<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(DecodeError::Truncated("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn varint(&mut self) -> DecodeResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::VarintOverflow);
            }
        }
    }

    pub fn varint_i64(&mut self) -> DecodeResult<i64> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn bytes(&mut self) -> DecodeResult<&'a [u8]> {
        let len = self.varint()? as usize;
        if self.pos + len > self.data.len() {
            return Err(DecodeError::Truncated("bytes"));
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Borrow a string field out of the underlying buffer: validates
    /// UTF-8 in place, no copy. The hot replay path for callers that
    /// only inspect (or intern) the text.
    pub fn str_ref(&mut self) -> DecodeResult<&'a str> {
        let b = self.bytes()?;
        std::str::from_utf8(b).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Owned string field. One validation, one allocation (the old
    /// implementation copied the bytes first and validated the copy).
    pub fn str(&mut self) -> DecodeResult<String> {
        self.str_ref().map(str::to_string)
    }
}

// Datum tags.
const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_DECIMAL: u8 = 2;
const T_TEXT: u8 = 3;
const T_BOOL_F: u8 = 4;
const T_BOOL_T: u8 = 5;

pub fn put_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(T_NULL),
        Datum::Int(v) => {
            out.push(T_INT);
            put_varint_i64(out, *v);
        }
        Datum::Decimal(v) => {
            out.push(T_DECIMAL);
            put_varint_i64(out, *v);
        }
        Datum::Text(s) => {
            out.push(T_TEXT);
            put_str(out, s);
        }
        Datum::Bool(false) => out.push(T_BOOL_F),
        Datum::Bool(true) => out.push(T_BOOL_T),
    }
}

pub fn get_datum(r: &mut Reader) -> DecodeResult<Datum> {
    Ok(match r.u8()? {
        T_NULL => Datum::Null,
        T_INT => Datum::Int(r.varint_i64()?),
        T_DECIMAL => Datum::Decimal(r.varint_i64()?),
        T_TEXT => Datum::Text(r.str()?),
        T_BOOL_F => Datum::Bool(false),
        T_BOOL_T => Datum::Bool(true),
        t => {
            return Err(DecodeError::UnknownTag {
                kind: "datum",
                tag: t,
            })
        }
    })
}

pub fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_varint(out, row.0.len() as u64);
    for d in &row.0 {
        put_datum(out, d);
    }
}

pub fn get_row(r: &mut Reader) -> DecodeResult<Row> {
    let mut row = Row::default();
    get_row_into(r, &mut row)?;
    Ok(row)
}

/// Decode a row into a caller-owned buffer, reusing its capacity. The
/// steady-state replay path decodes millions of rows; recycling the
/// datum `Vec` drops the per-row allocation to zero.
pub fn get_row_into(r: &mut Reader, row: &mut Row) -> DecodeResult<()> {
    row.0.clear();
    let n = r.varint()? as usize;
    row.0.reserve(n.min(1024));
    for _ in 0..n {
        row.0.push(get_datum(r)?);
    }
    Ok(())
}

pub fn put_key(out: &mut Vec<u8>, key: &RowKey) {
    put_varint(out, key.0.len() as u64);
    for d in &key.0 {
        put_datum(out, d);
    }
}

pub fn get_key(r: &mut Reader) -> DecodeResult<RowKey> {
    let n = r.varint()? as usize;
    let mut vals = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        vals.push(get_datum(r)?);
    }
    Ok(RowKey(vals))
}

/// Decode a key into a caller-owned buffer (see [`get_row_into`]).
pub fn get_key_into(r: &mut Reader, key: &mut RowKey) -> DecodeResult<()> {
    key.0.clear();
    let n = r.varint()? as usize;
    key.0.reserve(n.min(64));
    for _ in 0..n {
        key.0.push(get_datum(r)?);
    }
    Ok(())
}

pub fn put_data_type(out: &mut Vec<u8>, dt: DataType) {
    out.push(match dt {
        DataType::Int => 0,
        DataType::Decimal => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    });
}

pub fn get_data_type(r: &mut Reader) -> DecodeResult<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Int,
        1 => DataType::Decimal,
        2 => DataType::Text,
        3 => DataType::Bool,
        t => {
            return Err(DecodeError::UnknownTag {
                kind: "data type",
                tag: t,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(Reader::new(&out).varint().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut out = Vec::new();
            put_varint_i64(&mut out, v);
            assert_eq!(Reader::new(&out).varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn datum_roundtrip_all_variants() {
        let datums = [
            Datum::Null,
            Datum::Int(-42),
            Datum::Decimal(999_999),
            Datum::Text("héllo".into()),
            Datum::Bool(true),
            Datum::Bool(false),
        ];
        let mut out = Vec::new();
        for d in &datums {
            put_datum(&mut out, d);
        }
        let mut r = Reader::new(&out);
        for d in &datums {
            assert_eq!(&get_datum(&mut r).unwrap(), d);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn row_and_key_roundtrip() {
        let row = Row(vec![Datum::Int(1), Datum::Text("x".into()), Datum::Null]);
        let key = RowKey(vec![Datum::Int(7), Datum::Int(8)]);
        let mut out = Vec::new();
        put_row(&mut out, &row);
        put_key(&mut out, &key);
        let mut r = Reader::new(&out);
        assert_eq!(get_row(&mut r).unwrap(), row);
        assert_eq!(get_key(&mut r).unwrap(), key);
    }

    #[test]
    fn truncation_errors_not_panics() {
        let mut out = Vec::new();
        put_str(&mut out, "hello world");
        let mut r = Reader::new(&out[..3]);
        assert!(r.str().is_err());
        let mut r2 = Reader::new(&[0x80, 0x80]);
        assert!(r2.varint().is_err());
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xff, 0xfe]);
        assert!(Reader::new(&out).str().is_err());
        assert_eq!(
            Reader::new(&out).str_ref().unwrap_err(),
            DecodeError::InvalidUtf8
        );
    }

    #[test]
    fn str_ref_borrows_from_input() {
        let mut out = Vec::new();
        put_str(&mut out, "héllo");
        let mut r = Reader::new(&out);
        let s: &str = r.str_ref().unwrap();
        assert_eq!(s, "héllo");
        // The borrow points into `out`, not a copy.
        assert_eq!(s.as_ptr(), out[out.len() - s.len()..].as_ptr());
    }

    #[test]
    fn decode_into_reuses_buffers() {
        let row = Row(vec![Datum::Int(1), Datum::Bool(true)]);
        let key = RowKey(vec![Datum::Int(7)]);
        let mut out = Vec::new();
        put_row(&mut out, &row);
        put_key(&mut out, &key);

        let mut row_buf = Row(Vec::with_capacity(8));
        let mut key_buf = RowKey(Vec::with_capacity(8));
        let row_cap = row_buf.0.capacity();
        let mut r = Reader::new(&out);
        get_row_into(&mut r, &mut row_buf).unwrap();
        get_key_into(&mut r, &mut key_buf).unwrap();
        assert_eq!(row_buf, row);
        assert_eq!(key_buf, key);
        assert_eq!(row_buf.0.capacity(), row_cap, "no reallocation");

        // Stale contents are cleared on reuse.
        let mut r2 = Reader::new(&out);
        get_row_into(&mut r2, &mut row_buf).unwrap();
        assert_eq!(row_buf, row);
    }

    #[test]
    fn unknown_tags_name_the_kind() {
        let err = get_datum(&mut Reader::new(&[99])).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnknownTag {
                kind: "datum",
                tag: 99
            }
        );
        assert!(err.to_string().contains("datum"));
    }
}
