//! Real (wall-clock) time behind the virtual-time interface.
//!
//! Everything in this workspace tells time in [`SimTime`] nanoseconds.
//! The simulated engine *assigns* those instants; a real-cluster backend
//! (`gdb-realnet`) must instead *measure* them. [`TimeSource`] is the
//! narrow seam both sides share, and [`WallClock`] is the real
//! implementation: a monotonic clock anchored at an origin, reporting
//! elapsed real nanoseconds as `SimTime` so measured delays slot into
//! the same histograms, RCP math, and bench artifacts as simulated ones.
//!
//! Deliberately *not* used anywhere in `crates/core` — transport-generic
//! core code stays on virtual time (a grep test enforces it), and only
//! transport implementations and their silo threads read a `WallClock`.

use gdb_simnet::{SimDuration, SimTime};
use std::time::Instant;

/// A source of the current instant. Object-safe so silo event loops can
/// hold either the real clock or a test stub behind one pointer.
pub trait TimeSource: Send {
    /// The current instant, in nanoseconds since this source's origin.
    fn now(&self) -> SimTime;
}

/// Monotonic real time, anchored when constructed (or at an explicit
/// origin shared by several clocks so their readings are comparable).
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// A clock sharing `origin` — every silo of a real cluster is handed
    /// the same origin so their timestamps form one timeline.
    pub fn with_origin(origin: Instant) -> Self {
        WallClock { origin }
    }

    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Real time elapsed since `earlier` (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        self.now().since(earlier)
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_advances() {
        let clock = WallClock::new();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "wall clock went backwards: {a} -> {b}");
        assert!(
            b.since(a) >= SimDuration::from_millis(1),
            "2ms sleep measured as {}",
            b.since(a)
        );
    }

    #[test]
    fn shared_origin_clocks_agree() {
        let origin = Instant::now();
        let a = WallClock::with_origin(origin);
        let b = WallClock::with_origin(origin);
        let (ta, tb) = (a.now(), b.now());
        // Two reads against the same origin are within a generous bound
        // of each other (they differ only by the time between calls).
        let skew = if ta > tb { ta.since(tb) } else { tb.since(ta) };
        assert!(skew < SimDuration::from_secs(1), "skew {skew}");
    }

    #[test]
    fn time_source_is_object_safe_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<WallClock>();
        assert_send::<Box<dyn TimeSource>>();
        let boxed: Box<dyn TimeSource> = Box::new(WallClock::new());
        let _ = boxed.now();
    }
}
