//! Staleness estimation (paper §IV-B).
//!
//! * Under **GClock**, timestamps are (virtual) epoch time, so a replica's
//!   staleness is simply "now minus its last committed timestamp".
//! * Under **GTM**, timestamps are abstract counter ticks, so staleness is
//!   estimated from the gap between the RCP and the replica's last
//!   committed timestamp, divided by the rate at which the GTM issued
//!   timestamps over the last interval.

use gdb_model::Timestamp;
use gdb_simnet::{SimDuration, SimTime};

/// GClock-mode staleness: wall-clock distance between now and the
/// replica's max applied commit timestamp (timestamps are µs).
pub fn estimate_staleness_gclock(now: SimTime, last_committed: Timestamp) -> SimDuration {
    let now_us = now.as_micros();
    let ts_us = last_committed.as_micros();
    SimDuration::from_micros(now_us.saturating_sub(ts_us))
}

/// GTM-mode staleness: `(rcp - last_committed) / issue_rate`, where
/// `issue_rate` is timestamps issued per second during the last interval.
/// A replica at the RCP has zero staleness; an idle GTM (rate 0) yields
/// zero staleness since nothing has committed to miss.
pub fn estimate_staleness_gtm(
    last_committed: Timestamp,
    rcp: Timestamp,
    issue_rate_per_sec: f64,
) -> SimDuration {
    if issue_rate_per_sec <= 0.0 {
        return SimDuration::ZERO;
    }
    let gap = rcp.0.saturating_sub(last_committed.0) as f64;
    SimDuration::from_secs_f64(gap / issue_rate_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gclock_staleness_is_time_distance() {
        let now = SimTime::from_secs(10);
        let ts = Timestamp::from_micros(9_800_000); // 200 ms behind
        assert_eq!(
            estimate_staleness_gclock(now, ts),
            SimDuration::from_millis(200)
        );
        // A timestamp in the "future" (clock error) clamps to zero.
        let ahead = Timestamp::from_micros(11_000_000);
        assert_eq!(estimate_staleness_gclock(now, ahead), SimDuration::ZERO);
    }

    #[test]
    fn gtm_staleness_scales_with_rate() {
        // 1000 ts/sec, 500 ticks behind ⇒ 0.5 s stale.
        assert_eq!(
            estimate_staleness_gtm(Timestamp(500), Timestamp(1000), 1000.0),
            SimDuration::from_millis(500)
        );
        // Faster rate, same gap ⇒ fresher.
        assert_eq!(
            estimate_staleness_gtm(Timestamp(500), Timestamp(1000), 10_000.0),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn gtm_staleness_edge_cases() {
        // At or ahead of the RCP: zero.
        assert_eq!(
            estimate_staleness_gtm(Timestamp(1000), Timestamp(1000), 100.0),
            SimDuration::ZERO
        );
        assert_eq!(
            estimate_staleness_gtm(Timestamp(2000), Timestamp(1000), 100.0),
            SimDuration::ZERO
        );
        // Idle GTM: zero.
        assert_eq!(
            estimate_staleness_gtm(Timestamp(0), Timestamp(1000), 0.0),
            SimDuration::ZERO
        );
    }
}
