//! Cluster topology and the message cost model.
//!
//! Substitutes the paper's physical networks:
//!
//! * **One-Region**: three servers in one rack on 10 GbE, with Linux `tc`
//!   used to inject artificial inter-server delay (paper Fig. 6b) —
//!   modelled by [`Topology::set_injected_delay`], which applies to
//!   messages crossing *hosts* (not to co-located processes, matching how
//!   `tc` on the NIC behaves).
//! * **Three-City**: Xi'an / Langzhong / Dongguan with 25/35/55 ms RTTs and
//!   constrained WAN bandwidth — modelled by per-region-pair
//!   [`LinkParams`].
//!
//! The cost of a message is
//! `one_way_latency + jitter + injected_delay + bytes / effective_bandwidth
//! (+ Nagle penalty for small messages)`, where effective bandwidth depends
//! on the congestion-control model: BBR keeps long fat pipes ~full, while a
//! Reno-style window-limited sender achieves at most `window / RTT`
//! (paper §V-A's motivation for switching to BBR).

use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// A geographic region (city / data center).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// A network endpoint: one process (CN, DN, GTM server, ...) on some host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetNodeId(pub u32);

/// What role a node plays — used for reporting and failure injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    ComputeNode,
    DataNodePrimary,
    DataNodeReplica,
    GtmServer,
    TimeDevice,
    Client,
}

/// Congestion-control model for a link (paper §V-A tunes TCP BBR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionModel {
    /// Window-limited (Reno/CUBIC-like): throughput ≤ `window / RTT`.
    /// On long fat pipes this leaves most of the bandwidth idle.
    Reno {
        /// Effective congestion window in bytes.
        window_bytes: u64,
    },
    /// Model of TCP BBR: paces at ~95% of the bottleneck bandwidth
    /// regardless of RTT.
    Bbr,
}

/// Parameters of one (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub one_way_latency: SimDuration,
    /// Maximum extra uniform jitter per message.
    pub jitter: SimDuration,
    /// Raw link bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Whether Nagle's algorithm is enabled (adds a delayed-ack style
    /// penalty to sub-MSS messages; the paper disables it).
    pub nagle: bool,
    /// Extra latency suffered by a small message when Nagle is on.
    pub nagle_delay: SimDuration,
    pub congestion: CongestionModel,
}

/// Standard Ethernet MSS: messages smaller than this are "small" for Nagle.
pub const MSS_BYTES: u64 = 1460;

impl LinkParams {
    /// A 10 GbE rack-local link (One-Region cluster default).
    pub fn lan() -> Self {
        LinkParams {
            one_way_latency: SimDuration::from_micros(125),
            jitter: SimDuration::from_micros(20),
            bandwidth_bps: 1_250_000_000, // 10 Gb/s
            nagle: false,
            nagle_delay: SimDuration::from_millis(5),
            congestion: CongestionModel::Bbr,
        }
    }

    /// A WAN link with the given round-trip time, bandwidth in Mb/s, and
    /// baseline (untuned) TCP: Nagle on, Reno-style window-limited.
    pub fn wan_baseline(rtt: SimDuration, bandwidth_mbps: u64) -> Self {
        LinkParams {
            one_way_latency: rtt / 2,
            jitter: SimDuration::from_micros(rtt.as_micros() / 100),
            bandwidth_bps: bandwidth_mbps * 125_000,
            nagle: true,
            nagle_delay: SimDuration::from_millis(5),
            congestion: CongestionModel::Reno {
                window_bytes: 1 << 20, // 1 MiB
            },
        }
    }

    /// The same WAN link with GlobalDB's tuning applied: BBR and Nagle off
    /// (paper §V-A).
    pub fn wan_tuned(rtt: SimDuration, bandwidth_mbps: u64) -> Self {
        LinkParams {
            nagle: false,
            congestion: CongestionModel::Bbr,
            ..Self::wan_baseline(rtt, bandwidth_mbps)
        }
    }

    /// Effective achievable throughput (bytes/s) given this link's RTT and
    /// congestion model.
    pub fn effective_bandwidth(&self) -> u64 {
        let rtt_s = self.one_way_latency.as_secs_f64() * 2.0;
        match self.congestion {
            CongestionModel::Bbr => (self.bandwidth_bps as f64 * 0.95) as u64,
            CongestionModel::Reno { window_bytes } => {
                if rtt_s <= 0.0 {
                    self.bandwidth_bps
                } else {
                    let window_limited = (window_bytes as f64 / rtt_s) as u64;
                    window_limited.min(self.bandwidth_bps).max(1)
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct NodeInfo {
    region: RegionId,
    host: u16,
    kind: NodeKind,
}

/// Per-link traffic counters (used to report shipping volume with and
/// without redo-log compression).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    pub messages: u64,
    pub bytes: u64,
}

/// The simulated cluster network.
pub struct Topology {
    region_names: Vec<String>,
    nodes: Vec<NodeInfo>,
    /// Keyed by normalized (min,max) region pair; absent pairs fall back to
    /// `default_wan`.
    links: BTreeMap<(RegionId, RegionId), LinkParams>,
    intra_region: LinkParams,
    same_host: SimDuration,
    default_wan: LinkParams,
    injected_inter_host: SimDuration,
    down_nodes: HashSet<NetNodeId>,
    retired_nodes: HashSet<NetNodeId>,
    partitions: HashSet<(RegionId, RegionId)>,
    cross_region_stats: BTreeMap<(RegionId, RegionId), LinkStats>,
    total_stats: LinkStats,
    rng: SmallRng,
}

impl Topology {
    pub fn new(seed: u64) -> Self {
        Topology {
            region_names: Vec::new(),
            nodes: Vec::new(),
            links: BTreeMap::new(),
            intra_region: LinkParams::lan(),
            same_host: SimDuration::from_micros(5),
            default_wan: LinkParams::wan_baseline(SimDuration::from_millis(30), 1_000),
            injected_inter_host: SimDuration::ZERO,
            down_nodes: HashSet::new(),
            retired_nodes: HashSet::new(),
            partitions: HashSet::new(),
            cross_region_stats: BTreeMap::new(),
            total_stats: LinkStats::default(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn add_region(&mut self, name: impl Into<String>) -> RegionId {
        self.region_names.push(name.into());
        RegionId((self.region_names.len() - 1) as u16)
    }

    pub fn region_name(&self, r: RegionId) -> &str {
        &self.region_names[r.0 as usize]
    }

    pub fn region_count(&self) -> usize {
        self.region_names.len()
    }

    pub fn add_node(&mut self, region: RegionId, host: u16, kind: NodeKind) -> NetNodeId {
        assert!(
            (region.0 as usize) < self.region_names.len(),
            "unknown region"
        );
        self.nodes.push(NodeInfo { region, host, kind });
        NetNodeId((self.nodes.len() - 1) as u32)
    }

    pub fn node_region(&self, n: NetNodeId) -> RegionId {
        self.nodes[n.0 as usize].region
    }

    pub fn node_kind(&self, n: NetNodeId) -> NodeKind {
        self.nodes[n.0 as usize].kind
    }

    pub fn node_host(&self, n: NetNodeId) -> u16 {
        self.nodes[n.0 as usize].host
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn norm(a: RegionId, b: RegionId) -> (RegionId, RegionId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Set the (symmetric) link between two regions.
    pub fn set_link(&mut self, a: RegionId, b: RegionId, params: LinkParams) {
        assert_ne!(a, b, "use set_intra_region for the in-region link");
        self.links.insert(Self::norm(a, b), params);
    }

    /// Parameters of the link between two regions (falls back to the
    /// default WAN link if not explicitly set).
    pub fn link(&self, a: RegionId, b: RegionId) -> LinkParams {
        if a == b {
            return self.intra_region;
        }
        self.links
            .get(&Self::norm(a, b))
            .copied()
            .unwrap_or(self.default_wan)
    }

    pub fn set_intra_region(&mut self, params: LinkParams) {
        self.intra_region = params;
    }

    /// `tc`-style extra one-way delay injected on every inter-host message.
    pub fn set_injected_delay(&mut self, delay: SimDuration) {
        self.injected_inter_host = delay;
    }

    pub fn injected_delay(&self) -> SimDuration {
        self.injected_inter_host
    }

    /// Mark a node as crashed: messages to/from it are dropped. Retired
    /// nodes stay unreachable regardless; bringing one "up" is a no-op.
    pub fn set_node_down(&mut self, n: NetNodeId, down: bool) {
        if down {
            self.down_nodes.insert(n);
        } else {
            self.down_nodes.remove(&n);
        }
    }

    /// Permanently remove a node from the cluster (elastic scale-in).
    /// Unlike a crash, retirement is one-way: the node is unreachable
    /// forever and is excluded from [`Topology::down_nodes`], so chaos
    /// recovery sweeps never resurrect it.
    pub fn retire_node(&mut self, n: NetNodeId) {
        self.retired_nodes.insert(n);
        self.down_nodes.remove(&n);
    }

    pub fn is_node_retired(&self, n: NetNodeId) -> bool {
        self.retired_nodes.contains(&n)
    }

    pub fn is_node_down(&self, n: NetNodeId) -> bool {
        self.down_nodes.contains(&n) || self.retired_nodes.contains(&n)
    }

    /// Nodes currently marked down, in id order (deterministic iteration
    /// for fault-injection oracles and traces). Retired nodes are not
    /// listed: they are gone, not recoverable.
    pub fn down_nodes(&self) -> Vec<NetNodeId> {
        let mut nodes: Vec<NetNodeId> = self.down_nodes.iter().copied().collect();
        nodes.sort_by_key(|n| n.0);
        nodes
    }

    /// Remove every region partition at once (chaos-recovery sweep).
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Partition two regions from each other (messages dropped).
    pub fn partition(&mut self, a: RegionId, b: RegionId) {
        self.partitions.insert(Self::norm(a, b));
    }

    pub fn heal(&mut self, a: RegionId, b: RegionId) {
        self.partitions.remove(&Self::norm(a, b));
    }

    pub fn is_partitioned(&self, a: RegionId, b: RegionId) -> bool {
        a != b && self.partitions.contains(&Self::norm(a, b))
    }

    /// Cost of delivering `bytes` from `from` to `to`, or `None` if the
    /// message cannot be delivered (node down or regions partitioned).
    pub fn one_way(&mut self, from: NetNodeId, to: NetNodeId, bytes: u64) -> Option<SimDuration> {
        if self.is_node_down(from) || self.is_node_down(to) {
            return None;
        }
        if from == to {
            return Some(SimDuration::ZERO);
        }
        let (fi, ti) = (&self.nodes[from.0 as usize], &self.nodes[to.0 as usize]);
        if self.is_partitioned(fi.region, ti.region) {
            return None;
        }
        if fi.region == ti.region && fi.host == ti.host {
            // Loopback between co-located processes; tc does not delay it.
            self.total_stats.messages += 1;
            self.total_stats.bytes += bytes;
            return Some(self.same_host);
        }
        let link = self.link(fi.region, ti.region);
        let mut d = link.one_way_latency;
        if !link.jitter.is_zero() {
            d += SimDuration::from_nanos(self.rng.gen_range(0..=link.jitter.as_nanos()));
        }
        d += self.injected_inter_host;
        let bw = link.effective_bandwidth().max(1);
        d += SimDuration::from_secs_f64(bytes as f64 / bw as f64);
        if link.nagle && !bytes.is_multiple_of(MSS_BYTES) {
            // The trailing sub-MSS segment sits in the sender buffer until
            // the previous segment is acked (Nagle + delayed-ack pattern).
            d += link.nagle_delay;
        }
        if fi.region != ti.region {
            let s = self
                .cross_region_stats
                .entry(Self::norm(fi.region, ti.region))
                .or_default();
            s.messages += 1;
            s.bytes += bytes;
        }
        self.total_stats.messages += 1;
        self.total_stats.bytes += bytes;
        Some(d)
    }

    /// Whether a message from `from` to `to` is currently deliverable
    /// given fault state alone (node down, region partition). Mirrors the
    /// short-circuit order of [`Topology::one_way`] but draws no jitter
    /// and records no traffic — real transports consult this before
    /// putting a frame on an actual socket, so simulated fault injection
    /// (chaos nemeses) drops their physical messages too.
    pub fn deliverable(&self, from: NetNodeId, to: NetNodeId) -> bool {
        if self.is_node_down(from) || self.is_node_down(to) {
            return false;
        }
        if from == to {
            return true;
        }
        let (fi, ti) = (&self.nodes[from.0 as usize], &self.nodes[to.0 as usize]);
        !self.is_partitioned(fi.region, ti.region)
    }

    /// Record one delivered message's traffic without drawing from the
    /// cost model's RNG: the bookkeeping half of [`Topology::one_way`],
    /// for transports that measured the delay physically instead of
    /// simulating it. Self-sends are not counted, matching `one_way`'s
    /// `from == to` short-circuit.
    pub fn record_delivery(&mut self, from: NetNodeId, to: NetNodeId, bytes: u64) {
        if from == to {
            return;
        }
        let (fi, ti) = (&self.nodes[from.0 as usize], &self.nodes[to.0 as usize]);
        if fi.region != ti.region {
            let s = self
                .cross_region_stats
                .entry(Self::norm(fi.region, ti.region))
                .or_default();
            s.messages += 1;
            s.bytes += bytes;
        }
        self.total_stats.messages += 1;
        self.total_stats.bytes += bytes;
    }

    /// Account traffic whose delivery cost was modelled elsewhere (the
    /// log-shipping path computes transmission explicitly and sends its
    /// propagation probe with a minimal payload): adds the bytes to the
    /// link counters without charging any delay or message.
    pub fn charge_bytes(&mut self, from: NetNodeId, to: NetNodeId, bytes: u64) {
        let (fi, ti) = (&self.nodes[from.0 as usize], &self.nodes[to.0 as usize]);
        if fi.region != ti.region {
            let s = self
                .cross_region_stats
                .entry(Self::norm(fi.region, ti.region))
                .or_default();
            s.bytes += bytes;
        }
        self.total_stats.bytes += bytes;
    }

    /// Round-trip cost of a small request/response pair.
    pub fn rtt(&mut self, a: NetNodeId, b: NetNodeId) -> Option<SimDuration> {
        let there = self.one_way(a, b, 128)?;
        let back = self.one_way(b, a, 128)?;
        Some(there + back)
    }

    /// Round trip shipping `bytes` to `b` with a small acknowledgment back
    /// (the sync-replication durability wait).
    pub fn ship_rtt(&mut self, a: NetNodeId, b: NetNodeId, bytes: u64) -> Option<SimDuration> {
        let there = self.one_way(a, b, bytes)?;
        let back = self.one_way(b, a, 128)?;
        Some(there + back)
    }

    /// The *expected* (jitter-free, load-free) RTT between two nodes; used
    /// for co-location decisions, not for message costs.
    pub fn nominal_rtt(&self, a: NetNodeId, b: NetNodeId) -> SimDuration {
        let (ai, bi) = (&self.nodes[a.0 as usize], &self.nodes[b.0 as usize]);
        if a == b || (ai.region == bi.region && ai.host == bi.host) {
            return self.same_host * 2;
        }
        let link = self.link(ai.region, bi.region);
        link.one_way_latency * 2 + self.injected_inter_host * 2
    }

    /// Traffic shipped across each region pair so far.
    pub fn cross_region_stats(&self) -> &BTreeMap<(RegionId, RegionId), LinkStats> {
        &self.cross_region_stats
    }

    /// All delivered traffic, every link (loopback included).
    pub fn total_stats(&self) -> LinkStats {
        self.total_stats
    }

    /// Cross-region traffic summed over all region pairs.
    pub fn cross_region_totals(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for s in self.cross_region_stats.values() {
            t.messages += s.messages;
            t.bytes += s.bytes;
        }
        t
    }

    pub fn reset_stats(&mut self) {
        self.cross_region_stats.clear();
        self.total_stats = LinkStats::default();
    }

    /// All nodes of a given kind in a region.
    pub fn nodes_in_region(&self, r: RegionId, kind: NodeKind) -> Vec<NetNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.region == r && n.kind == kind)
            .map(|(i, _)| NetNodeId(i as u32))
            .collect()
    }
}

/// Convenience builder for the two cluster geometries used in the paper.
pub struct TopologyBuilder;

impl TopologyBuilder {
    /// The paper's One-Region cluster: one region, three hosts, 10 GbE.
    pub fn one_region(seed: u64) -> (Topology, RegionId) {
        let mut t = Topology::new(seed);
        let r = t.add_region("one-region");
        t.set_intra_region(LinkParams::lan());
        (t, r)
    }

    /// The paper's Three-City cluster: Xi'an, Langzhong, Dongguan with
    /// 25/35/55 ms RTT edges. `tuned` picks BBR + Nagle-off (GlobalDB) vs
    /// baseline TCP; `bandwidth_mbps` is the inter-city bandwidth.
    pub fn three_city(seed: u64, tuned: bool, bandwidth_mbps: u64) -> (Topology, [RegionId; 3]) {
        let mut t = Topology::new(seed);
        let xian = t.add_region("xian");
        let langzhong = t.add_region("langzhong");
        let dongguan = t.add_region("dongguan");
        t.set_intra_region(LinkParams::lan());
        let mk = |rtt_ms: u64| -> LinkParams {
            if tuned {
                LinkParams::wan_tuned(SimDuration::from_millis(rtt_ms), bandwidth_mbps)
            } else {
                LinkParams::wan_baseline(SimDuration::from_millis(rtt_ms), bandwidth_mbps)
            }
        };
        t.set_link(xian, langzhong, mk(25));
        t.set_link(langzhong, dongguan, mk(35));
        t.set_link(xian, dongguan, mk(55));
        (t, [xian, langzhong, dongguan])
    }

    /// A synthetic N-region WAN for the scale tier (ROADMAP's 5–9 region
    /// stress geometry): a full mesh where the RTT between regions `i`
    /// and `j` grows with their circular distance —
    /// `20 ms + 10 ms × min(|i−j|, n−|i−j|)` — so the geometry has real
    /// near/far structure (nearest-shard routing is non-trivial) while
    /// staying a pure function of the region count. Links are tuned
    /// (BBR + Nagle-off) at `bandwidth_mbps`.
    pub fn multi_region(
        seed: u64,
        regions: usize,
        bandwidth_mbps: u64,
    ) -> (Topology, Vec<RegionId>) {
        let mut t = Topology::new(seed);
        let rs: Vec<RegionId> = (0..regions)
            .map(|i| t.add_region(format!("r{i}")))
            .collect();
        t.set_intra_region(LinkParams::lan());
        for i in 0..regions {
            for j in (i + 1)..regions {
                let ring = (j - i).min(regions - (j - i)) as u64;
                let rtt = SimDuration::from_millis(20 + 10 * ring);
                t.set_link(rs[i], rs[j], LinkParams::wan_tuned(rtt, bandwidth_mbps));
            }
        }
        (t, rs)
    }
}

/// A tiny convenience: the virtual time a periodic activity with `period`
/// next fires at, aligned to its phase.
pub fn next_tick(now: SimTime, period: SimDuration) -> SimTime {
    if period.is_zero() {
        return now;
    }
    let p = period.as_nanos();
    let n = now.as_nanos();
    SimTime::from_nanos(((n / p) + 1) * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_topo() -> (Topology, NetNodeId, NetNodeId, NetNodeId, NetNodeId) {
        let mut t = Topology::new(42);
        let r1 = t.add_region("a");
        let r2 = t.add_region("b");
        t.set_link(
            r1,
            r2,
            LinkParams {
                jitter: SimDuration::ZERO,
                ..LinkParams::wan_tuned(SimDuration::from_millis(30), 1_000)
            },
        );
        let n1 = t.add_node(r1, 0, NodeKind::ComputeNode);
        let n2 = t.add_node(r1, 0, NodeKind::GtmServer);
        let n3 = t.add_node(r1, 1, NodeKind::DataNodePrimary);
        let n4 = t.add_node(r2, 2, NodeKind::DataNodeReplica);
        (t, n1, n2, n3, n4)
    }

    #[test]
    fn same_host_is_cheap_and_undelayed() {
        let (mut t, n1, n2, ..) = two_region_topo();
        t.set_injected_delay(SimDuration::from_millis(100));
        let d = t.one_way(n1, n2, 100).unwrap();
        assert!(d < SimDuration::from_micros(10), "got {d}");
    }

    #[test]
    fn injected_delay_applies_across_hosts() {
        let (mut t, n1, _, n3, _) = two_region_topo();
        let before = t.one_way(n1, n3, 100).unwrap();
        t.set_injected_delay(SimDuration::from_millis(50));
        let after = t.one_way(n1, n3, 100).unwrap();
        assert!(after.as_millis() >= before.as_millis() + 50);
    }

    #[test]
    fn wan_latency_dominates_cross_region() {
        let (mut t, n1, _, _, n4) = two_region_topo();
        let d = t.one_way(n1, n4, 100).unwrap();
        assert!(
            d >= SimDuration::from_millis(15),
            "one-way ≥ rtt/2, got {d}"
        );
        assert!(d < SimDuration::from_millis(25));
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let (mut t, n1, _, _, n4) = two_region_topo();
        let small = t.one_way(n1, n4, 1_460).unwrap();
        let big = t.one_way(n1, n4, 125_000_000).unwrap(); // 125 MB at 1Gb/s ≈ 1s
        assert!(big.as_secs_f64() > small.as_secs_f64() + 0.9);
    }

    #[test]
    fn reno_underutilizes_long_fat_pipe() {
        let baseline = LinkParams::wan_baseline(SimDuration::from_millis(55), 1_000);
        let tuned = LinkParams::wan_tuned(SimDuration::from_millis(55), 1_000);
        // 1 MiB window over 55 ms RTT ≈ 19 MB/s vs BBR's ~119 MB/s.
        assert!(baseline.effective_bandwidth() * 4 < tuned.effective_bandwidth());
    }

    #[test]
    fn nagle_penalizes_small_messages_only() {
        let mut t = Topology::new(1);
        let r1 = t.add_region("a");
        let r2 = t.add_region("b");
        t.set_link(
            r1,
            r2,
            LinkParams {
                jitter: SimDuration::ZERO,
                ..LinkParams::wan_baseline(SimDuration::from_millis(20), 1_000)
            },
        );
        let a = t.add_node(r1, 0, NodeKind::ComputeNode);
        let b = t.add_node(r2, 1, NodeKind::DataNodePrimary);
        let small = t.one_way(a, b, 100).unwrap();
        let aligned = t.one_way(a, b, MSS_BYTES * 4).unwrap();
        assert!(small > aligned, "sub-MSS message must pay Nagle delay");
    }

    #[test]
    fn partition_and_node_down_drop_messages() {
        let (mut t, n1, _, n3, n4) = two_region_topo();
        t.partition(t.node_region(n1), t.node_region(n4));
        assert!(t.one_way(n1, n4, 10).is_none());
        assert!(t.one_way(n1, n3, 10).is_some(), "intra-region unaffected");
        t.heal(t.node_region(n1), t.node_region(n4));
        assert!(t.one_way(n1, n4, 10).is_some());
        t.set_node_down(n3, true);
        assert!(t.one_way(n1, n3, 10).is_none());
        t.set_node_down(n3, false);
        assert!(t.one_way(n1, n3, 10).is_some());
    }

    #[test]
    fn retirement_is_permanent_and_invisible_to_recovery() {
        let (mut t, n1, _, n3, _) = two_region_topo();
        t.set_node_down(n3, true);
        assert_eq!(t.down_nodes(), vec![n3]);
        t.retire_node(n3);
        assert!(t.is_node_retired(n3));
        assert!(t.is_node_down(n3));
        assert!(t.down_nodes().is_empty(), "retired ≠ recoverable");
        // A recovery sweep bringing the node "up" does not resurrect it.
        t.set_node_down(n3, false);
        assert!(t.is_node_down(n3));
        assert!(t.one_way(n1, n3, 10).is_none());
        assert!(!t.deliverable(n1, n3));
    }

    #[test]
    fn deliverable_mirrors_one_way_fault_checks() {
        let (mut t, n1, _, n3, n4) = two_region_topo();
        assert!(t.deliverable(n1, n4));
        t.partition(t.node_region(n1), t.node_region(n4));
        assert!(!t.deliverable(n1, n4));
        assert!(t.deliverable(n1, n3), "intra-region unaffected");
        t.heal(t.node_region(n1), t.node_region(n4));
        t.set_node_down(n3, true);
        assert!(!t.deliverable(n1, n3));
        assert!(!t.deliverable(n3, n1));
        // A down node can still "reach" itself (one_way's down check
        // precedes the from == to short-circuit, so mirror that: down
        // first, then self-send).
        assert!(!t.deliverable(n3, n3));
        t.set_node_down(n3, false);
        assert!(t.deliverable(n3, n3));
    }

    #[test]
    fn record_delivery_counts_without_touching_the_rng() {
        let (mut t1, n1, _, _, n4) = two_region_topo();
        let (mut t2, m1, _, _, m4) = two_region_topo();
        t1.record_delivery(n1, n4, 700);
        t1.record_delivery(n1, n1, 700); // self-send: not counted
        assert_eq!(t1.total_stats().messages, 1);
        assert_eq!(t1.total_stats().bytes, 700);
        assert_eq!(t1.cross_region_totals().messages, 1);
        // The RNG stream is untouched: a subsequent one_way draws the
        // same jitter as on a fresh topology.
        assert_eq!(t1.one_way(n1, n4, 64), t2.one_way(m1, m4, 64));
    }

    #[test]
    fn cross_region_traffic_is_counted() {
        let (mut t, n1, _, _, n4) = two_region_topo();
        t.one_way(n1, n4, 1000).unwrap();
        t.one_way(n4, n1, 500).unwrap();
        let stats: Vec<_> = t.cross_region_stats().values().collect();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].messages, 2);
        assert_eq!(stats[0].bytes, 1500);
    }

    #[test]
    fn three_city_builder_matches_paper_geometry() {
        let (t, [x, l, d]) = TopologyBuilder::three_city(7, true, 1_000);
        assert_eq!(
            t.link(x, l).one_way_latency,
            SimDuration::from_micros(12_500)
        );
        assert_eq!(
            t.link(l, d).one_way_latency,
            SimDuration::from_micros(17_500)
        );
        assert_eq!(
            t.link(x, d).one_way_latency,
            SimDuration::from_micros(27_500)
        );
        assert!(!t.link(x, d).nagle);
    }

    #[test]
    fn next_tick_alignment() {
        assert_eq!(
            next_tick(SimTime::from_millis(7), SimDuration::from_millis(5)),
            SimTime::from_millis(10)
        );
        assert_eq!(
            next_tick(SimTime::from_millis(10), SimDuration::from_millis(5)),
            SimTime::from_millis(15)
        );
    }

    #[test]
    fn nominal_rtt_is_deterministic() {
        let (t, n1, _, _, n4) = two_region_topo();
        assert_eq!(t.nominal_rtt(n1, n4), SimDuration::from_millis(30));
        assert_eq!(t.nominal_rtt(n1, n1), SimDuration::from_micros(10));
    }
}
