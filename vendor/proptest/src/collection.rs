//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use core::ops::{Range, RangeInclusive};
use rand::rngs::SmallRng;
use rand::Rng;

/// A size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose length falls in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
