//! The transaction hot path, measured end to end in real wall-clock time.
//!
//! `txn_bench` drives a deterministic single-shard write workload through
//! two complete primary→replica pipelines:
//!
//! * **fast** — the live path after the hot-path pass: no-clone lock
//!   acquires ([`gdb_storage::LockTable`]), arena version chains with
//!   pooled row buffers ([`gdb_storage::Table`]), encode-once group
//!   commit ([`GroupCommitWal`]), zero-copy shipping (the durable segment
//!   suffix is compressed in place, never re-encoded), and borrowed
//!   replay decode ([`ReplayDecoder`] + `get_key_into`/`get_row_into`).
//! * **reference** — the frozen pre-pass path from
//!   [`gdb_storage::reference`]: per-acquire key clones, `Vec`-chain
//!   tables, owned `RedoRecord`s re-encoded per batch, per-transaction
//!   fsync, the double compression of the old shipping channel, and the
//!   `String`-per-text legacy decode.
//!
//! Both pipelines run the *same* generated script and must produce
//! byte-identical durable segments and identical committed state (the
//! digests in [`TxnPathResult`]); only then is the wall-clock ratio
//! meaningful. The CI gate compares the ratio, never absolutes.

use gdb_compress::{Codec, MatchTable};
use gdb_model::{Datum, Row, RowKey, TableId, Timestamp, TxnId};
use gdb_simnet::SimTime;
use gdb_storage::reference::{legacy_decode_batch, ReferenceLockTable, ReferenceTable};
use gdb_storage::{LockOutcome, LockTable, Table, VisibleRow};
use gdb_wal::record::encode_record;
use gdb_wal::{
    GroupCommitWal, Lsn, RedoPayload, RedoPayloadRef, RedoRecord, ReplayDecoder, ReplayStep,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The two tables the script writes to.
pub const TABLES: [TableId; 2] = [TableId(1), TableId(2)];
/// Distinct keys per table — small enough to stay cache-resident, large
/// enough that version chains keep churning through vacuum.
pub const KEYSPACE: u32 = 4096;
/// Roughly one write in this many carries a text column, keeping the
/// string decode path honest without letting it dominate.
pub const TEXT_RATIO: u32 = 8;
/// Vacuum every this many transactions (refills the row pools).
pub const VACUUM_EVERY: usize = 1024;

const TEXTS: [&str; 4] = [
    "priority-shipment-flag",
    "customer-credit-note: balance carried forward",
    "ror-freshness-probe",
    "warehouse-overflow-annotation-abcdefghijklmnop",
];

/// One write of a transaction script.
#[derive(Debug, Clone, Copy)]
pub struct WriteOp {
    /// Index into [`TABLES`].
    pub table: u8,
    pub key: u32,
    pub value: i64,
    /// Index into the text pool, if this write carries a text column.
    pub text: Option<u8>,
}

/// A deterministic workload: one inner vec of writes per transaction.
/// Generated outside the timed region so both pipelines replay the
/// identical sequence.
#[derive(Debug, Clone)]
pub struct Script(pub Vec<Vec<WriteOp>>);

impl Script {
    pub fn txns(&self) -> usize {
        self.0.len()
    }

    pub fn writes(&self) -> usize {
        self.0.iter().map(Vec::len).sum()
    }
}

/// Generate `txns` transactions of 1–3 writes each from a fixed seed.
pub fn generate_script(seed: u64, txns: usize) -> Script {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(txns);
    for _ in 0..txns {
        let n = rng.gen_range(1..=3usize);
        let mut writes = Vec::with_capacity(n);
        for _ in 0..n {
            writes.push(WriteOp {
                table: rng.gen_range(0..TABLES.len()) as u8,
                key: rng.gen_range(0..KEYSPACE),
                value: rng.gen_range(-1_000_000..1_000_000i64),
                text: if rng.gen_range(0..TEXT_RATIO) == 0 {
                    Some(rng.gen_range(0..TEXTS.len()) as u8)
                } else {
                    None
                },
            });
        }
        script.push(writes);
    }
    Script(script)
}

/// What one pipeline run produced. `digest`/`segment_digest` pin the two
/// paths to each other; the counters feed the bench artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnPathResult {
    pub wall: Duration,
    pub committed: u64,
    pub records: u64,
    /// FNV over the final committed state of primary + replica.
    pub digest: u64,
    /// FNV over the durable WAL segment bytes.
    pub segment_digest: u64,
    pub segment_len: usize,
    pub fsyncs: u64,
    pub synced_txns: u64,
    pub raw_bytes: u64,
    pub wire_bytes: u64,
}

/// Commit timestamp convention shared by primary and replay: transaction
/// `i` (zero-based) commits at timestamp `i + 1`. The commit record
/// carries it on the wire; replay re-derives it from the txn id so Puts
/// can install without buffering the window.
fn commit_ts(txn: TxnId) -> Timestamp {
    Timestamp(txn.0 + 1)
}

fn commit_vtime(txn: TxnId) -> SimTime {
    SimTime::from_micros(txn.0 + 1)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_datum(mut h: u64, d: &Datum) -> u64 {
    match d {
        Datum::Null => fnv_bytes(h, &[0]),
        Datum::Int(v) => {
            h = fnv_bytes(h, &[1]);
            fnv_bytes(h, &v.to_le_bytes())
        }
        Datum::Decimal(v) => {
            h = fnv_bytes(h, &[2]);
            fnv_bytes(h, &v.to_le_bytes())
        }
        Datum::Text(s) => {
            h = fnv_bytes(h, &[3]);
            fnv_bytes(h, s.as_bytes())
        }
        Datum::Bool(b) => fnv_bytes(h, &[4, *b as u8]),
    }
}

/// Digest a table scan (both table types yield [`VisibleRow`]s in key
/// order, so this is comparable across the live and reference paths).
fn fnv_scan(mut h: u64, rows: &[VisibleRow<'_>]) -> u64 {
    for vr in rows {
        for d in &vr.key.0 {
            h = fnv_datum(h, d);
        }
        for d in &vr.row.0 {
            h = fnv_datum(h, d);
        }
        h = fnv_bytes(h, &vr.commit_ts.0.to_le_bytes());
    }
    h
}

/// Run the script through the live (post-pass) pipeline.
///
/// Per transaction: lock each key (scratch key, no clone), install the
/// version into the arena table from a pooled row buffer, frame the redo
/// record straight off the borrowed key/row into the group-commit WAL.
/// Every `window` transactions the window syncs once and the new durable
/// segment suffix ships: compressed in place (the bytes were already
/// encoded at append time), decompressed into a reusable buffer, and
/// replayed through the borrowed streaming decoder into the replica.
pub fn run_fast(script: &Script, window: usize) -> TxnPathResult {
    let window = window.max(1);
    let codec = Codec::Lz4;
    let mut locks = LockTable::new();
    let mut primary = [Table::new(), Table::new()];
    let mut replica = [Table::new(), Table::new()];
    let mut wal = GroupCommitWal::with_window(usize::MAX);
    let mut match_table = MatchTable::default();
    let mut wire = Vec::new();
    let mut replay = Vec::new();
    let mut key = RowKey::new(vec![Datum::Int(0)]);
    let mut rkey = RowKey::new(Vec::new());
    let mut rrow = Row::default();
    let mut shipped = 0usize;
    let mut lsn = 0u64;
    let mut records = 0u64;
    let mut raw_bytes = 0u64;
    let mut wire_bytes = 0u64;

    let start = Instant::now();
    for (i, writes) in script.0.iter().enumerate() {
        let txn = TxnId(i as u64);
        let ts = commit_ts(txn);
        let vt = commit_vtime(txn);
        let now = SimTime::from_micros(i as u64);
        for w in writes {
            let table = TABLES[w.table as usize];
            key.0[0] = Datum::Int(w.key as i64);
            // Sequential txns: the previous holder's lock has always
            // expired by `now`, so this never waits.
            match locks.acquire(table, &key, txn, now, vt) {
                LockOutcome::Acquired => {}
                LockOutcome::WaitUntil(at) => panic!("unexpected lock wait until {at}"),
            }
            let t = w.table as usize;
            let mut row = primary[t].recycled_row();
            row.0.push(Datum::Int(w.value));
            if let Some(tx) = w.text {
                row.0.push(Datum::Text(TEXTS[tx as usize].into()));
            }
            wal.append_parts(
                Lsn(lsn),
                txn,
                RedoPayloadRef::Insert {
                    table,
                    key: &key,
                    row: &row,
                },
            );
            lsn += 1;
            records += 1;
            primary[t]
                .install_version_at(&key, Some(row), ts, vt)
                .expect("fast install");
        }
        wal.append_parts(Lsn(lsn), txn, RedoPayloadRef::Commit { commit_ts: ts });
        lsn += 1;
        records += 1;
        wal.commit();

        if (i + 1) % window == 0 || i + 1 == script.0.len() {
            wal.sync();
            let seg = wal.segment();
            let batch = &seg[shipped..];
            if !batch.is_empty() {
                codec.encode_into(batch, &mut match_table, &mut wire);
                raw_bytes += batch.len() as u64;
                wire_bytes += wire.len() as u64;
                codec.decode_into(&wire, &mut replay).expect("fast decode");
                let mut dec = ReplayDecoder::new(&replay);
                while let Some(step) = dec.next_into(&mut rkey, &mut rrow).expect("fast replay") {
                    if let ReplayStep::Put { txn, table, .. } = step {
                        let t = (table.0 - 1) as usize;
                        let mut owned = replica[t].recycled_row();
                        std::mem::swap(&mut owned, &mut rrow);
                        replica[t]
                            .install_version_at(
                                &rkey,
                                Some(owned),
                                commit_ts(txn),
                                commit_vtime(txn),
                            )
                            .expect("fast replica install");
                    }
                }
                shipped = seg.len();
            }
        }
        if (i + 1) % VACUUM_EVERY == 0 {
            for tbl in primary.iter_mut().chain(replica.iter_mut()) {
                tbl.vacuum(ts);
            }
        }
    }
    let wall = start.elapsed();

    let snapshot = Timestamp(script.0.len() as u64 + 1);
    let mut digest = FNV_OFFSET;
    for tbl in primary.iter().chain(replica.iter()) {
        digest = fnv_scan(digest, &tbl.scan(snapshot));
    }
    TxnPathResult {
        wall,
        committed: script.0.len() as u64,
        records,
        digest,
        segment_digest: fnv_bytes(FNV_OFFSET, wal.segment()),
        segment_len: wal.segment().len(),
        fsyncs: wal.fsyncs,
        synced_txns: wal.synced_txns,
        raw_bytes,
        wire_bytes,
    }
}

/// Run the script through the frozen pre-pass pipeline: cloning lock
/// table, `Vec`-chain tables, owned records encoded into fresh vecs,
/// per-transaction fsync, double compression per shipped batch, legacy
/// owned-decode replay. Same script, same convention, same final state.
pub fn run_reference(script: &Script, window: usize) -> TxnPathResult {
    let window = window.max(1);
    let codec = Codec::Lz4;
    let mut locks = ReferenceLockTable::new();
    let mut primary = [ReferenceTable::new(), ReferenceTable::new()];
    let mut replica = [ReferenceTable::new(), ReferenceTable::new()];
    let mut wal = GroupCommitWal::per_txn();
    let mut window_records: Vec<RedoRecord> = Vec::new();
    let mut lsn = 0u64;
    let mut records = 0u64;
    let mut raw_bytes = 0u64;
    let mut wire_bytes = 0u64;

    let start = Instant::now();
    for (i, writes) in script.0.iter().enumerate() {
        let txn = TxnId(i as u64);
        let ts = commit_ts(txn);
        let vt = commit_vtime(txn);
        let now = SimTime::from_micros(i as u64);
        for w in writes {
            let table = TABLES[w.table as usize];
            let key = RowKey::new(vec![Datum::Int(w.key as i64)]);
            match locks.acquire(table, &key, txn, now, vt) {
                LockOutcome::Acquired => {}
                LockOutcome::WaitUntil(at) => panic!("unexpected lock wait until {at}"),
            }
            let mut vals = vec![Datum::Int(w.value)];
            if let Some(tx) = w.text {
                vals.push(Datum::Text(TEXTS[tx as usize].into()));
            }
            let row = Row(vals);
            // The pre-pass writer built an owned payload (cloning the
            // live key and row) and framed it through the owned encoder.
            let rec = RedoRecord {
                lsn: Lsn(lsn),
                txn,
                payload: RedoPayload::Insert {
                    table,
                    key: key.clone(),
                    row: row.clone(),
                },
            };
            wal.append(&rec);
            window_records.push(rec);
            lsn += 1;
            records += 1;
            let t = w.table as usize;
            primary[t]
                .install_version(key, Some(row), ts, vt)
                .expect("reference install");
        }
        let rec = RedoRecord {
            lsn: Lsn(lsn),
            txn,
            payload: RedoPayload::Commit { commit_ts: ts },
        };
        wal.append(&rec);
        window_records.push(rec);
        lsn += 1;
        records += 1;
        // Per-transaction durability: this commit() syncs (window = 1).
        wal.commit();

        let at_window = (i + 1) % window == 0 || i + 1 == script.0.len();
        if at_window && !window_records.is_empty() {
            // The pre-pass shipping drain: re-encode the owned
            // records into a fresh buffer, compress once for the
            // wire and a second time for the stats counter.
            let mut raw = Vec::new();
            for rec in &window_records {
                encode_record(&mut raw, rec);
            }
            let wire = codec.encode(&raw);
            raw_bytes += raw.len() as u64;
            wire_bytes += codec.wire_size(&raw) as u64;
            let plain = codec.decode(&wire).expect("reference decode");
            for rec in legacy_decode_batch(&plain).expect("reference replay") {
                if let RedoPayload::Insert { table, key, row } = rec.payload {
                    let t = (table.0 - 1) as usize;
                    replica[t]
                        .install_version(key, Some(row), commit_ts(rec.txn), commit_vtime(rec.txn))
                        .expect("reference replica install");
                }
            }
            window_records.clear();
        }
        if (i + 1) % VACUUM_EVERY == 0 {
            for tbl in primary.iter_mut().chain(replica.iter_mut()) {
                tbl.vacuum(ts);
            }
        }
    }
    let wall = start.elapsed();

    let snapshot = Timestamp(script.0.len() as u64 + 1);
    let mut digest = FNV_OFFSET;
    for tbl in primary.iter().chain(replica.iter()) {
        digest = fnv_scan(digest, &tbl.scan(snapshot));
    }
    TxnPathResult {
        wall,
        committed: script.0.len() as u64,
        records,
        digest,
        segment_digest: fnv_bytes(FNV_OFFSET, wal.segment()),
        segment_len: wal.segment().len(),
        fsyncs: wal.fsyncs,
        synced_txns: wal.synced_txns,
        raw_bytes,
        wire_bytes,
    }
}

/// Assert the two results describe the same committed history: identical
/// durable segment bytes (group-commit framing is record-for-record the
/// framing of singles) and identical final state on primary and replica.
pub fn assert_equivalent(fast: &TxnPathResult, reference: &TxnPathResult) {
    assert_eq!(
        fast.segment_len, reference.segment_len,
        "durable segment lengths diverge"
    );
    assert_eq!(
        fast.segment_digest, reference.segment_digest,
        "durable segment bytes diverge"
    );
    assert_eq!(fast.digest, reference.digest, "committed state diverges");
    assert_eq!(fast.committed, reference.committed);
    assert_eq!(fast.records, reference.records);
    assert_eq!(fast.raw_bytes, reference.raw_bytes, "shipped bytes diverge");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_generation_is_deterministic() {
        let a = generate_script(7, 500);
        let b = generate_script(7, 500);
        assert_eq!(a.txns(), 500);
        for (x, y) in a.0.iter().zip(&b.0) {
            assert_eq!(x.len(), y.len());
            for (wx, wy) in x.iter().zip(y) {
                assert_eq!(
                    (wx.table, wx.key, wx.value, wx.text),
                    (wy.table, wy.key, wy.value, wy.text)
                );
            }
        }
        let c = generate_script(8, 500);
        assert_ne!(
            run_fast(&a, 64).segment_digest,
            run_fast(&c, 64).segment_digest,
            "different seeds must produce different histories"
        );
    }

    #[test]
    fn fast_and_reference_agree() {
        let script = generate_script(42, 3000);
        let fast = run_fast(&script, 64);
        let reference = run_reference(&script, 64);
        assert_equivalent(&fast, &reference);
        // Group commit: far fewer fsyncs than the per-txn reference.
        assert_eq!(reference.fsyncs, 3000);
        assert!(fast.fsyncs <= 3000 / 64 + 1, "fsyncs {}", fast.fsyncs);
        assert_eq!(fast.synced_txns, reference.synced_txns);
    }

    #[test]
    fn window_size_does_not_change_history() {
        let script = generate_script(9, 1500);
        let base = run_fast(&script, 1);
        for window in [7, 64, 4096] {
            let run = run_fast(&script, window);
            assert_eq!(run.segment_digest, base.segment_digest);
            assert_eq!(run.digest, base.digest);
        }
    }
}
