//! Transaction management for GaussDB-Global (paper §III).
//!
//! Three timestamp-generation modes coexist:
//!
//! * **GTM** — the classic centralized Global Transaction Manager: a
//!   counter starting at zero, incremented once per transaction
//!   (paper Eq. 2). Every begin/commit pays a round trip to the GTM server.
//! * **GClock** — decentralized, Spanner-style: timestamps come from the
//!   node's synchronized clock (`TS = T_clock + T_err`, Eq. 1) and commits
//!   perform a commit wait. No central round trips.
//! * **DUAL** — the bridge used during *online* transitions:
//!   `TS_DUAL = max(TS_GTM, TS_GClock) + 1` (Eq. 3), issued by the GTM
//!   server so it is larger than both domains.
//!
//! [`GtmServer`] implements the server side (including raising its counter
//! past observed GClock commits, and the "GTM transactions wait 2× the max
//! error bound while the server is in DUAL" rule that prevents the
//! Listing-1 anomaly). [`CnTm`] is the per-computing-node view that plans
//! begins/commits. [`TransitionOrchestrator`] drives the zero-downtime
//! GTM↔GClock transition protocol of Figs. 2–3.

pub mod cn;
pub mod gtm;
pub mod metrics;
pub mod mode;
pub mod transition;

pub use cn::{BeginPlan, CnTm, CommitPlan};
pub use gtm::GtmServer;
pub use mode::{TmMode, TmMsg};
pub use transition::{handle_cn_msg, TransitionDirection, TransitionEvent, TransitionOrchestrator};
