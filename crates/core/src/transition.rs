//! Driving the online GTM↔GClock transition over the simulated network.
//!
//! The protocol state machines live in `gdb-txnmgr`
//! ([`gdb_txnmgr::TransitionOrchestrator`], [`gdb_txnmgr::handle_cn_msg`]);
//! this module delivers their messages with real network latency
//! (typed as [`RpcKind::TransitionBarrier`] on the message plane) and
//! arms the DUAL hold timer on the event queue. The cluster accepts
//! transactions throughout — that is the entire point of DUAL mode.
//!
//! While a transition is in flight the phase boundaries are captured in a
//! [`TransitionTrace`]: when the transition completes, a `Transition` span
//! is recorded whose children (`TransitionDualAcks`, `TransitionHold`,
//! `TransitionFinalAcks`) tile it exactly — the observability contract
//! tested in `tests/observability.rs`.

use crate::cluster::GlobalDb;
use crate::event::CoreSim;
use crate::net::RpcKind;
use gdb_obs::SpanKind;
use gdb_simnet::SimTime;
use gdb_txnmgr::{handle_cn_msg, TmMsg, TransitionDirection, TransitionEvent};

/// Phase boundaries of the in-flight transition, filled in as the
/// orchestrator's events are enacted. Pure bookkeeping — no RNG, no
/// scheduling — so it is identical whether tracing is enabled or not.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TransitionTrace {
    pub(crate) direction: TransitionDirection,
    pub(crate) started: SimTime,
    /// When the last DUAL ack arrived (the hold timer / final switch
    /// fan-out starts here).
    pub(crate) dual_acks_end: Option<SimTime>,
    /// When the hold wait elapsed (GTM→GClock only; the GClock→GTM
    /// direction has no hold phase).
    pub(crate) hold_end: Option<SimTime>,
}

/// Start a transition at the current virtual time.
pub fn start_transition(db: &mut GlobalDb, sim: &mut CoreSim, direction: TransitionDirection) {
    db.last_transition_completed = None;
    db.transition_trace = Some(TransitionTrace {
        direction,
        started: sim.now(),
        dual_acks_end: None,
        hold_end: None,
    });
    let events = {
        let GlobalDb {
            orchestrator, gtm, ..
        } = db;
        orchestrator.start(direction, gtm)
    };
    enact(db, sim, events);
}

/// Apply orchestrator side effects: send messages (with latency) or arm
/// the hold timer.
fn enact(db: &mut GlobalDb, sim: &mut CoreSim, events: Vec<TransitionEvent>) {
    let now = sim.now();
    for ev in events {
        match ev {
            TransitionEvent::SendToCn { cn, msg } => {
                // The final-mode fan-out marks the end of the previous
                // phase: DUAL acks (GClock→GTM, no hold) or the hold wait
                // (GTM→GClock). N same-instant sends collapse to one mark.
                if matches!(msg, TmMsg::SwitchToGClock | TmMsg::SwitchToGtm) {
                    if let Some(trace) = db.transition_trace.as_mut() {
                        if trace.dual_acks_end.is_none() {
                            trace.dual_acks_end = Some(now);
                        } else if trace.hold_end.is_none() && trace.dual_acks_end != Some(now) {
                            trace.hold_end = Some(now);
                        }
                    }
                }
                let to = db.cns[cn].node;
                let delay = db
                    .plane
                    .send(
                        &mut db.topo,
                        RpcKind::TransitionBarrier,
                        db.gtm_node,
                        to,
                        128,
                    )
                    // An unreachable CN retries after a beat; the protocol
                    // is idle-safe because acks gate every phase.
                    .unwrap_or(gdb_simnet::SimDuration::from_millis(50));
                sim.schedule_after(delay, move |w: &mut GlobalDb, sim| {
                    deliver_to_cn(w, sim, cn, msg.clone());
                });
            }
            TransitionEvent::StartHoldTimer { duration } => {
                if let Some(trace) = db.transition_trace.as_mut() {
                    if trace.dual_acks_end.is_none() {
                        trace.dual_acks_end = Some(now);
                    }
                }
                sim.schedule_after(duration, |w: &mut GlobalDb, sim| {
                    let events = {
                        let GlobalDb {
                            orchestrator, gtm, ..
                        } = w;
                        orchestrator.on_hold_elapsed(gtm)
                    };
                    enact(w, sim, events);
                });
            }
            TransitionEvent::Completed { direction } => {
                db.last_transition_completed = Some(direction);
                if let Some(trace) = db.transition_trace.take() {
                    record_transition_spans(db, &trace, now);
                }
            }
        }
    }
}

/// Record the transition's span tree: a root `Transition` span whose
/// children tile `[started, completed]` exactly.
fn record_transition_spans(db: &mut GlobalDb, trace: &TransitionTrace, completed: SimTime) {
    let label = match trace.direction {
        TransitionDirection::ToGClock => 0,
        TransitionDirection::ToGtm => 1,
    };
    let tracer = &mut db.obs.tracer;
    let root = tracer.record(SpanKind::Transition, label, trace.started, completed);
    let dual_end = trace.dual_acks_end.unwrap_or(completed).min(completed);
    tracer.record_child(
        root,
        SpanKind::TransitionDualAcks,
        label,
        trace.started,
        dual_end,
    );
    let final_start = match trace.hold_end {
        Some(h) => {
            let h = h.min(completed);
            tracer.record_child(root, SpanKind::TransitionHold, label, dual_end, h);
            h
        }
        None => dual_end,
    };
    tracer.record_child(
        root,
        SpanKind::TransitionFinalAcks,
        label,
        final_start,
        completed,
    );
}

fn deliver_to_cn(db: &mut GlobalDb, sim: &mut CoreSim, cn: usize, msg: TmMsg) {
    let now = sim.now();
    db.sync_cn_clock(cn, now);
    let reply = handle_cn_msg(cn, &mut db.cns[cn].tm, &msg, now);
    if let Some(reply) = reply {
        let from = db.cns[cn].node;
        let delay = db
            .plane
            .send(
                &mut db.topo,
                RpcKind::TransitionBarrier,
                from,
                db.gtm_node,
                128,
            )
            .unwrap_or(gdb_simnet::SimDuration::from_millis(50));
        sim.schedule_after(delay, move |w: &mut GlobalDb, sim| {
            let events = {
                let GlobalDb {
                    orchestrator, gtm, ..
                } = w;
                match &reply {
                    TmMsg::AckDual {
                        cn,
                        err_bound,
                        gclock_upper,
                    } => orchestrator.on_ack_dual(*cn, *err_bound, *gclock_upper, gtm),
                    TmMsg::AckFinal { cn } => orchestrator.on_ack_final(*cn),
                    _ => Vec::new(),
                }
            };
            enact(w, sim, events);
        });
    }
}
