//! Differential testing: a random sequence of SQL statements executed both
//! on the distributed GlobalDB cluster (primary reads, real sharding, 2PC,
//! replication) and on the single-node reference engine (`MemAccess`) must
//! produce identical results — rows, counts, and error kinds.

use gaussdb_global::sqlengine::access::MemAccess;
use gaussdb_global::sqlengine::{execute, prepare, DataAccess};
use gaussdb_global::{Cluster, ClusterConfig, Datum, RoutingPolicy, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Op {
    Insert { k: i64, cat: i64, v: i64 },
    Update { k: i64, v: i64 },
    BumpWhereCat { cat: i64, delta: i64 },
    Delete { k: i64 },
    PointSelect { k: i64 },
    RangeSelect { lo: i64, hi: i64 },
    IndexSelect { cat: i64 },
    Aggregate,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..30, 0i64..4, 0i64..100).prop_map(|(k, cat, v)| Op::Insert { k, cat, v }),
        (0i64..30, 0i64..100).prop_map(|(k, v)| Op::Update { k, v }),
        (0i64..4, -5i64..5).prop_map(|(cat, delta)| Op::BumpWhereCat { cat, delta }),
        (0i64..30).prop_map(|k| Op::Delete { k }),
        (0i64..30).prop_map(|k| Op::PointSelect { k }),
        (0i64..30, 0i64..30).prop_map(|(a, b)| Op::RangeSelect {
            lo: a.min(b),
            hi: a.max(b)
        }),
        (0i64..4).prop_map(|cat| Op::IndexSelect { cat }),
        Just(Op::Aggregate),
    ]
}

const DDL: &str = "CREATE TABLE t (k INT NOT NULL, cat INT, v INT, PRIMARY KEY (k)) \
                   DISTRIBUTE BY HASH(k)";
const IDX: &str = "CREATE INDEX t_by_cat ON t (cat)";

fn op_sql(op: &Op) -> (String, Vec<Datum>) {
    match op {
        Op::Insert { k, cat, v } => (
            "INSERT INTO t VALUES (?, ?, ?)".into(),
            vec![Datum::Int(*k), Datum::Int(*cat), Datum::Int(*v)],
        ),
        Op::Update { k, v } => (
            "UPDATE t SET v = ? WHERE k = ?".into(),
            vec![Datum::Int(*v), Datum::Int(*k)],
        ),
        Op::BumpWhereCat { cat, delta } => (
            "UPDATE t SET v = v + ? WHERE cat = ?".into(),
            vec![Datum::Int(*delta), Datum::Int(*cat)],
        ),
        Op::Delete { k } => ("DELETE FROM t WHERE k = ?".into(), vec![Datum::Int(*k)]),
        Op::PointSelect { k } => (
            "SELECT k, cat, v FROM t WHERE k = ?".into(),
            vec![Datum::Int(*k)],
        ),
        Op::RangeSelect { lo, hi } => (
            "SELECT k, v FROM t WHERE k BETWEEN ? AND ? ORDER BY k".into(),
            vec![Datum::Int(*lo), Datum::Int(*hi)],
        ),
        Op::IndexSelect { cat } => (
            "SELECT k, v FROM t WHERE cat = ? ORDER BY k".into(),
            vec![Datum::Int(*cat)],
        ),
        Op::Aggregate => (
            "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t".into(),
            vec![],
        ),
    }
}

/// Normalized outcome for comparison.
#[derive(Debug, PartialEq)]
enum Outcome {
    Rows(Vec<Vec<Datum>>),
    Count(u64),
    Error(&'static str),
}

fn kind(e: &gaussdb_global::GdbError) -> &'static str {
    use gaussdb_global::GdbError::*;
    match e {
        Schema(_) => "schema",
        Parse(_) => "parse",
        Plan(_) => "plan",
        Execution(_) => "execution",
        TxnAborted(_) => "aborted",
        WriteConflict(_) => "conflict",
        NodeUnavailable(_) => "unavailable",
        FreshnessUnsatisfiable(_) => "freshness",
        DuplicateKey(_) => "duplicate",
        NotFound(_) => "notfound",
        StaleRoute(_) => "stale_route",
        Internal(_) => "internal",
    }
}

fn run_differential(ops: &[Op], seed: u64) {
    // Reference: single-node in-memory engine.
    let mut reference = MemAccess::new();
    execute(
        &prepare(DDL, reference.catalog()).unwrap().bound,
        &[],
        &mut reference,
    )
    .unwrap();
    execute(
        &prepare(IDX, reference.catalog()).unwrap().bound,
        &[],
        &mut reference,
    )
    .unwrap();

    // System under test: the distributed cluster with exact primary reads.
    let mut cluster = Cluster::new(
        ClusterConfig::globaldb_three_city()
            .with_seed(seed)
            .with_routing(RoutingPolicy::Primary),
    );
    cluster.ddl(DDL).unwrap();
    cluster.ddl(IDX).unwrap();

    let mut at = SimTime::from_millis(10);
    for (i, op) in ops.iter().enumerate() {
        let (sql, params) = op_sql(op);

        let expected = {
            let prepared = prepare(&sql, reference.catalog()).unwrap();
            match execute(&prepared.bound, &params, &mut reference) {
                Ok(out) => match out {
                    gaussdb_global::ExecOutput::Rows(rows) => {
                        Outcome::Rows(rows.into_iter().map(|r| r.0).collect())
                    }
                    gaussdb_global::ExecOutput::Count(c) => Outcome::Count(c),
                },
                Err(e) => Outcome::Error(kind(&e)),
            }
        };

        // Strictly serial execution: the next statement begins only after
        // the previous one's commit acknowledged (matching the sequential
        // reference engine).
        let actual = match cluster.execute_sql(i % 3, at, &sql, &params) {
            Ok((out, outcome)) => {
                at = outcome.completed_at + SimDuration::from_millis(1);
                match out {
                    gaussdb_global::ExecOutput::Rows(rows) => {
                        Outcome::Rows(rows.into_iter().map(|r| r.0).collect())
                    }
                    gaussdb_global::ExecOutput::Count(c) => Outcome::Count(c),
                }
            }
            Err(e) => {
                at += SimDuration::from_millis(1);
                Outcome::Error(kind(&e))
            }
        };
        assert_eq!(actual, expected, "divergence at op {i}: {op:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn cluster_matches_reference(
        ops in proptest::collection::vec(arb_op(), 1..50),
        seed in 0u64..1000,
    ) {
        run_differential(&ops, seed);
    }
}

/// A long deterministic mixed sequence as a plain regression test (runs on
/// every `cargo test` without proptest shrink overhead).
#[test]
fn long_deterministic_sequence() {
    let mut rng = SmallRng::seed_from_u64(2024);
    use rand::Rng;
    let ops: Vec<Op> = (0..200)
        .map(|_| match rng.gen_range(0..8) {
            0 => Op::Insert {
                k: rng.gen_range(0..30),
                cat: rng.gen_range(0..4),
                v: rng.gen_range(0..100),
            },
            1 => Op::Update {
                k: rng.gen_range(0..30),
                v: rng.gen_range(0..100),
            },
            2 => Op::BumpWhereCat {
                cat: rng.gen_range(0..4),
                delta: rng.gen_range(-5..5),
            },
            3 => Op::Delete {
                k: rng.gen_range(0..30),
            },
            4 => Op::PointSelect {
                k: rng.gen_range(0..30),
            },
            5 => {
                let a = rng.gen_range(0i64..30);
                let b = rng.gen_range(0i64..30);
                Op::RangeSelect {
                    lo: a.min(b),
                    hi: a.max(b),
                }
            }
            6 => Op::IndexSelect {
                cat: rng.gen_range(0..4),
            },
            _ => Op::Aggregate,
        })
        .collect();
    run_differential(&ops, 77);
}
