//! Flat O(1) routing table: shard → (primary, owner epoch) plus a
//! per-CN nearest-shard index.
//!
//! The hot routing path used to walk maps on every operation: a
//! `HashMap` lookup per shard route and an O(shards) `min_by_key` RTT
//! scan per `nearest_shard` call. At 6 shards that is noise; at 256+
//! shards with 10⁵ terminals it dominates. [`RouteTable`] replaces both
//! with `Vec` indexing: it is rebuilt *only* when the routing epoch
//! bumps (batched migration cutover, replica promotion), which is rare
//! by design, and every read between rebuilds is a bounds-checked array
//! load.
//!
//! Nearest-shard caching is decision-identical to the live scan because
//! `nominal_rtt` is a pure function of placement: co-located pairs are
//! always minimal, and injected WAN delay applies uniformly to all
//! non-co-located pairs, so the argmin can only change when a primary
//! *moves* — exactly the rebuild trigger. Ties break to the lowest
//! shard id, matching `Iterator::min_by_key` (first minimal element).
//!
//! [`MapRouteTable`] freezes the pre-table behavior (map walk + per-call
//! RTT scan) as a differential reference: `scale_bench` drives both over
//! the same routing script and the test suite asserts identical
//! decisions.

use gdb_simnet::{NetNodeId, SimDuration};
use std::collections::HashMap;

/// One shard's routing facts: where its primary lives and the epoch at
/// which it last moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Data node currently acting as the shard's primary.
    pub primary: NetNodeId,
    /// Routing epoch at which this primary took ownership. A CN whose
    /// announced epoch is older than this must refresh (`StaleRoute`).
    pub owner_epoch: u64,
}

/// Flat, rebuild-on-epoch-bump routing table.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    version: u64,
    entries: Vec<RouteEntry>,
    /// `nearest[cn]` = shard whose primary has minimal RTT from that
    /// CN's node (first minimal on ties).
    nearest: Vec<usize>,
}

impl RouteTable {
    /// Build the table from the current placement. `shards[s]` is the
    /// shard's `(primary, owner_epoch)`, `cns[c]` the CN's network
    /// node, and `rtt` the deterministic nominal round-trip estimate
    /// between two nodes.
    pub fn build(
        version: u64,
        shards: &[(NetNodeId, u64)],
        cns: &[NetNodeId],
        mut rtt: impl FnMut(NetNodeId, NetNodeId) -> SimDuration,
    ) -> Self {
        let entries: Vec<RouteEntry> = shards
            .iter()
            .map(|&(primary, owner_epoch)| RouteEntry {
                primary,
                owner_epoch,
            })
            .collect();
        let nearest = cns
            .iter()
            .map(|&cn_node| {
                let mut best = 0usize;
                let mut best_rtt = None;
                for (s, e) in entries.iter().enumerate() {
                    let d = rtt(cn_node, e.primary);
                    if best_rtt.is_none_or(|b| d < b) {
                        best = s;
                        best_rtt = Some(d);
                    }
                }
                best
            })
            .collect();
        Self {
            version,
            entries,
            nearest,
        }
    }

    /// Routing epoch this table was built at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current primary of `shard`. O(1).
    #[inline]
    pub fn primary(&self, shard: usize) -> NetNodeId {
        self.entries[shard].primary
    }

    /// Epoch at which `shard`'s primary took ownership. O(1).
    #[inline]
    pub fn owner_epoch(&self, shard: usize) -> u64 {
        self.entries[shard].owner_epoch
    }

    /// Nearest shard (by primary RTT) for CN `cn`. O(1).
    #[inline]
    pub fn nearest(&self, cn: usize) -> usize {
        self.nearest.get(cn).copied().unwrap_or(0)
    }

    /// The epoch check at the heart of `route_to_shard`: does a route
    /// announced at `route_epoch` still cover `shard`, or must the CN
    /// refresh? Returns the owner epoch on staleness so the caller can
    /// build the error message.
    #[inline]
    pub fn check_epoch(&self, shard: usize, route_epoch: u64) -> Result<NetNodeId, u64> {
        let e = &self.entries[shard];
        if route_epoch < e.owner_epoch {
            Err(e.owner_epoch)
        } else {
            Ok(e.primary)
        }
    }
}

/// Frozen pre-table routing path: `HashMap` per-route lookups plus an
/// O(shards) RTT scan per nearest-shard call. Kept as the differential
/// reference (`scale_bench` legacy series, decision-equality tests) —
/// never used on the live path.
#[derive(Debug, Clone, Default)]
pub struct MapRouteTable {
    version: u64,
    entries: HashMap<usize, RouteEntry>,
    cns: Vec<NetNodeId>,
}

impl MapRouteTable {
    pub fn build(version: u64, shards: &[(NetNodeId, u64)], cns: &[NetNodeId]) -> Self {
        let entries = shards
            .iter()
            .enumerate()
            .map(|(s, &(primary, owner_epoch))| {
                (
                    s,
                    RouteEntry {
                        primary,
                        owner_epoch,
                    },
                )
            })
            .collect();
        Self {
            version,
            entries,
            cns: cns.to_vec(),
        }
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn primary(&self, shard: usize) -> NetNodeId {
        self.entries[&shard].primary
    }

    pub fn owner_epoch(&self, shard: usize) -> u64 {
        self.entries[&shard].owner_epoch
    }

    /// The legacy nearest-shard walk: recompute the argmin over every
    /// shard's primary RTT on every call, exactly as
    /// `GlobalDb::nearest_shard` did before the flat table.
    pub fn nearest(
        &self,
        cn: usize,
        mut rtt: impl FnMut(NetNodeId, NetNodeId) -> SimDuration,
    ) -> usize {
        let cn_node = self.cns[cn];
        (0..self.entries.len())
            .min_by_key(|&s| rtt(cn_node, self.entries[&s].primary))
            .unwrap_or(0)
    }

    pub fn check_epoch(&self, shard: usize, route_epoch: u64) -> Result<NetNodeId, u64> {
        let e = &self.entries[&shard];
        if route_epoch < e.owner_epoch {
            Err(e.owner_epoch)
        } else {
            Ok(e.primary)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt_fn(seed: u64) -> impl FnMut(NetNodeId, NetNodeId) -> SimDuration {
        // Deterministic pseudo-RTT: pure function of the node pair, so
        // both paths observe identical costs.
        move |a: NetNodeId, b: NetNodeId| {
            let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
            for v in [a.0 as u64, b.0 as u64] {
                h ^= v.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h = h.rotate_left(23);
            }
            SimDuration::from_micros(100 + h % 50_000)
        }
    }

    fn placement(seed: u64, shards: usize) -> Vec<(NetNodeId, u64)> {
        (0..shards)
            .map(|s| {
                let node =
                    ((seed.wrapping_mul(6364136223846793005) >> 16) as u32 + s as u32 * 7) % 64;
                (NetNodeId(node), (seed + s as u64) % 5)
            })
            .collect()
    }

    /// The differential pin: over many random placements the flat table
    /// and the frozen map walk make identical primary / epoch / nearest
    /// / staleness decisions.
    #[test]
    fn flat_table_matches_map_walk_decisions() {
        for seed in 0..50u64 {
            let shards = placement(seed, 1 + (seed as usize * 13) % 300);
            let cns: Vec<NetNodeId> = (0..5u32).map(|c| NetNodeId(64 + c)).collect();
            let flat = RouteTable::build(seed, &shards, &cns, rtt_fn(seed));
            let map = MapRouteTable::build(seed, &shards, &cns);
            assert_eq!(flat.version(), map.version());
            for s in 0..shards.len() {
                assert_eq!(flat.primary(s), map.primary(s), "seed {seed} shard {s}");
                assert_eq!(flat.owner_epoch(s), map.owner_epoch(s));
                for epoch in 0..6u64 {
                    assert_eq!(
                        flat.check_epoch(s, epoch),
                        map.check_epoch(s, epoch),
                        "seed {seed} shard {s} epoch {epoch}"
                    );
                }
            }
            for c in 0..cns.len() {
                assert_eq!(
                    flat.nearest(c),
                    map.nearest(c, rtt_fn(seed)),
                    "seed {seed} cn {c}"
                );
            }
        }
    }

    /// Ties must break to the lowest shard id (`min_by_key` keeps the
    /// first minimal element).
    #[test]
    fn nearest_breaks_ties_to_lowest_shard() {
        let shards: Vec<(NetNodeId, u64)> = vec![(NetNodeId(3), 0), (NetNodeId(3), 0)];
        let cns = vec![NetNodeId(9)];
        let flat = RouteTable::build(0, &shards, &cns, |_, _| SimDuration::from_micros(5));
        let map = MapRouteTable::build(0, &shards, &cns);
        assert_eq!(flat.nearest(0), 0);
        assert_eq!(map.nearest(0, |_, _| SimDuration::from_micros(5)), 0);
    }

    #[test]
    fn check_epoch_reports_owner_epoch_on_stale() {
        let shards = vec![(NetNodeId(1), 4)];
        let flat = RouteTable::build(7, &shards, &[], |_, _| SimDuration::ZERO);
        assert_eq!(flat.check_epoch(0, 3), Err(4));
        assert_eq!(flat.check_epoch(0, 4), Ok(NetNodeId(1)));
        assert_eq!(flat.check_epoch(0, 9), Ok(NetNodeId(1)));
    }
}
