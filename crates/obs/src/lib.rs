//! Virtual-time observability for the GaussDB-Global reproduction.
//!
//! The paper argues with curves — commit-wait cost under GClock vs. GTM
//! (Fig. 6a), RTT sweeps (Fig. 6b), ROR freshness (Fig. 6c), redo-shipping
//! bandwidth (Fig. 6d) — which requires per-phase instrumentation, not
//! end-of-run aggregates. This crate provides the three pieces the bench
//! harness and CI gate build on:
//!
//! * [`Tracer`] — trace spans keyed to virtual time ([`SimTime`]). Every
//!   transaction records begin → snapshot-acquire → execute → prepare →
//!   commit-wait → replication-ack; RCP rounds, log-shipping batches and
//!   skyline re-selections are spanned too. Because all timestamps are
//!   virtual, the same seed yields a bit-identical trace.
//! * [`MetricsRegistry`] — cheap counters, gauges, and bounded-quantile
//!   histograms keyed by static names, snapshotted into a serializable,
//!   comparable [`MetricsReport`].
//! * [`BenchArtifact`] — the stable `gdb-bench/v1` JSON schema every
//!   figure binary emits via `--json`, plus the baseline comparison the
//!   CI perf gate runs.
//!
//! The vendored `serde` is a no-op facade, so JSON encoding/decoding is
//! hand-rolled in [`json`] (compact writer + recursive-descent parser)
//! with deterministic key order throughout.

pub mod config;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use config::{cli_path, flag_value, parse_duration, ConfDoc, ConfTable, ConfValue};
pub use json::Json;
pub use metrics::{
    CounterId, HistId, HistSummary, Metric, MetricName, MetricsRegistry, MetricsReport,
};
pub use report::{
    bundle, compare_artifacts, load_artifacts, to_chrome_trace, validate_artifacts, BenchArtifact,
    BenchSeries, Comparison, NetStats, COUNTER_GATE_MAX_KEY, COUNTER_GATE_METRIC_KEY,
    COUNTER_GATE_SERIES_KEY, WALL_ALLOC_FLOOR_KEY, WALL_ALLOC_METRIC_KEY, WALL_BASELINE_KEY,
    WALL_BASELINE_LABEL, WALL_CLOCK_KEY, WALL_FLOOR_KEY,
};
pub use span::{Span, SpanId, SpanKind, Tracer};

use serde::{Deserialize, Serialize};

/// The observability bundle a cluster owns: one tracer + one registry.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: MetricsRegistry,
}

impl Obs {
    pub fn new() -> Self {
        Self::default()
    }
}
