//! Metric names owned by the replica-consistency subsystem (RCP).

/// RCP rounds completed (collect + finish).
pub const RCP_ROUNDS: &str = "consistency.rcp.rounds";
/// Two-phase rounds abandoned (collector died mid-round).
pub const RCP_ROUNDS_ABANDONED: &str = "consistency.rcp.rounds_abandoned";
/// Collector-CN leadership failovers.
pub const COLLECTOR_FAILOVERS: &str = "consistency.collector_failovers";
/// Collect-to-finish latency of one RCP round.
pub const RCP_ROUND_US: &str = "consistency.rcp.round_us";
/// Liveness heartbeats sent.
pub const HEARTBEATS_SENT: &str = "consistency.heartbeats_sent";
/// Old tuple versions reclaimed by vacuum.
pub const VERSIONS_VACUUMED: &str = "consistency.versions_vacuumed";

use gdb_obs::{HistId, MetricsRegistry};

/// Pre-registered handle for the per-round RCP latency histogram (the
/// other consistency counters are mirrored from `ClusterStats` at
/// snapshot time, which is not a hot path).
#[derive(Debug, Clone, Copy)]
pub struct RcpHandles {
    pub round_us: HistId,
}

impl RcpHandles {
    pub fn register(m: &mut MetricsRegistry) -> Self {
        RcpHandles {
            round_us: m.register_histogram(RCP_ROUND_US),
        }
    }
}
