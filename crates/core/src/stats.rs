//! Cluster-level statistics and per-transaction outcomes.

use gdb_model::Timestamp;
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{SimDuration, SimTime};

/// What happened to one transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOutcome {
    /// Commit timestamp (None for pure reads in ROR mode, which carry the
    /// RCP snapshot instead).
    pub commit_ts: Option<Timestamp>,
    /// The snapshot the transaction read at.
    pub snapshot: Timestamp,
    /// Virtual time the client observed completion.
    pub completed_at: SimTime,
    /// End-to-end latency as the client saw it.
    pub latency: SimDuration,
    /// Which shards the transaction wrote.
    pub shards_written: Vec<usize>,
    /// True if any read was served by a replica.
    pub used_replica: bool,
    /// True if the transaction rolled back instead of committing.
    pub aborted: bool,
}

/// Aggregate counters for a cluster run.
#[derive(Debug)]
pub struct ClusterStats {
    pub committed: u64,
    pub aborted: u64,
    pub reads_on_replica: u64,
    pub reads_on_primary: u64,
    pub replica_blocked_fallbacks: u64,
    pub ror_rejected_freshness: u64,
    pub ror_rejected_ddl: u64,
    pub lock_waits: u64,
    pub commit_wait_total: SimDuration,
    pub heartbeats_sent: u64,
    pub rcp_rounds: u64,
    /// RCP rounds whose collector CN died between gathering the replica
    /// reports and distributing the result (the round is abandoned; CNs
    /// keep their previous — still monotone — RCP).
    pub rcp_rounds_abandoned: u64,
    /// Times a region's collector-CN leadership moved to another CN.
    pub collector_failovers: u64,
    pub versions_vacuumed: u64,
    /// Sealed redo records trimmed from shard shipping buffers once every
    /// durable consumer (replica appliers, in-flight migrations) had
    /// advanced past them.
    pub redo_records_trimmed: u64,
    /// Shard storages compacted under arena memory pressure
    /// (`arena_soft_limit_bytes` exceeded at a vacuum tick).
    pub pressure_compactions: u64,
    /// Requests rejected because they carried a stale routing epoch
    /// (shard ownership moved under the submitting CN's route table).
    pub stale_route_rejects: u64,
    /// Shard migrations started / completed / aborted mid-flight.
    pub migrations_started: u64,
    pub migrations_completed: u64,
    pub migrations_aborted: u64,
    pub latency: LatencyHistogram,
}

impl Default for ClusterStats {
    fn default() -> Self {
        ClusterStats {
            committed: 0,
            aborted: 0,
            reads_on_replica: 0,
            reads_on_primary: 0,
            replica_blocked_fallbacks: 0,
            ror_rejected_freshness: 0,
            ror_rejected_ddl: 0,
            lock_waits: 0,
            commit_wait_total: SimDuration::ZERO,
            heartbeats_sent: 0,
            rcp_rounds: 0,
            rcp_rounds_abandoned: 0,
            collector_failovers: 0,
            versions_vacuumed: 0,
            redo_records_trimmed: 0,
            pressure_compactions: 0,
            stale_route_rejects: 0,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_aborted: 0,
            // This histogram lives for the whole cluster and is fed on the
            // per-transaction hot path: bounded mode, not store-every-sample.
            latency: LatencyHistogram::bounded(),
        }
    }
}

impl ClusterStats {
    /// Record a finished transaction. Aborts land in `aborted`; only
    /// commits count as commits (and only their latency is meaningful for
    /// the client-visible histogram).
    pub fn record_txn(&mut self, outcome: &TxnOutcome) {
        if outcome.aborted {
            self.aborted += 1;
        } else {
            self.committed += 1;
            self.latency.record(outcome.latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = ClusterStats::default();
        s.record_txn(&TxnOutcome {
            commit_ts: Some(Timestamp(5)),
            snapshot: Timestamp(4),
            completed_at: SimTime::from_millis(10),
            latency: SimDuration::from_millis(10),
            shards_written: vec![0],
            used_replica: false,
            aborted: false,
        });
        assert_eq!(s.committed, 1);
        assert_eq!(s.latency.len(), 1);
    }

    #[test]
    fn aborts_count_as_aborts_not_commits() {
        let mut s = ClusterStats::default();
        s.record_txn(&TxnOutcome {
            commit_ts: None,
            snapshot: Timestamp(4),
            completed_at: SimTime::from_millis(10),
            latency: SimDuration::from_millis(10),
            shards_written: vec![],
            used_replica: false,
            aborted: true,
        });
        assert_eq!(s.committed, 0);
        assert_eq!(s.aborted, 1);
        // Abort latency is not client-visible commit latency.
        assert_eq!(s.latency.len(), 0);
    }
}
