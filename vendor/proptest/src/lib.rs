//! Offline in-tree property-testing harness exposing the subset of the
//! `proptest` 1.x surface this workspace uses: the `proptest!` macro,
//! `Strategy` with `prop_map`, `prop_oneof!`, `Just`, `any`, integer/float
//! range strategies, tuple strategies, `collection::vec`, `option::of`,
//! simple regex string strategies, and the `prop_assert*` family.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test name), so failures reproduce exactly on re-run. There is no
//! shrinking: a failing case reports its inputs via the assertion message.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed: FNV-1a over the test name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test]` functions whose
/// parameters are drawn from strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = <$crate::__rt::SmallRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\nassertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", __l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\nassertion failed: `left != right`\n  both: {:?}", format!($($fmt)+), __l),
            ));
        }
    }};
}

/// Pick uniformly among several strategies producing the same value type.
/// Weighted arms (`weight => strategy`) are accepted; weights are treated
/// as uniform, which only changes the sampling distribution, not coverage.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let __variants: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__variants)
    }};
    ($($strat:expr),+ $(,)?) => {{
        let __variants: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__variants)
    }};
}
