//! Online transaction-management transition (paper §III-A, Figs. 2–3):
//! start in centralized GTM mode, switch to decentralized GClock *while
//! writing*, then fall back to GTM as if a clock fault occurred — all with
//! zero downtime.
//!
//! ```text
//! cargo run --release --example online_transition
//! ```

use globaldb::{Cluster, ClusterConfig, Datum, SimTime, TmMode, TransitionDirection};

fn main() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.tm_mode = TmMode::Gtm;
    let mut cluster = Cluster::new(config);
    cluster
        .ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    for k in 0..16i64 {
        cluster
            .execute_sql(
                0,
                SimTime::from_millis(5),
                "INSERT INTO kv VALUES (?, 0)",
                &[Datum::Int(k)],
            )
            .unwrap();
    }

    let upd = cluster
        .prepare("UPDATE kv SET v = v + 1 WHERE k = ?")
        .unwrap();
    let write = |cluster: &mut Cluster, at_ms: u64, k: i64| {
        let res = cluster.run_transaction(
            (k % 3) as usize,
            SimTime::from_millis(at_ms),
            false,
            true,
            |txn| txn.execute(&upd, &[Datum::Int(k)]).map(|_| ()),
        );
        let mode = cluster.db.cn_mode((k % 3) as usize);
        match res {
            Ok((_, o)) => println!(
                "t={at_ms:>5} ms  [{mode}]  write k={k}: ts={:?} latency={}",
                o.commit_ts.unwrap(),
                o.latency
            ),
            Err(e) => println!("t={at_ms:>5} ms  [{mode}]  write k={k}: RETRY ({e})"),
        }
    };

    println!("— phase 1: centralized GTM mode —");
    for i in 0..4 {
        write(&mut cluster, 20 + i * 10, i as i64);
    }

    println!("— phase 2: online transition GTM → GClock (cluster stays up) —");
    cluster.start_transition(TransitionDirection::ToGClock);
    for i in 0..8 {
        write(&mut cluster, 70 + i * 5, i as i64);
    }
    cluster.run_until(SimTime::from_millis(400));
    println!(
        "transition completed: {:?}; GTM server mode: {}",
        cluster.db.last_transition_completed(),
        cluster.db.gtm().mode()
    );

    println!("— phase 3: decentralized GClock mode (timestamps are epoch µs) —");
    for i in 0..4 {
        write(&mut cluster, 420 + i * 10, i as i64);
    }

    println!("— phase 4: clock fault! fall back to GTM (Fig. 3: no aborts, no wait) —");
    cluster.db.cns_mut()[0].tm.gclock.set_healthy(false);
    cluster.start_transition(TransitionDirection::ToGtm);
    for i in 0..8 {
        write(&mut cluster, 480 + i * 5, i as i64);
    }
    cluster.run_until(SimTime::from_millis(900));
    println!(
        "transition completed: {:?}; GTM server mode: {}",
        cluster.db.last_transition_completed(),
        cluster.db.gtm().mode()
    );

    // Every increment survived both transitions.
    let (out, _) = cluster
        .execute_sql(0, SimTime::from_millis(950), "SELECT SUM(v) FROM kv", &[])
        .unwrap();
    println!(
        "total increments recorded: {:?} (expected 24)",
        out.rows()[0].0[0]
    );
}
