//! Pre-registered metric handles for the engine's hot paths.
//!
//! One `HotMetrics` is resolved against the cluster's registry at
//! construction and stored on [`crate::cluster::GlobalDb`]; every
//! per-transaction / per-batch / per-read record site indexes a `Vec`
//! slot through it instead of doing a string `BTreeMap` lookup. Each
//! subsystem owns its handle struct next to its metric names, so the
//! "names live with the subsystem" rule from DESIGN.md carries over to
//! handles. Registration alone never changes a metrics snapshot — slots
//! surface only once touched — which keeps committed baselines
//! bit-identical.
//!
//! Not everything moves off the string path: snapshot-time mirrors
//! (`sync_derived_metrics`, `MessagePlane::mirror_metrics`) and labelled
//! per-region instruments format names once per snapshot, not per event,
//! and [`crate::net::MessagePlane::charge`] already accumulates into
//! per-`RpcKind` arrays on its hot path.

use gdb_obs::MetricsRegistry;

/// Every hot-path handle, grouped by owning subsystem.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotMetrics {
    pub txn: gdb_txnmgr::metrics::TxnHandles,
    pub ship: gdb_replication::metrics::ShipHandles,
    pub rcp: gdb_consistency::metrics::RcpHandles,
    pub router: gdb_router::metrics::RouterHandles,
}

impl HotMetrics {
    pub fn register(m: &mut MetricsRegistry) -> Self {
        HotMetrics {
            txn: gdb_txnmgr::metrics::TxnHandles::register(m),
            ship: gdb_replication::metrics::ShipHandles::register(m),
            rcp: gdb_consistency::metrics::RcpHandles::register(m),
            router: gdb_router::metrics::RouterHandles::register(m),
        }
    }
}
