//! Quickstart: create a geo-distributed cluster, run SQL, read from
//! replicas.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
#![allow(clippy::inconsistent_digit_grouping)] // money literals read as dollars_cents

use globaldb::{Cluster, ClusterConfig, Datum, SimDuration, SimTime};

fn main() {
    // A GlobalDB cluster in the paper's Three-City geometry: GClock
    // timestamps, asynchronous LZ4-compressed replication, read-on-replica.
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());

    cluster
        .ddl(
            "CREATE TABLE accounts (
                id INT NOT NULL,
                owner TEXT,
                balance DECIMAL,
                PRIMARY KEY (id)
             ) DISTRIBUTE BY HASH(id)",
        )
        .expect("create table");

    // Writes go to the shard primaries; redo ships to replicas in the
    // other two cities in the background.
    let t0 = SimTime::from_millis(10);
    for (i, owner) in ["ada", "grace", "edsger", "barbara"].iter().enumerate() {
        let (_, outcome) = cluster
            .execute_sql(
                0,
                t0 + SimDuration::from_millis(i as u64 * 5),
                "INSERT INTO accounts VALUES (?, ?, ?)",
                &[
                    Datum::Int(i as i64),
                    Datum::Text(owner.to_string()),
                    Datum::Decimal(1_000_00),
                ],
            )
            .expect("insert");
        println!(
            "insert #{i}: commit ts {:?}, latency {}",
            outcome.commit_ts.unwrap(),
            outcome.latency
        );
    }

    // A read-write transaction with multiple statements.
    let debit = cluster
        .prepare("UPDATE accounts SET balance = balance - ? WHERE id = ?")
        .unwrap();
    let credit = cluster
        .prepare("UPDATE accounts SET balance = balance + ? WHERE id = ?")
        .unwrap();
    let ((), outcome) = cluster
        .run_transaction(0, SimTime::from_millis(100), false, false, |txn| {
            txn.execute(&debit, &[Datum::Decimal(250_00), Datum::Int(0)])?;
            txn.execute(&credit, &[Datum::Decimal(250_00), Datum::Int(1)])?;
            Ok(())
        })
        .expect("transfer");
    println!(
        "transfer: wrote shards {:?} ({}), latency {}",
        outcome.shards_written,
        if outcome.shards_written.len() > 1 {
            "2PC"
        } else {
            "single-shard"
        },
        outcome.latency
    );

    // Let replication and the RCP catch up, then read from a replica.
    cluster.run_until(SimTime::from_millis(600));
    let sel = cluster
        .prepare("SELECT owner, balance FROM accounts WHERE id = ?")
        .unwrap();
    let ((), outcome) = cluster
        .run_transaction(1, SimTime::from_millis(610), true, true, |txn| {
            println!(
                "read-only txn: ROR={} snapshot={:?}",
                txn.is_ror(),
                txn.snapshot()
            );
            for id in 0..2 {
                let out = txn.execute(&sel, &[Datum::Int(id)])?;
                let rows = out.rows();
                println!("  account {id}: {} has {}", rows[0].0[0], rows[0].0[1]);
            }
            Ok(())
        })
        .expect("ror read");
    println!(
        "served from replica: {} (latency {})",
        outcome.used_replica, outcome.latency
    );
    println!(
        "cluster stats: {} replica reads, {} primary reads, {} heartbeats",
        cluster.db.stats().reads_on_replica,
        cluster.db.stats().reads_on_primary,
        cluster.db.stats().heartbeats_sent
    );
}
