//! Virtual time.
//!
//! All waiting in the reproduction — commit waits, WAN round trips, clock
//! sync periods, think times — happens in virtual time, so a 100 ms commit
//! wait costs nothing real and every run is reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual time, in nanoseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Duration from a floating-point number of seconds (rounding down).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        // Saturating: earlier - later = 0.
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(5),
            SimDuration::ZERO
        );
        assert_eq!((SimDuration::from_millis(4) * 3).as_millis(), 12);
        assert_eq!((SimDuration::from_millis(9) / 3).as_millis(), 3);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a).as_secs_f64(), 1.0);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_millis(25).to_string(), "25.000ms");
        assert_eq!(SimDuration::from_micros(60).to_string(), "60.0us");
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
    }
}
