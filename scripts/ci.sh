#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, tests, and a 5-seed
# smoke run of the chaos nemesis binary. Everything runs offline against
# the vendored dependency set.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> nemesis smoke (5 seeds)"
for seed in 1 2 3 4 5; do
    cargo run --release -q -p gdb-chaos --bin nemesis -- --seed "$seed" --duration 2s \
        | tail -n 1
done

echo "CI OK"
