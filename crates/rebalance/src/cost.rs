//! The unified placement cost model (Placement v2).
//!
//! One scalar [`PlacementCost::cost`] scores a [`ClusterView`]; the
//! greedy [`PlacementCost::propose_batch`] search emits a batch of
//! strictly-cost-reducing moves. Replacing the PR 4 first-match policy
//! chain (frozen in [`crate::legacy`]) with a single objective removes
//! the chain's oscillation mode by construction: on a static view every
//! accepted move strictly lowers the same scalar, so no sequence of
//! accepted moves can revisit a configuration — in particular A→B→A
//! ping-pong is impossible. Under fluctuating traffic, [`Hysteresis`]
//! adds a decaying per-shard penalty to the acceptance margin of
//! recently moved shards, damping window-to-window jitter.
//!
//! Everything here is a pure, deterministic function of the view — no
//! RNG, no cluster access — so the proptests in
//! `tests/cost_model_props.rs` can drive it on synthetic views.

use crate::{ClusterView, HostSlot};
use globaldb::MigrationKind;
use std::collections::{BTreeMap, BTreeSet};

/// Weights of the placement objective. The defaults encode the paper's
/// WAN reality: a cross-region round trip (25–55 ms) dwarfs local
/// queueing, so remote traffic dominates the score and load spread and
/// replica balance act as tie-breakers. Placements on draining hosts
/// carry a large constant penalty so scale-in moves always clear the
/// acceptance margin.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCost {
    /// Weight of the remote-ops fraction (ops hitting a shard from a
    /// region other than its primary's).
    pub cross_region_weight: f64,
    /// Weight of the load-spread term (`max/mean − 1` of per-host
    /// primary load).
    pub spread_weight: f64,
    /// Weight of the replica-distribution term (normalized standard
    /// deviation of per-host replica counts).
    pub replica_balance_weight: f64,
    /// Flat cost per primary or replica placed on a draining host.
    pub drain_weight: f64,
}

impl Default for PlacementCost {
    fn default() -> Self {
        PlacementCost {
            cross_region_weight: 1.0,
            spread_weight: 0.15,
            replica_balance_weight: 0.1,
            drain_weight: 10.0,
        }
    }
}

/// Search/acceptance knobs for [`PlacementCost::propose_batch`].
#[derive(Debug, Clone, Copy)]
pub struct CostPolicy {
    /// Primary moves need at least this many windowed ops on the shard
    /// (don't chase noise); moves off a draining host are exempt.
    pub min_shard_ops: u64,
    /// A move must reduce the modeled cost by more than this margin.
    pub base_margin: f64,
    /// Extra margin charged against a shard right after it moved
    /// (hysteresis), decaying by [`CostPolicy::decay`] per tick.
    pub move_penalty: f64,
    /// Multiplicative decay of the per-shard penalty per controller tick.
    pub decay: f64,
    /// Maximum moves per batched plan.
    pub max_batch: usize,
}

impl Default for CostPolicy {
    fn default() -> Self {
        CostPolicy {
            min_shard_ops: 64,
            base_margin: 0.02,
            move_penalty: 0.25,
            decay: 0.5,
            max_batch: 4,
        }
    }
}

/// Decaying per-shard acceptance penalties: the "recent move" memory
/// that turns the margin into hysteresis.
#[derive(Debug, Clone, Default)]
pub struct Hysteresis {
    penalties: BTreeMap<usize, f64>,
}

impl Hysteresis {
    pub fn new() -> Self {
        Self::default()
    }

    /// Decay every penalty one tick; drop the negligible ones.
    pub fn decay(&mut self, policy: &CostPolicy) {
        for p in self.penalties.values_mut() {
            *p *= policy.decay;
        }
        self.penalties.retain(|_, p| *p > 1e-3);
    }

    /// Charge a shard that just completed a move.
    pub fn note_move(&mut self, shard: usize, policy: &CostPolicy) {
        self.penalties.insert(shard, policy.move_penalty);
    }

    /// Clear a shard's penalty (its move aborted: the history entry must
    /// not suppress a re-proposal).
    pub fn clear(&mut self, shard: usize) {
        self.penalties.remove(&shard);
    }

    pub fn penalty(&self, shard: usize) -> f64 {
        self.penalties.get(&shard).copied().unwrap_or(0.0)
    }
}

/// One accepted move of the greedy search, with the modeled cost before
/// and after it (each strictly decreasing within a batch).
#[derive(Debug, Clone)]
pub struct CostProposal {
    pub shard: usize,
    pub kind: MigrationKind,
    /// Slot the moved placement currently occupies.
    pub from: HostSlot,
    pub to: HostSlot,
    pub cost_before: f64,
    pub cost_after: f64,
    /// Human-readable trail for logs/tests.
    pub reason: String,
}

impl PlacementCost {
    /// Score a view: weighted sum of the remote-traffic fraction, the
    /// primary load spread, the replica-distribution imbalance, and the
    /// drain pressure. Lower is better; an idle balanced cluster scores
    /// 0. Pure f64 arithmetic over sorted inputs — deterministic.
    pub fn cost(&self, view: &ClusterView) -> f64 {
        let total_ops: u64 = view.shards.iter().map(|s| s.ops).sum();
        let mut remote = 0u64;
        for s in &view.shards {
            for (ri, &ops) in s.by_region.iter().enumerate() {
                if view.regions.get(ri).copied() != Some(s.region) {
                    remote += ops;
                }
            }
        }
        let cross = if total_ops == 0 {
            0.0
        } else {
            remote as f64 / total_ops as f64
        };

        let spread_term = (view.spread() - 1.0).max(0.0);

        let replica_term = if view.hosts.is_empty() {
            0.0
        } else {
            let counts: Vec<usize> = view
                .hosts
                .iter()
                .map(|&h| {
                    view.shards
                        .iter()
                        .flat_map(|s| &s.replicas)
                        .filter(|r| r.slot == h)
                        .count()
                })
                .collect();
            let total: usize = counts.iter().sum();
            if total == 0 {
                0.0
            } else {
                let mean = total as f64 / counts.len() as f64;
                let var = counts
                    .iter()
                    .map(|&c| {
                        let d = c as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / counts.len() as f64;
                var.sqrt() / mean
            }
        };

        let on_draining: usize = view
            .shards
            .iter()
            .map(|s| {
                let primary = view.draining.contains(&HostSlot {
                    region: s.region,
                    host: s.host,
                }) as usize;
                primary
                    + s.replicas
                        .iter()
                        .filter(|r| view.draining.contains(&r.slot))
                        .count()
            })
            .sum();

        self.cross_region_weight * cross
            + self.spread_weight * spread_term
            + self.replica_balance_weight * replica_term
            + self.drain_weight * on_draining as f64
    }

    /// Greedy batch search: repeatedly pick the single move (primary or
    /// replica relocation) that lowers the modeled cost the most, apply
    /// it to a simulated copy of the view, and repeat — up to
    /// `policy.max_batch` moves, never touching the same shard twice
    /// (`busy` shards — e.g. already migrating — are excluded from the
    /// start). A move is accepted only if it clears
    /// `base_margin + hysteresis.penalty(shard)`, so every emitted
    /// proposal strictly reduces cost and recently moved shards need a
    /// bigger win to move again.
    pub fn propose_batch(
        &self,
        view: &ClusterView,
        policy: &CostPolicy,
        hysteresis: &Hysteresis,
        busy: &BTreeSet<usize>,
    ) -> Vec<CostProposal> {
        let mut sim = view.clone();
        let mut moved: BTreeSet<usize> = busy.clone();
        let mut out = Vec::new();
        while out.len() < policy.max_batch {
            let before = self.cost(&sim);
            let mut best: Option<CostProposal> = None;
            for si in 0..sim.shards.len() {
                let s = &sim.shards[si];
                let shard = s.shard;
                if moved.contains(&shard) {
                    continue;
                }
                let margin = policy.base_margin + hysteresis.penalty(shard);
                let primary_slot = HostSlot {
                    region: s.region,
                    host: s.host,
                };
                // Primary relocation: hot enough, or fleeing a drain.
                if s.ops >= policy.min_shard_ops || sim.draining.contains(&primary_slot) {
                    for &to in &sim.hosts {
                        if to == primary_slot || sim.draining.contains(&to) {
                            continue;
                        }
                        let mut trial = sim.clone();
                        trial.shards[si].region = to.region;
                        trial.shards[si].host = to.host;
                        let after = self.cost(&trial);
                        let better = match &best {
                            None => true,
                            Some(b) => after < b.cost_after,
                        };
                        if before - after > margin && better {
                            best = Some(CostProposal {
                                shard,
                                kind: MigrationKind::Primary,
                                from: primary_slot,
                                to,
                                cost_before: before,
                                cost_after: after,
                                reason: format!(
                                    "cost: shard {shard} primary ({},{})→({},{}) \
                                     {before:.3}→{after:.3}",
                                    primary_slot.region.0, primary_slot.host, to.region.0, to.host
                                ),
                            });
                        }
                    }
                }
                // Replica relocation: balance replica counts / flee a
                // drain. Keep a shard's replicas off its primary's host
                // and off each other.
                for (ri, r) in s.replicas.iter().enumerate() {
                    for &to in &sim.hosts {
                        if to == r.slot
                            || sim.draining.contains(&to)
                            || to == primary_slot
                            || s.replicas.iter().any(|o| o.slot == to)
                        {
                            continue;
                        }
                        let mut trial = sim.clone();
                        trial.shards[si].replicas[ri].slot = to;
                        let after = self.cost(&trial);
                        let better = match &best {
                            None => true,
                            Some(b) => after < b.cost_after,
                        };
                        if before - after > margin && better {
                            best = Some(CostProposal {
                                shard,
                                kind: MigrationKind::Replica { node: r.node },
                                from: r.slot,
                                to,
                                cost_before: before,
                                cost_after: after,
                                reason: format!(
                                    "cost: shard {shard} replica ({},{})→({},{}) \
                                     {before:.3}→{after:.3}",
                                    r.slot.region.0, r.slot.host, to.region.0, to.host
                                ),
                            });
                        }
                    }
                }
            }
            let Some(p) = best else { break };
            apply_move(&mut sim, &p);
            moved.insert(p.shard);
            out.push(p);
        }
        out
    }
}

/// Apply a proposal to a view in place (the greedy search's simulation
/// step; also used by the oscillation proptests to roll a view forward).
pub fn apply_move(view: &mut ClusterView, p: &CostProposal) {
    let Some(s) = view.shards.iter_mut().find(|s| s.shard == p.shard) else {
        return;
    };
    match p.kind {
        MigrationKind::Primary => {
            s.region = p.to.region;
            s.host = p.to.host;
        }
        MigrationKind::Replica { node } => {
            if let Some(r) = s.replicas.iter_mut().find(|r| r.node == node) {
                r.slot = p.to;
            }
        }
    }
}
