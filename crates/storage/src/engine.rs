//! The per-data-node storage facade: versioned tables, secondary indexes,
//! and the lock table, behind one API the executor and replica appliers use.
//!
//! Secondary indexes are maintained insert-only: entries map
//! `(index columns ‖ primary key) → primary key` and lookups re-check the
//! indexed columns against the version visible at the reader's snapshot, so
//! stale entries are filtered rather than eagerly removed (the standard
//! MVCC recheck approach — old snapshots keep seeing old entries).

use crate::catalog::Catalog;
use crate::lock::LockTable;
use crate::table::{Table, VisibleRow};
use gdb_model::{Datum, FxHashMap, GdbError, GdbResult, IndexId, Row, RowKey, TableId, Timestamp};
use gdb_simnet::SimTime;
use std::collections::BTreeMap;

/// Storage state of one data node (primary or replica).
#[derive(Debug, Default, Clone)]
pub struct DataNodeStorage {
    catalog: Catalog,
    tables: FxHashMap<TableId, Table>,
    /// index id → ordered map of (index cols ‖ pk) → pk.
    indexes: FxHashMap<IndexId, BTreeMap<RowKey, RowKey>>,
    pub locks: LockTable,
    /// Row reads served (load metric).
    pub reads: u64,
    /// Versions written (load metric).
    pub writes: u64,
}

impl DataNodeStorage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    // ---- DDL --------------------------------------------------------

    pub fn create_table(&mut self, schema: gdb_model::TableSchema) -> GdbResult<()> {
        let id = schema.id;
        self.catalog.create_table(schema)?;
        self.tables.insert(id, Table::new());
        Ok(())
    }

    pub fn drop_table(&mut self, id: TableId) -> GdbResult<()> {
        let dropped: Vec<IndexId> = self.catalog.indexes_on(id).iter().map(|ix| ix.id).collect();
        self.catalog.drop_table(id)?;
        self.tables.remove(&id);
        for ix in dropped {
            self.indexes.remove(&ix);
        }
        Ok(())
    }

    /// Create a secondary index and backfill it from the newest versions.
    pub fn create_index(
        &mut self,
        table: TableId,
        name: impl Into<String>,
        columns: Vec<usize>,
    ) -> GdbResult<IndexId> {
        let id = self.catalog.create_index(table, name, columns.clone())?;
        let mut map = BTreeMap::new();
        if let Some(tbl) = self.tables.get(&table) {
            // Backfill from all versions visible at any snapshot: use the
            // newest version of each key (older versions recheck away).
            for v in tbl.range(None, None, Timestamp::MAX) {
                let entry = Self::index_entry(&columns, v.row, v.key);
                map.insert(entry, v.key.clone());
            }
        }
        self.indexes.insert(id, map);
        Ok(id)
    }

    pub fn drop_index(&mut self, name: &str) -> GdbResult<()> {
        let def = self.catalog.drop_index(name)?;
        self.indexes.remove(&def.id);
        Ok(())
    }

    fn index_entry(columns: &[usize], row: &Row, pk: &RowKey) -> RowKey {
        let mut vals: Vec<Datum> = columns.iter().map(|&c| row.0[c].clone()).collect();
        vals.extend(pk.0.iter().cloned());
        RowKey(vals)
    }

    /// The `(index, entry)` pairs a write to `(table, key, row)` must
    /// install. Returns an empty (non-allocating) vec when the table has
    /// no secondary indexes — the common case on the hot write path.
    fn index_updates(&self, table: TableId, key: &RowKey, row: &Row) -> Vec<(IndexId, RowKey)> {
        if self.indexes.is_empty() {
            return Vec::new();
        }
        self.catalog
            .indexes_on(table)
            .iter()
            .map(|ix| (ix.id, Self::index_entry(&ix.columns, row, key)))
            .collect()
    }

    // ---- DML (installs *committed* versions) -------------------------

    fn table_mut(&mut self, id: TableId) -> GdbResult<&mut Table> {
        self.tables
            .get_mut(&id)
            .ok_or_else(|| GdbError::Schema(format!("no storage for table {id}")))
    }

    pub fn table(&self, id: TableId) -> GdbResult<&Table> {
        self.tables
            .get(&id)
            .ok_or_else(|| GdbError::Schema(format!("no storage for table {id}")))
    }

    /// Insert a new row version. Fails on a live duplicate key.
    pub fn insert(
        &mut self,
        table: TableId,
        key: RowKey,
        row: Row,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let index_updates = self.index_updates(table, &key, &row);
        let tbl = self.table_mut(table)?;
        if tbl.exists_newest(&key) {
            return Err(GdbError::DuplicateKey(format!("{table} {key}")));
        }
        if index_updates.is_empty() {
            return tbl.install_version(key, Some(row), commit_ts, commit_vtime);
        }
        tbl.install_version(key.clone(), Some(row), commit_ts, commit_vtime)?;
        for (ix, entry) in index_updates {
            self.indexes
                .get_mut(&ix)
                .expect("index storage consistent")
                .insert(entry, key.clone());
        }
        Ok(())
    }

    /// Overwrite an existing row (read-committed update: the caller already
    /// holds the row lock and read the newest version).
    pub fn update(
        &mut self,
        table: TableId,
        key: RowKey,
        new_row: Row,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let index_updates = self.index_updates(table, &key, &new_row);
        let tbl = self.table_mut(table)?;
        if !tbl.exists_newest(&key) {
            return Err(GdbError::NotFound(format!("{table} {key}")));
        }
        if index_updates.is_empty() {
            return tbl.install_version(key, Some(new_row), commit_ts, commit_vtime);
        }
        tbl.install_version(key.clone(), Some(new_row), commit_ts, commit_vtime)?;
        for (ix, entry) in index_updates {
            self.indexes
                .get_mut(&ix)
                .expect("index storage consistent")
                .insert(entry, key.clone());
        }
        Ok(())
    }

    /// Install an insert-or-update version without existence checks
    /// (replica replay path — the primary already validated).
    pub fn apply_put(
        &mut self,
        table: TableId,
        key: RowKey,
        row: Row,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let index_updates = self.index_updates(table, &key, &row);
        let tbl = self.table_mut(table)?;
        if index_updates.is_empty() {
            return tbl.install_version(key, Some(row), commit_ts, commit_vtime);
        }
        tbl.install_version(key.clone(), Some(row), commit_ts, commit_vtime)?;
        for (ix, entry) in index_updates {
            self.indexes
                .get_mut(&ix)
                .expect("index storage consistent")
                .insert(entry, key.clone());
        }
        Ok(())
    }

    /// [`DataNodeStorage::apply_put`] borrowing the key: the replay hot
    /// path clones it only when the key is new to the table or feeds a
    /// secondary index.
    pub fn apply_put_at(
        &mut self,
        table: TableId,
        key: &RowKey,
        row: Row,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let index_updates = self.index_updates(table, key, &row);
        let tbl = self.table_mut(table)?;
        tbl.install_version_at(key, Some(row), commit_ts, commit_vtime)?;
        for (ix, entry) in index_updates {
            self.indexes
                .get_mut(&ix)
                .expect("index storage consistent")
                .insert(entry, key.clone());
        }
        Ok(())
    }

    /// Delete a row (tombstone).
    pub fn delete(
        &mut self,
        table: TableId,
        key: RowKey,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let tbl = self.table_mut(table)?;
        if !tbl.exists_newest(&key) {
            return Err(GdbError::NotFound(format!("{table} {key}")));
        }
        tbl.install_version(key, None, commit_ts, commit_vtime)
    }

    /// Tombstone without existence check (replica replay path).
    pub fn apply_delete(
        &mut self,
        table: TableId,
        key: RowKey,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let tbl = self.table_mut(table)?;
        tbl.install_version(key, None, commit_ts, commit_vtime)
    }

    /// [`DataNodeStorage::apply_delete`] borrowing the key.
    pub fn apply_delete_at(
        &mut self,
        table: TableId,
        key: &RowKey,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.writes += 1;
        let tbl = self.table_mut(table)?;
        tbl.install_version_at(key, None, commit_ts, commit_vtime)
    }

    /// A cleared recycled row buffer from the table's vacuum pool (see
    /// [`Table::recycled_row`]); a fresh `Row` if the table is unknown.
    pub fn recycled_row(&mut self, table: TableId) -> Row {
        self.tables
            .get_mut(&table)
            .map(|t| t.recycled_row())
            .unwrap_or_default()
    }

    // ---- Reads -------------------------------------------------------

    pub fn read(
        &mut self,
        table: TableId,
        key: &RowKey,
        snapshot: Timestamp,
    ) -> GdbResult<Option<VisibleRow<'_>>> {
        self.reads += 1;
        Ok(self.table(table)?.read(key, snapshot))
    }

    /// Newest committed version (read-committed update path).
    pub fn read_newest(
        &mut self,
        table: TableId,
        key: &RowKey,
    ) -> GdbResult<Option<VisibleRow<'_>>> {
        self.reads += 1;
        Ok(self.table(table)?.read_newest(key))
    }

    pub fn range(
        &mut self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        snapshot: Timestamp,
    ) -> GdbResult<Vec<VisibleRow<'_>>> {
        self.reads += 1;
        Ok(self.table(table)?.range(lo, hi, snapshot))
    }

    pub fn scan(&mut self, table: TableId, snapshot: Timestamp) -> GdbResult<Vec<VisibleRow<'_>>> {
        self.reads += 1;
        Ok(self.table(table)?.scan(snapshot))
    }

    /// Index prefix lookup: all rows whose indexed columns start with
    /// `prefix`, visible at `snapshot`, with the MVCC recheck applied.
    pub fn index_lookup(
        &mut self,
        index: IndexId,
        prefix: &[Datum],
        snapshot: Timestamp,
    ) -> GdbResult<Vec<(RowKey, Row)>> {
        self.reads += 1;
        let def = self.catalog.index(index)?.clone();
        let map = self
            .indexes
            .get(&index)
            .ok_or_else(|| GdbError::Schema(format!("no storage for index {index}")))?;
        let tbl = self
            .tables
            .get(&def.table)
            .ok_or_else(|| GdbError::Schema(format!("no storage for table {}", def.table)))?;

        let mut out = Vec::new();
        let lo = RowKey(prefix.to_vec());
        for (entry, pk) in map.range(lo.clone()..) {
            // Stop once the entry no longer starts with the prefix.
            if entry.0.len() < prefix.len()
                || entry.0[..prefix.len()]
                    .iter()
                    .zip(prefix)
                    .any(|(a, b)| a.key_cmp(b) != std::cmp::Ordering::Equal)
            {
                break;
            }
            if let Some(v) = tbl.read(pk, snapshot) {
                // Recheck: the visible version's indexed columns must still
                // match this entry (it may be stale after an update).
                let matches = def
                    .columns
                    .iter()
                    .zip(entry.0.iter())
                    .all(|(&c, ev)| v.row.0[c].key_cmp(ev) == std::cmp::Ordering::Equal);
                if matches {
                    out.push((pk.clone(), v.row.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Vacuum every table up to `horizon`; returns versions removed.
    pub fn vacuum(&mut self, horizon: Timestamp) -> usize {
        self.tables.values_mut().map(|t| t.vacuum(horizon)).sum()
    }

    /// Approximate number of live keys across all tables (size metric).
    pub fn total_keys(&self) -> usize {
        self.tables.values().map(|t| t.key_count()).sum()
    }

    /// Allocator bytes pinned by every table's version arena (the
    /// `storage.arena_resident_bytes.s<shard>` gauge source).
    pub fn resident_bytes(&self) -> usize {
        self.tables.values().map(|t| t.resident_bytes()).sum()
    }

    /// Release reusable memory across all tables (memory-pressure
    /// response; visible state untouched).
    pub fn compact(&mut self) {
        for t in self.tables.values_mut() {
            t.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::{ColumnDef, DataType, SchemaBuilder, TableSchema};

    fn schema(id: u32) -> TableSchema {
        SchemaBuilder::new(format!("t{id}"))
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text))
            .column(ColumnDef::new("qty", DataType::Int))
            .primary_key(&["id"])
            .build(TableId(id))
            .unwrap()
    }

    fn row(id: i64, name: &str, qty: i64) -> Row {
        Row(vec![
            Datum::Int(id),
            Datum::Text(name.into()),
            Datum::Int(qty),
        ])
    }

    fn setup() -> DataNodeStorage {
        let mut s = DataNodeStorage::new();
        s.create_table(schema(0)).unwrap();
        s
    }

    #[test]
    fn insert_read_update_delete_cycle() {
        let mut s = setup();
        let t = TableId(0);
        let k = RowKey::single(1i64);
        s.insert(t, k.clone(), row(1, "a", 10), Timestamp(10), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            s.read(t, &k, Timestamp(10)).unwrap().unwrap().row,
            &row(1, "a", 10)
        );
        s.update(t, k.clone(), row(1, "b", 20), Timestamp(20), SimTime::ZERO)
            .unwrap();
        // Old snapshot still sees the old version.
        assert_eq!(
            s.read(t, &k, Timestamp(15)).unwrap().unwrap().row,
            &row(1, "a", 10)
        );
        s.delete(t, k.clone(), Timestamp(30), SimTime::ZERO)
            .unwrap();
        assert!(s.read(t, &k, Timestamp(30)).unwrap().is_none());
        assert!(s.read(t, &k, Timestamp(25)).unwrap().is_some());
    }

    #[test]
    fn duplicate_insert_rejected_but_reinsert_after_delete_ok() {
        let mut s = setup();
        let t = TableId(0);
        let k = RowKey::single(1i64);
        s.insert(t, k.clone(), row(1, "a", 1), Timestamp(10), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            s.insert(t, k.clone(), row(1, "b", 2), Timestamp(20), SimTime::ZERO),
            Err(GdbError::DuplicateKey(_))
        ));
        s.delete(t, k.clone(), Timestamp(30), SimTime::ZERO)
            .unwrap();
        s.insert(t, k.clone(), row(1, "c", 3), Timestamp(40), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            s.read(t, &k, Timestamp(40)).unwrap().unwrap().row,
            &row(1, "c", 3)
        );
    }

    #[test]
    fn update_missing_row_errors() {
        let mut s = setup();
        assert!(matches!(
            s.update(
                TableId(0),
                RowKey::single(9i64),
                row(9, "x", 0),
                Timestamp(5),
                SimTime::ZERO
            ),
            Err(GdbError::NotFound(_))
        ));
        assert!(matches!(
            s.delete(
                TableId(0),
                RowKey::single(9i64),
                Timestamp(5),
                SimTime::ZERO
            ),
            Err(GdbError::NotFound(_))
        ));
    }

    #[test]
    fn index_lookup_with_recheck() {
        let mut s = setup();
        let t = TableId(0);
        let ix = s.create_index(t, "by_name", vec![1]).unwrap();
        for i in 0..5i64 {
            s.insert(
                t,
                RowKey::single(i),
                row(i, if i % 2 == 0 { "even" } else { "odd" }, i),
                Timestamp(10),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let evens = s
            .index_lookup(ix, &[Datum::Text("even".into())], Timestamp(10))
            .unwrap();
        assert_eq!(evens.len(), 3);
        // Update row 0's name: old index entry must recheck away at newer
        // snapshots but the old snapshot still finds it.
        s.update(
            t,
            RowKey::single(0i64),
            row(0, "odd", 0),
            Timestamp(20),
            SimTime::ZERO,
        )
        .unwrap();
        let evens_now = s
            .index_lookup(ix, &[Datum::Text("even".into())], Timestamp(20))
            .unwrap();
        assert_eq!(evens_now.len(), 2);
        let evens_old = s
            .index_lookup(ix, &[Datum::Text("even".into())], Timestamp(10))
            .unwrap();
        assert_eq!(evens_old.len(), 3);
        let odds_now = s
            .index_lookup(ix, &[Datum::Text("odd".into())], Timestamp(20))
            .unwrap();
        assert_eq!(odds_now.len(), 3);
    }

    #[test]
    fn index_backfill_on_create() {
        let mut s = setup();
        let t = TableId(0);
        for i in 0..4i64 {
            s.insert(
                t,
                RowKey::single(i),
                row(i, "n", i),
                Timestamp(10),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let ix = s.create_index(t, "by_name", vec![1]).unwrap();
        let hits = s
            .index_lookup(ix, &[Datum::Text("n".into())], Timestamp(10))
            .unwrap();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn deleted_rows_vanish_from_index_lookups() {
        let mut s = setup();
        let t = TableId(0);
        let ix = s.create_index(t, "by_name", vec![1]).unwrap();
        s.insert(
            t,
            RowKey::single(1i64),
            row(1, "gone", 0),
            Timestamp(10),
            SimTime::ZERO,
        )
        .unwrap();
        s.delete(t, RowKey::single(1i64), Timestamp(20), SimTime::ZERO)
            .unwrap();
        assert!(s
            .index_lookup(ix, &[Datum::Text("gone".into())], Timestamp(20))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn drop_table_removes_storage_and_indexes() {
        let mut s = setup();
        let t = TableId(0);
        let ix = s.create_index(t, "by_name", vec![1]).unwrap();
        s.drop_table(t).unwrap();
        assert!(s.read(t, &RowKey::single(1i64), Timestamp(10)).is_err());
        assert!(s.index_lookup(ix, &[], Timestamp(10)).is_err());
    }

    #[test]
    fn apply_put_skips_checks_for_replay() {
        let mut s = setup();
        let t = TableId(0);
        let k = RowKey::single(1i64);
        // Replay can put the same key twice (update without prior insert).
        s.apply_put(t, k.clone(), row(1, "a", 1), Timestamp(10), SimTime::ZERO)
            .unwrap();
        s.apply_put(t, k.clone(), row(1, "b", 2), Timestamp(20), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            s.read(t, &k, Timestamp(20)).unwrap().unwrap().row,
            &row(1, "b", 2)
        );
    }

    #[test]
    fn range_reads_through_engine() {
        let mut s = setup();
        let t = TableId(0);
        for i in 0..10i64 {
            s.insert(
                t,
                RowKey::single(i),
                row(i, "r", i),
                Timestamp(10),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let rows = s
            .range(
                t,
                Some(&RowKey::single(3i64)),
                Some(&RowKey::single(6i64)),
                Timestamp(10),
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
    }
}
