//! Transaction execution: the [`TxnHandle`] drives SQL plans against the
//! distributed cluster, accumulating latency from every message the
//! transaction would send (shard RTTs, GTM round trips, lock waits, commit
//! waits, 2PC rounds, quorum waits).

use crate::cluster::GlobalDb;
use crate::config::RoutingPolicy;
use crate::ror::ReadTarget;
use crate::stats::TxnOutcome;
use gdb_model::{
    Datum, DistributionKind, GdbError, GdbResult, IndexId, Row, RowKey, TableId, TableSchema,
    Timestamp, TxnId,
};
use gdb_obs::SpanKind;
use gdb_replication::{quorum_wait, ReplicaReadResult, ReplicationMode};
use gdb_simnet::{SimDuration, SimTime};
use gdb_sqlengine::plan::BoundDdl;
use gdb_sqlengine::{execute, DataAccess, ExecOutput, Prepared};
use gdb_storage::{Catalog, LockOutcome};
use gdb_txnmgr::{BeginPlan, CommitPlan, TmMode};
use gdb_wal::RedoPayload;
use std::collections::{BTreeSet, HashMap};

/// Nominal request/response payload size for point operations.
const OP_MSG_BYTES: u64 = 256;
/// Placeholder lock lease; replaced with the exact commit-apply time at
/// commit (nothing else runs between acquire and commit within one event).
const LOCK_LEASE: SimDuration = SimDuration(10_000_000_000);

#[derive(Debug, Clone)]
struct WriteOp {
    shard: usize,
    table: TableId,
    key: RowKey,
    /// `None` = delete.
    row: Option<Row>,
}

/// An open transaction bound to one computing node.
pub struct TxnHandle<'a> {
    pub(crate) db: &'a mut GlobalDb,
    cn: usize,
    txn: TxnId,
    started_at: SimTime,
    /// When snapshot acquisition finished (phase boundary for
    /// observability; the begin→begin_done interval is the
    /// `snapshot_acquire` phase).
    begin_done: SimTime,
    /// The running virtual-time cursor (start + accumulated latency).
    pub now: SimTime,
    snapshot: Timestamp,
    /// True while this transaction reads at the RCP from replicas.
    ror: bool,
    freshness_bound: Option<SimDuration>,
    single_shard_hint: bool,
    overlay: HashMap<(TableId, RowKey), Option<Row>>,
    write_log: Vec<WriteOp>,
    first_write: HashMap<usize, SimTime>,
    locked: Vec<(usize, TableId, RowKey)>,
    shards_written: BTreeSet<usize>,
    used_replica: bool,
    finished: bool,
    /// Set once a COMMIT / COMMIT_PREPARED record has been appended to any
    /// shard's redo log: past this point a failure must not emit ABORT
    /// records (the replicas may already have replayed the commit).
    commit_appended: bool,
}

impl<'a> TxnHandle<'a> {
    pub(crate) fn begin(
        db: &'a mut GlobalDb,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
    ) -> GdbResult<Self> {
        if db.topo.is_node_down(db.cns[cn].node) {
            return Err(GdbError::NodeUnavailable(format!("cn {cn} is down")));
        }
        db.sync_cn_clock(cn, at);
        let mut now = at;
        let mut ror = false;
        let mut freshness_bound = None;
        let mut snapshot = Timestamp::ZERO;

        if read_only {
            if let RoutingPolicy::ReadOnReplica {
                freshness_bound: fb,
            } = db.config.routing
            {
                let rcp = db.cns[cn].rcp;
                if rcp > Timestamp::ZERO {
                    ror = true;
                    freshness_bound = fb;
                    snapshot = rcp;
                }
            }
        }
        if !ror {
            match db.cns[cn].tm.plan_begin(now, single_shard) {
                BeginPlan::ViaGtm => {
                    let rtt = db
                        .topo
                        .rtt(db.cns[cn].node, db.gtm_node)
                        .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                    now += rtt;
                    snapshot = db.gtm.begin_snapshot();
                }
                BeginPlan::Local {
                    snapshot: s,
                    invocation_wait,
                } => {
                    now += invocation_wait;
                    snapshot = s;
                }
            }
        }

        let txn = db.next_txn_id(cn);
        Ok(TxnHandle {
            db,
            cn,
            txn,
            started_at: at,
            begin_done: now,
            now,
            snapshot,
            ror,
            freshness_bound,
            single_shard_hint: single_shard,
            overlay: HashMap::new(),
            write_log: Vec::new(),
            first_write: HashMap::new(),
            locked: Vec::new(),
            shards_written: BTreeSet::new(),
            used_replica: false,
            finished: false,
            commit_appended: false,
        })
    }

    /// The snapshot this transaction reads at.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }

    /// True while reads are served from replicas at the RCP.
    pub fn is_ror(&self) -> bool {
        self.ror
    }

    /// Execute a prepared statement inside this transaction.
    pub fn execute(&mut self, prepared: &Prepared, params: &[Datum]) -> GdbResult<ExecOutput> {
        if matches!(prepared.bound, gdb_sqlengine::BoundStatement::Ddl(_)) {
            return Err(GdbError::Plan(
                "DDL cannot run inside a transaction; use Cluster::ddl".into(),
            ));
        }
        if self.ror {
            if !prepared.bound.is_read_only() {
                return Err(GdbError::Execution(
                    "write statement in a read-only (ROR) transaction".into(),
                ));
            }
            // DDL-visibility conditions (§IV-A): if the query's tables have
            // unreplayed DDL, fall back to primary reads for the whole txn.
            if !self
                .db
                .ddl
                .ror_allowed(self.snapshot, &prepared.bound.tables())
            {
                self.db.stats.ror_rejected_ddl += 1;
                self.fallback_to_primary()?;
            }
        }
        execute(&prepared.bound, params, self)
    }

    /// Downgrade an ROR transaction to primary reads (DDL gate or
    /// persistent replica blockage): acquire a normal snapshot.
    fn fallback_to_primary(&mut self) -> GdbResult<()> {
        self.ror = false;
        match self.db.cns[self.cn]
            .tm
            .plan_begin(self.now, self.single_shard_hint)
        {
            BeginPlan::ViaGtm => {
                let rtt = self
                    .db
                    .topo
                    .rtt(self.db.cns[self.cn].node, self.db.gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                self.snapshot = self.db.gtm.begin_snapshot();
            }
            BeginPlan::Local {
                snapshot,
                invocation_wait,
            } => {
                self.now += invocation_wait;
                self.snapshot = snapshot;
            }
        }
        Ok(())
    }

    // ---- Shard routing helpers ---------------------------------------

    fn schema(&self, table: TableId) -> GdbResult<TableSchema> {
        self.db.catalog.table(table).cloned()
    }

    fn charge_rtt_to(&mut self, node: gdb_simnet::NetNodeId, bytes: u64) -> GdbResult<()> {
        let cn_node = self.db.cns[self.cn].node;
        let there = self
            .db
            .topo
            .one_way(cn_node, node, OP_MSG_BYTES)
            .ok_or_else(|| GdbError::NodeUnavailable("data node unreachable".into()))?;
        let back = self
            .db
            .topo
            .one_way(node, cn_node, bytes.max(OP_MSG_BYTES))
            .ok_or_else(|| GdbError::NodeUnavailable("data node unreachable".into()))?;
        self.now += there + back + self.db.config.op_cpu_cost;
        Ok(())
    }

    /// Charge a parallel scatter to several shards (max of the RTTs).
    fn charge_scatter(&mut self, shards: &[usize], bytes: u64) -> GdbResult<()> {
        let cn_node = self.db.cns[self.cn].node;
        let mut max = SimDuration::ZERO;
        for &s in shards {
            let primary = self.db.shards[s].primary;
            let there = self
                .db
                .topo
                .one_way(cn_node, primary, OP_MSG_BYTES)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            let back = self
                .db
                .topo
                .one_way(primary, cn_node, bytes.max(OP_MSG_BYTES))
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            max = max.max(there + back);
        }
        self.now += max + self.db.config.op_cpu_cost;
        Ok(())
    }

    /// Which shards a range over `[lo, hi]` must touch.
    fn shards_for_range(
        &self,
        schema: &TableSchema,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> Vec<usize> {
        let all: Vec<usize> = (0..self.db.shards.len()).collect();
        if matches!(schema.distribution, DistributionKind::Replicated) {
            return vec![self.db.nearest_shard(self.cn)];
        }
        let (Some(lo), Some(hi)) = (lo, hi) else {
            return all;
        };
        // Length of the common prefix of lo and hi.
        let mut common = 0;
        while common < lo.0.len()
            && common < hi.0.len()
            && lo.0[common].key_cmp(&hi.0[common]) == std::cmp::Ordering::Equal
        {
            common += 1;
        }
        // Every distribution-key column must sit inside that common prefix
        // (positions are relative to the primary key ordering).
        let mut dist_vals = Vec::new();
        for dc in &schema.distribution_key {
            match schema.primary_key.iter().position(|pk| pk == dc) {
                Some(pos) if pos < common => dist_vals.push(lo.0[pos].clone()),
                _ => return all,
            }
        }
        vec![
            schema
                .shard_of_key(&RowKey(dist_vals), self.db.shards.len() as u16)
                .0 as usize,
        ]
    }

    /// Shard(s) an index prefix read must touch.
    fn shards_for_index_prefix(
        &self,
        schema: &TableSchema,
        index_cols: &[usize],
        prefix: &[Datum],
    ) -> Vec<usize> {
        if matches!(schema.distribution, DistributionKind::Replicated) {
            return vec![self.db.nearest_shard(self.cn)];
        }
        let mut dist_vals = Vec::new();
        for dc in &schema.distribution_key {
            match index_cols.iter().position(|c| c == dc) {
                Some(pos) if pos < prefix.len() => dist_vals.push(prefix[pos].clone()),
                _ => return (0..self.db.shards.len()).collect(),
            }
        }
        vec![
            schema
                .shard_of_key(&RowKey(dist_vals), self.db.shards.len() as u16)
                .0 as usize,
        ]
    }

    // ---- Read paths ----------------------------------------------------

    /// Primary point read with in-flight-commit wait.
    fn primary_point_read(
        &mut self,
        shard: usize,
        table: TableId,
        key: &RowKey,
    ) -> GdbResult<Option<Row>> {
        let primary = self.db.shards[shard].primary;
        self.charge_rtt_to(primary, OP_MSG_BYTES)?;
        self.db.stats.reads_on_primary += 1;
        let snapshot = self.snapshot;
        let vis = self.db.shards[shard].storage.read(table, key, snapshot)?;
        Ok(match vis {
            Some(v) => {
                if v.commit_vtime > self.now {
                    // The writing transaction's commit is still in flight
                    // at our virtual time: wait for it (in-doubt wait).
                    self.now = v.commit_vtime;
                }
                Some(v.row.clone())
            }
            None => None,
        })
    }

    /// ROR point read: pick a node off the skyline; blocked tuples fall
    /// back to the primary.
    fn ror_point_read(
        &mut self,
        shard: usize,
        table: TableId,
        key: &RowKey,
    ) -> GdbResult<Option<Row>> {
        let target = self.db.select_read_node(
            self.cn,
            shard,
            self.snapshot,
            self.now,
            self.freshness_bound,
        );
        match target {
            ReadTarget::Primary => self.primary_point_read(shard, table, key),
            ReadTarget::Replica(ri) => {
                let node = self.db.shards[shard].replicas[ri].node;
                self.charge_rtt_to(node, OP_MSG_BYTES)?;
                let snapshot = self.snapshot;
                let res = self.db.shards[shard].replicas[ri]
                    .applier
                    .read(table, key, snapshot)?;
                match res {
                    ReplicaReadResult::Row(r) => {
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        Ok(r.map(|(row, _)| row))
                    }
                    ReplicaReadResult::Blocked { .. } => {
                        self.db.stats.replica_blocked_fallbacks += 1;
                        self.primary_point_read(shard, table, key)
                    }
                }
            }
        }
    }

    fn merge_overlay_into_range(
        &self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        rows: &mut Vec<(RowKey, Row)>,
    ) {
        let mut changed = false;
        for ((t, key), row) in &self.overlay {
            if *t != table {
                continue;
            }
            if lo.is_some_and(|l| key < l) || hi.is_some_and(|h| key > h) {
                continue;
            }
            match rows.iter().position(|(k, _)| k == key) {
                Some(i) => match row {
                    Some(r) => rows[i].1 = r.clone(),
                    None => {
                        rows.remove(i);
                    }
                },
                None => {
                    if let Some(r) = row {
                        rows.push((key.clone(), r.clone()));
                        changed = true;
                    }
                }
            }
        }
        if changed {
            rows.sort_by(|a, b| a.0.cmp(&b.0));
        }
    }
}

impl<'a> DataAccess for TxnHandle<'a> {
    fn catalog(&self) -> &Catalog {
        &self.db.catalog
    }

    fn point_read(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        if let Some(hit) = self.overlay.get(&(table, key.clone())) {
            return Ok(hit.clone());
        }
        let schema = self.schema(table)?;
        let shard = if matches!(schema.distribution, DistributionKind::Replicated) {
            self.db.nearest_shard(self.cn)
        } else {
            self.db.shard_of(&schema, key)
        };
        if self.ror {
            self.ror_point_read(shard, table, key)
        } else {
            self.primary_point_read(shard, table, key)
        }
    }

    fn multi_point_read(&mut self, table: TableId, keys: &[RowKey]) -> GdbResult<Vec<Option<Row>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let schema = self.schema(table)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        // Group keys by shard; one parallel scatter round trip total.
        let mut shard_of_key: Vec<usize> = Vec::with_capacity(keys.len());
        let mut shards: Vec<usize> = Vec::new();
        for key in keys {
            let s = if replicated {
                self.db.nearest_shard(self.cn)
            } else {
                self.db.shard_of(&schema, key)
            };
            shard_of_key.push(s);
            if !shards.contains(&s) {
                shards.push(s);
            }
        }
        let snapshot = self.snapshot;
        // Pick the read target per shard (skyline under ROR, else the
        // primary) and charge ONE parallel scatter over the chosen nodes.
        let mut targets: std::collections::HashMap<usize, ReadTarget> =
            std::collections::HashMap::new();
        let mut nodes: Vec<gdb_simnet::NetNodeId> = Vec::new();
        for &s in &shards {
            let t = if self.ror {
                self.db
                    .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound)
            } else {
                ReadTarget::Primary
            };
            let node = match t {
                ReadTarget::Primary => self.db.shards[s].primary,
                ReadTarget::Replica(ri) => self.db.shards[s].replicas[ri].node,
            };
            targets.insert(s, t);
            nodes.push(node);
        }
        let bytes = OP_MSG_BYTES * (keys.len() as u64 / 4).max(1);
        let cn_node = self.db.cns[self.cn].node;
        let mut max_rtt = SimDuration::ZERO;
        for &node in &nodes {
            let there = self
                .db
                .topo
                .one_way(cn_node, node, OP_MSG_BYTES)
                .ok_or_else(|| GdbError::NodeUnavailable("read target unreachable".into()))?;
            let back = self
                .db
                .topo
                .one_way(node, cn_node, bytes)
                .ok_or_else(|| GdbError::NodeUnavailable("read target unreachable".into()))?;
            max_rtt = max_rtt.max(there + back);
        }
        self.now += max_rtt + self.db.config.op_cpu_cost;

        let mut out = Vec::with_capacity(keys.len());
        let mut max_wait = self.now;
        for (key, &s) in keys.iter().zip(&shard_of_key) {
            if let Some(hit) = self.overlay.get(&(table, key.clone())) {
                out.push(hit.clone());
                continue;
            }
            if let Some(ReadTarget::Replica(ri)) = targets.get(&s) {
                let res = self.db.shards[s].replicas[*ri]
                    .applier
                    .read(table, key, snapshot)?;
                match res {
                    ReplicaReadResult::Row(r) => {
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        out.push(r.map(|(row, _)| row));
                        continue;
                    }
                    ReplicaReadResult::Blocked { .. } => {
                        // Blocked tuple: pay an extra primary round trip.
                        self.db.stats.replica_blocked_fallbacks += 1;
                        let primary = self.db.shards[s].primary;
                        self.charge_rtt_to(primary, OP_MSG_BYTES)?;
                    }
                }
            }
            self.db.stats.reads_on_primary += 1;
            let vis = self.db.shards[s].storage.read(table, key, snapshot)?;
            out.push(match vis {
                Some(v) => {
                    if v.commit_vtime > max_wait {
                        max_wait = v.commit_vtime;
                    }
                    Some(v.row.clone())
                }
                None => None,
            });
        }
        self.now = self.now.max(max_wait);
        Ok(out)
    }

    fn range_read(
        &mut self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> GdbResult<Vec<(RowKey, Row)>> {
        let schema = self.schema(table)?;
        let shards = self.shards_for_range(&schema, lo, hi);
        let snapshot = self.snapshot;
        let mut out: Vec<(RowKey, Row)> = Vec::new();
        // Decide per shard: replica or primary.
        let mut primary_shards = Vec::new();
        if self.ror {
            for &s in &shards {
                let target =
                    self.db
                        .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound);
                match target {
                    ReadTarget::Replica(ri) => {
                        let blocked = self.db.shards[s].replicas[ri]
                            .applier
                            .is_range_blocked(table, lo, hi);
                        if blocked {
                            self.db.stats.replica_blocked_fallbacks += 1;
                            primary_shards.push(s);
                            continue;
                        }
                        let node = self.db.shards[s].replicas[ri].node;
                        self.charge_rtt_to(node, OP_MSG_BYTES * 4)?;
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        let rows = self.db.shards[s].replicas[ri]
                            .applier
                            .storage
                            .range(table, lo, hi, snapshot)?;
                        out.extend(rows.into_iter().map(|v| (v.key.clone(), v.row.clone())));
                    }
                    ReadTarget::Primary => primary_shards.push(s),
                }
            }
        } else {
            primary_shards = shards;
        }
        if !primary_shards.is_empty() {
            self.charge_scatter(&primary_shards, OP_MSG_BYTES * 4)?;
            self.db.stats.reads_on_primary += 1;
            let mut max_wait = self.now;
            for &s in &primary_shards {
                let rows = self.db.shards[s].storage.range(table, lo, hi, snapshot)?;
                for v in rows {
                    if v.commit_vtime > max_wait {
                        max_wait = v.commit_vtime;
                    }
                    out.push((v.key.clone(), v.row.clone()));
                }
            }
            self.now = max_wait;
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.merge_overlay_into_range(table, lo, hi, &mut out);
        Ok(out)
    }

    fn index_read(&mut self, index: IndexId, prefix: &[Datum]) -> GdbResult<Vec<(RowKey, Row)>> {
        let def = self.db.catalog.index(index)?.clone();
        let schema = self.schema(def.table)?;
        let shards = self.shards_for_index_prefix(&schema, &def.columns, prefix);
        let snapshot = self.snapshot;
        let mut out: Vec<(RowKey, Row)> = Vec::new();
        let mut primary_shards = Vec::new();
        if self.ror {
            for &s in &shards {
                let target =
                    self.db
                        .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound);
                match target {
                    ReadTarget::Replica(ri) => {
                        // Conservative: any pending write to this table on
                        // the replica forces a primary fallback.
                        let blocked = self.db.shards[s].replicas[ri]
                            .applier
                            .is_range_blocked(def.table, None, None);
                        if blocked {
                            self.db.stats.replica_blocked_fallbacks += 1;
                            primary_shards.push(s);
                            continue;
                        }
                        let node = self.db.shards[s].replicas[ri].node;
                        self.charge_rtt_to(node, OP_MSG_BYTES * 2)?;
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        let rows = self.db.shards[s].replicas[ri]
                            .applier
                            .storage
                            .index_lookup(index, prefix, snapshot)?;
                        out.extend(rows);
                    }
                    ReadTarget::Primary => primary_shards.push(s),
                }
            }
        } else {
            primary_shards = shards;
        }
        if !primary_shards.is_empty() {
            self.charge_scatter(&primary_shards, OP_MSG_BYTES * 2)?;
            self.db.stats.reads_on_primary += 1;
            for &s in &primary_shards {
                let rows = self.db.shards[s]
                    .storage
                    .index_lookup(index, prefix, snapshot)?;
                out.extend(rows);
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        // Overlay merge: recheck added/updated rows against the prefix.
        let overlay_keys: Vec<(RowKey, Option<Row>)> = self
            .overlay
            .iter()
            .filter(|((t, _), _)| *t == def.table)
            .map(|((_, k), r)| (k.clone(), r.clone()))
            .collect();
        for (key, row) in overlay_keys {
            out.retain(|(k, _)| *k != key);
            if let Some(r) = row {
                let matches = def
                    .columns
                    .iter()
                    .zip(prefix)
                    .all(|(&c, p)| r.0[c].key_cmp(p) == std::cmp::Ordering::Equal);
                if matches {
                    out.push((key, r));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn full_scan(&mut self, table: TableId) -> GdbResult<Vec<(RowKey, Row)>> {
        self.range_read(table, None, None)
    }

    fn read_for_update(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        if self.ror {
            return Err(GdbError::Execution(
                "FOR UPDATE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let shards: Vec<usize> = if matches!(schema.distribution, DistributionKind::Replicated) {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        self.charge_scatter(&shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
        }
        if let Some(hit) = self.overlay.get(&(table, key.clone())) {
            return Ok(hit.clone());
        }
        let s0 = shards[0];
        let vis = self.db.shards[s0].storage.read_newest(table, key)?;
        Ok(match vis {
            Some(v) => {
                if v.commit_vtime > self.now {
                    self.now = v.commit_vtime;
                }
                Some(v.row.clone())
            }
            None => None,
        })
    }

    fn insert(&mut self, table: TableId, row: Row) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "INSERT in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let mut row = row;
        schema.coerce_row(&mut row);
        schema.check_row(&row)?;
        let key = schema.primary_key_of(&row);
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, &key)]
        };
        // Duplicate check: overlay first, then committed state.
        match self.overlay.get(&(table, key.clone())) {
            Some(Some(_)) => return Err(GdbError::DuplicateKey(format!("{table} {key}"))),
            Some(None) => {} // deleted in this txn; reinsert ok
            None => {
                if self.db.shards[shards[0]]
                    .storage
                    .table(table)?
                    .exists_newest(&key)
                {
                    return Err(GdbError::DuplicateKey(format!("{table} {key}")));
                }
            }
        }
        self.charge_scatter(&shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, &key)?;
            self.stage_write(s, table, key.clone(), Some(row.clone()), true);
        }
        self.overlay.insert((table, key), Some(row));
        Ok(())
    }

    fn update(&mut self, table: TableId, key: &RowKey, new_row: Row) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "UPDATE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let mut new_row = new_row;
        schema.coerce_row(&mut new_row);
        schema.check_row(&new_row)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        self.charge_scatter(&shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
            self.stage_write(s, table, key.clone(), Some(new_row.clone()), false);
        }
        self.overlay.insert((table, key.clone()), Some(new_row));
        Ok(())
    }

    fn delete(&mut self, table: TableId, key: &RowKey) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "DELETE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        self.charge_scatter(&shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
            self.stage_write(s, table, key.clone(), None, false);
        }
        self.overlay.insert((table, key.clone()), None);
        Ok(())
    }

    fn apply_ddl(&mut self, _ddl: &BoundDdl) -> GdbResult<()> {
        Err(GdbError::Plan(
            "DDL cannot run inside a transaction; use Cluster::ddl".into(),
        ))
    }
}

impl<'a> TxnHandle<'a> {
    fn lock_key(&mut self, shard: usize, table: TableId, key: &RowKey) -> GdbResult<()> {
        loop {
            let outcome = self.db.shards[shard].storage.locks.acquire(
                table,
                key,
                self.txn,
                self.now,
                self.now + LOCK_LEASE,
            );
            match outcome {
                LockOutcome::Acquired => break,
                LockOutcome::WaitUntil(t) => {
                    self.db.stats.lock_waits += 1;
                    self.now = t;
                }
            }
        }
        self.locked.push((shard, table, key.clone()));
        Ok(())
    }

    fn stage_write(
        &mut self,
        shard: usize,
        table: TableId,
        key: RowKey,
        row: Option<Row>,
        is_insert: bool,
    ) {
        // PENDING_COMMIT is written before the transaction obtains its
        // invocation timestamp / first write lands (paper §IV-A).
        if !self.first_write.contains_key(&shard) {
            self.first_write.insert(shard, self.now);
            self.db.shards[shard]
                .log
                .append(self.now, self.txn, RedoPayload::PendingCommit);
        }
        let payload = match &row {
            Some(r) => {
                if is_insert {
                    RedoPayload::Insert {
                        table,
                        key: key.clone(),
                        row: r.clone(),
                    }
                } else {
                    RedoPayload::Update {
                        table,
                        key: key.clone(),
                        new_row: r.clone(),
                    }
                }
            }
            None => RedoPayload::Delete {
                table,
                key: key.clone(),
            },
        };
        self.db.shards[shard]
            .log
            .append(self.now, self.txn, payload);
        self.write_log.push(WriteOp {
            shard,
            table,
            key,
            row,
        });
        self.shards_written.insert(shard);
    }

    /// Estimated redo bytes for one shard's portion of the write set.
    fn redo_bytes(&self, shard: usize) -> u64 {
        let mut bytes = 64u64; // pending + commit framing
        for w in &self.write_log {
            if w.shard == shard {
                bytes += 48;
                if let Some(r) = &w.row {
                    bytes +=
                        r.0.iter()
                            .map(|d| match d {
                                Datum::Text(s) => s.len() as u64 + 2,
                                _ => 9,
                            })
                            .sum::<u64>();
                }
            }
        }
        bytes
    }

    /// Strongest replication mode demanded by the tables this transaction
    /// wrote on `shard` (per-table sync overrides, else the cluster mode).
    fn shard_replication_mode(&self, shard: usize) -> ReplicationMode {
        fn rank(m: ReplicationMode) -> u8 {
            match m {
                ReplicationMode::Async => 0,
                ReplicationMode::SyncLocalQuorum => 1,
                ReplicationMode::SyncRemoteQuorum { .. } => 2,
            }
        }
        let mut mode = self.db.config.replication;
        for w in &self.write_log {
            if w.shard != shard {
                continue;
            }
            if let Some(&m) = self.db.table_replication.get(&w.table) {
                if rank(m) > rank(mode) {
                    mode = m;
                }
            }
        }
        mode
    }

    /// Extra commit wait imposed by synchronous replication for one shard.
    fn sync_quorum_wait(&mut self, shard: usize, bytes: u64) -> GdbResult<SimDuration> {
        let mode = self.shard_replication_mode(shard);
        let primary = self.db.shards[shard].primary;
        let primary_region = self.db.shards[shard].region;
        match mode {
            ReplicationMode::Async => Ok(SimDuration::ZERO),
            ReplicationMode::SyncLocalQuorum => {
                // All same-region replicas; if none exist (geo placement),
                // the nearest replica stands in.
                let nodes: Vec<gdb_simnet::NetNodeId> = self.db.shards[shard]
                    .replicas
                    .iter()
                    .filter(|r| r.region == primary_region)
                    .map(|r| r.node)
                    .collect();
                let delays: Vec<Option<SimDuration>> = if nodes.is_empty() {
                    let mut ds: Vec<Option<SimDuration>> = Vec::new();
                    for r in 0..self.db.shards[shard].replicas.len() {
                        let node = self.db.shards[shard].replicas[r].node;
                        ds.push(self.db.topo.ship_rtt(primary, node, bytes));
                    }
                    let min = ds.iter().flatten().min().copied();
                    vec![min]
                } else {
                    nodes
                        .iter()
                        .map(|&n| self.db.topo.ship_rtt(primary, n, bytes))
                        .collect()
                };
                let q = delays.iter().flatten().count();
                quorum_wait(&delays, q.max(1)).ok_or_else(|| {
                    GdbError::NodeUnavailable("sync local quorum unreachable".into())
                })
            }
            ReplicationMode::SyncRemoteQuorum { quorum } => {
                let delays: Vec<Option<SimDuration>> = self.db.shards[shard]
                    .replicas
                    .iter()
                    .map(|r| (r.node, r.region))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .filter(|(_, region)| *region != primary_region || self.db.regions.len() == 1)
                    .map(|(n, _)| self.db.topo.ship_rtt(primary, n, bytes))
                    .collect();
                quorum_wait(&delays, quorum).ok_or_else(|| {
                    GdbError::NodeUnavailable("sync remote quorum unreachable".into())
                })
            }
        }
    }

    /// Commit the transaction; consumes the handle's buffered writes.
    ///
    /// On a commit-time failure before the commit record ships (quorum
    /// unreachable, GTM unreachable, straggler GTM abort), the transaction
    /// rolls back cleanly: locks release and ABORT records resolve any
    /// PREPARE / PENDING_COMMIT state already replicated — otherwise a
    /// fault hitting mid-commit would leave replica tuples locked forever.
    pub fn commit(mut self) -> GdbResult<TxnOutcome> {
        self.finished = true;
        match self.try_commit() {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                if !self.commit_appended {
                    self.abort_inner();
                }
                Err(e)
            }
        }
    }

    fn try_commit(&mut self) -> GdbResult<TxnOutcome> {
        let cn_node = self.db.cns[self.cn].node;
        let exec_done = self.now;

        if self.shards_written.is_empty() {
            // Pure read: nothing to make durable.
            self.record_phases(exec_done, None);
            return Ok(TxnOutcome {
                commit_ts: None,
                snapshot: self.snapshot,
                completed_at: self.now,
                latency: self.now.since(self.started_at),
                shards_written: vec![],
                used_replica: self.used_replica,
                aborted: false,
            });
        }

        let write_shards: Vec<usize> = self.shards_written.iter().copied().collect();
        let multi_shard = write_shards.len() > 1;

        // -- 2PC prepare round (multi-shard only): writes + PREPARE must be
        // durable (and quorum-replicated in sync modes) on every shard.
        let mut prepare_done = self.now;
        if multi_shard {
            for &s in &write_shards {
                let bytes = self.redo_bytes(s);
                let ow = self
                    .db
                    .topo
                    .one_way(cn_node, self.db.shards[s].primary, bytes)
                    .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
                let arrive = self.now + ow;
                self.db.shards[s]
                    .log
                    .append(arrive, self.txn, RedoPayload::Prepare);
                let q = self.sync_quorum_wait(s, bytes)?;
                let back = self
                    .db
                    .topo
                    .one_way(self.db.shards[s].primary, cn_node, OP_MSG_BYTES)
                    .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
                prepare_done = prepare_done.max(arrive + q + back);
            }
            self.now = prepare_done;
        }

        // -- Commit point: obtain the commit timestamp per mode.
        self.db.sync_cn_clock(self.cn, self.now);
        let plan = self.db.cns[self.cn].tm.plan_commit(self.now);
        let (commit_ts, clock_wait) = match plan {
            CommitPlan::GClockLocal { ts, commit_wait } => (ts, commit_wait),
            CommitPlan::ViaGtmCounter => {
                let rtt = self
                    .db
                    .topo
                    .rtt(cn_node, self.db.gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                // A straggler GTM transaction after the cluster moved to
                // GClock aborts here (paper §III-A); `commit` rolls back.
                self.db.gtm.commit_gtm()?
            }
            CommitPlan::ViaGtmDual { gclock_ts } => {
                let rtt = self
                    .db
                    .topo
                    .rtt(cn_node, self.db.gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                let ts = self.db.gtm.commit_dual(gclock_ts);
                let wait = self.db.cns[self.cn].tm.dual_post_wait(self.now, ts);
                (ts, wait)
            }
        };
        self.db.stats.commit_wait_total += clock_wait;

        // -- Commit phase: ship the commit record to each shard; versions
        // install and locks release at each shard's apply instant — but
        // never before the commit wait ends (Spanner-style: releasing a
        // hot-row lock early would let the next writer obtain a *smaller*
        // timestamp than this commit's).
        let wait_end = self.now + clock_wait;
        let mut ack = wait_end;
        for &s in &write_shards {
            let bytes = if multi_shard {
                OP_MSG_BYTES // writes shipped during prepare
            } else {
                self.redo_bytes(s)
            };
            let ow = self
                .db
                .topo
                .one_way(cn_node, self.db.shards[s].primary, bytes)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            // Single-shard sync replication waits at commit time. The
            // quorum check runs *before* the commit record is appended: if
            // the quorum is unreachable the whole transaction must roll
            // back, and a commit record already in the log would replicate
            // a commit the primary never installed.
            let q = if multi_shard {
                SimDuration::ZERO
            } else {
                self.sync_quorum_wait(s, bytes)?
            };
            let apply_at = self.now + ow;
            let visible_at = apply_at.max(wait_end);
            let payload = if multi_shard {
                RedoPayload::CommitPrepared { commit_ts }
            } else {
                RedoPayload::Commit { commit_ts }
            };
            self.commit_appended = true;
            self.db.shards[s].log.append(apply_at, self.txn, payload);
            let shard_ack = apply_at + q;
            let back = self
                .db
                .topo
                .one_way(self.db.shards[s].primary, cn_node, OP_MSG_BYTES)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            ack = ack.max(shard_ack + back);

            // Install the versions on the primary at the apply instant.
            for w in &self.write_log {
                if w.shard != s {
                    continue;
                }
                match &w.row {
                    Some(r) => self.db.shards[s].storage.apply_put(
                        w.table,
                        w.key.clone(),
                        r.clone(),
                        commit_ts,
                        visible_at,
                    )?,
                    None => self.db.shards[s].storage.apply_delete(
                        w.table,
                        w.key.clone(),
                        commit_ts,
                        visible_at,
                    )?,
                }
            }
            // Pin the locks to the visibility instant.
            for (ls, table, key) in &self.locked {
                if ls == &s {
                    self.db.shards[s]
                        .storage
                        .locks
                        .set_release(*table, key, self.txn, visible_at);
                }
            }
        }
        self.now = ack;

        self.db.cns[self.cn].tm.finish_commit(commit_ts);
        if self.db.cns[self.cn].tm.mode == TmMode::GClock {
            // Asynchronous observe so the GTM can later take over without
            // waiting (Fig. 3) and DUAL timestamps bridge (Listing 1).
            self.db.gtm.observe_commit(commit_ts);
        }
        self.record_phases(exec_done, Some((prepare_done, wait_end, ack)));

        Ok(TxnOutcome {
            commit_ts: Some(commit_ts),
            snapshot: self.snapshot,
            completed_at: self.now,
            latency: self.now.since(self.started_at),
            shards_written: write_shards,
            used_replica: self.used_replica,
            aborted: false,
        })
    }

    /// Record the per-phase latency breakdown (and, when tracing is on,
    /// the transaction's span tree). The phases tile the transaction:
    /// begin → snapshot acquire → execute, then for writes prepare →
    /// commit-wait → replication-ack. The commit-wait phase deliberately
    /// includes the commit-timestamp acquisition (a GTM round trip in
    /// centralized mode, the clock-uncertainty wait in GClock mode) —
    /// that sum is exactly the per-commit cost Fig. 6a contrasts.
    fn record_phases(&mut self, exec_done: SimTime, write: Option<(SimTime, SimTime, SimTime)>) {
        use gdb_txnmgr::metrics as tm;
        let m = &mut self.db.obs.metrics;
        m.observe(
            tm::PHASE_SNAPSHOT_US,
            self.begin_done.since(self.started_at),
        );
        m.observe(tm::PHASE_EXECUTE_US, exec_done.since(self.begin_done));
        if let Some((prepare_done, wait_end, ack)) = write {
            m.observe(tm::PHASE_PREPARE_US, prepare_done.since(exec_done));
            m.observe(tm::PHASE_COMMIT_WAIT_US, wait_end.since(prepare_done));
            m.observe(tm::PHASE_REPLICATION_ACK_US, ack.since(wait_end));
        }
        let t = &mut self.db.obs.tracer;
        if t.is_enabled() {
            let label = self.txn.0;
            let root = t.record(SpanKind::Txn, label, self.started_at, self.now);
            t.record_child(
                root,
                SpanKind::SnapshotAcquire,
                label,
                self.started_at,
                self.begin_done,
            );
            t.record_child(root, SpanKind::Execute, label, self.begin_done, exec_done);
            if let Some((prepare_done, wait_end, ack)) = write {
                t.record_child(root, SpanKind::Prepare, label, exec_done, prepare_done);
                t.record_child(root, SpanKind::CommitWait, label, prepare_done, wait_end);
                t.record_child(root, SpanKind::ReplicationAck, label, wait_end, ack);
            }
        }
    }

    fn abort_inner(&mut self) {
        for (shard, table, key) in std::mem::take(&mut self.locked) {
            self.db.shards[shard]
                .storage
                .locks
                .set_release(table, &key, self.txn, self.now);
        }
        for &s in &self.shards_written.clone() {
            self.db.shards[s]
                .log
                .append(self.now, self.txn, RedoPayload::Abort);
        }
        self.overlay.clear();
        self.write_log.clear();
        self.finished = true;
    }

    /// Abort the transaction: release locks, discard buffered writes, and
    /// emit ABORT records so replicas unlock the tuples. Returns the
    /// outcome so callers can record the abort in cluster statistics.
    pub fn abort(mut self) -> TxnOutcome {
        self.abort_inner();
        TxnOutcome {
            commit_ts: None,
            snapshot: self.snapshot,
            completed_at: self.now,
            latency: self.now.since(self.started_at),
            shards_written: vec![],
            used_replica: self.used_replica,
            aborted: true,
        }
    }
}
