//! Shared scenario/run configuration loading: the TOML-subset document
//! parser behind the scenario DSL, plus the duration and command-line
//! flag helpers that used to be duplicated between the `nemesis` CLI and
//! the figure binaries.
//!
//! The parser covers exactly the subset scenario files need — `[table]`
//! and `[[array-of-tables]]` headers, `key = value` entries with quoted
//! strings, integers, and booleans, `#` comments — with line numbers kept
//! for error reporting. Values stay typed but simple ([`ConfValue`]);
//! schema interpretation (known tables/keys, fault names) belongs to the
//! consumer, not the parser.

use gdb_simnet::SimDuration;
use std::path::PathBuf;

/// One parsed scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfValue {
    Str(String),
    Int(i64),
    Bool(bool),
}

impl ConfValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConfValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// How the value reads back in a message ("\"3s\"", "42", "true").
    pub fn render(&self) -> String {
        match self {
            ConfValue::Str(s) => format!("{s:?}"),
            ConfValue::Int(v) => v.to_string(),
            ConfValue::Bool(b) => b.to_string(),
        }
    }
}

/// One `[name]` or `[[name]]` table with its entries.
#[derive(Debug, Clone)]
pub struct ConfTable {
    pub name: String,
    /// True for `[[name]]` (array-of-tables) headers.
    pub array: bool,
    /// 1-based line of the header.
    pub line: usize,
    /// `(key, value, 1-based line)` in file order.
    pub entries: Vec<(String, ConfValue, usize)>,
}

impl ConfTable {
    pub fn get(&self, key: &str) -> Option<&ConfValue> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(ConfValue::as_str)
    }

    pub fn int_of(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(ConfValue::as_int)
    }

    pub fn bool_of(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(ConfValue::as_bool)
    }

    /// A duration entry: a quoted string (`"500ms"`, `"3s"`) or a bare
    /// integer in seconds.
    pub fn duration_of(&self, key: &str) -> Option<SimDuration> {
        match self.get(key)? {
            ConfValue::Str(s) => parse_duration(s),
            ConfValue::Int(v) if *v >= 0 => Some(SimDuration::from_secs(*v as u64)),
            _ => None,
        }
    }
}

/// A parsed document: tables in file order.
#[derive(Debug, Clone, Default)]
pub struct ConfDoc {
    pub tables: Vec<ConfTable>,
}

impl ConfDoc {
    /// The first (non-array) table of `name`, if any.
    pub fn table(&self, name: &str) -> Option<&ConfTable> {
        self.tables.iter().find(|t| t.name == name && !t.array)
    }

    /// Every `[[name]]` table, in file order.
    pub fn tables_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ConfTable> {
        self.tables
            .iter()
            .filter(move |t| t.name == name && t.array)
    }

    /// Parse a TOML-subset document. Errors carry the offending line.
    pub fn parse(text: &str) -> Result<ConfDoc, String> {
        let mut doc = ConfDoc::default();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| format!("line {lineno}: unterminated [[table]] header"))?
                    .trim();
                check_name(name, lineno)?;
                doc.tables.push(ConfTable {
                    name: name.to_string(),
                    array: true,
                    line: lineno,
                    entries: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated [table] header"))?
                    .trim();
                check_name(name, lineno)?;
                if doc.tables.iter().any(|t| t.name == name && !t.array) {
                    return Err(format!("line {lineno}: duplicate table [{name}]"));
                }
                doc.tables.push(ConfTable {
                    name: name.to_string(),
                    array: false,
                    line: lineno,
                    entries: Vec::new(),
                });
            } else {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
                let key = key.trim();
                check_name(key, lineno)?;
                let value = parse_value(value.trim(), lineno)?;
                let table = doc
                    .tables
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key {key:?} outside any [table]"))?;
                if table.entries.iter().any(|(k, _, _)| k == key) {
                    return Err(format!(
                        "line {lineno}: duplicate key {key:?} in [{}]",
                        table.name
                    ));
                }
                table.entries.push((key.to_string(), value, lineno));
            }
        }
        Ok(doc)
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(format!("line {lineno}: bad name {name:?}"))
    }
}

fn parse_value(v: &str, lineno: usize) -> Result<ConfValue, String> {
    if let Some(rest) = v.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!(
                "line {lineno}: escapes and embedded quotes are not supported"
            ));
        }
        return Ok(ConfValue::Str(inner.to_string()));
    }
    match v {
        "true" => return Ok(ConfValue::Bool(true)),
        "false" => return Ok(ConfValue::Bool(false)),
        _ => {}
    }
    v.parse::<i64>()
        .map(ConfValue::Int)
        .map_err(|_| format!("line {lineno}: unrecognized value {v:?}"))
}

/// Parse a human duration: `"250ms"`, `"3s"`, or a bare integer in
/// seconds. (Shared by the nemesis CLI, the shell, and scenario files.)
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(SimDuration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.parse::<u64>().ok().map(SimDuration::from_secs);
    }
    s.parse::<u64>().ok().map(SimDuration::from_secs)
}

/// The value following `flag` in `args`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The path following `flag` on this process's command line (the shared
/// `--json` / `--trace` convention of the figure binaries).
pub fn cli_path(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    flag_value(&args, flag).map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# a scenario
[scenario]
name = "migrate-under-fire"   # trailing comment
seed = 7
strict = true

[workload]
warmup = "500ms"
duration = "3s"
terminals = 8

[[fault]]
at = "300ms"
kind = "crash-primary"
shard = 0

[[fault]]
at = "600ms"
kind = "restart-primary"
shard = 0
"#;

    #[test]
    fn parses_tables_arrays_and_values() {
        let doc = ConfDoc::parse(DOC).unwrap();
        let scn = doc.table("scenario").unwrap();
        assert_eq!(scn.str_of("name"), Some("migrate-under-fire"));
        assert_eq!(scn.int_of("seed"), Some(7));
        assert_eq!(scn.bool_of("strict"), Some(true));
        let wl = doc.table("workload").unwrap();
        assert_eq!(
            wl.duration_of("warmup"),
            Some(SimDuration::from_millis(500))
        );
        assert_eq!(wl.duration_of("duration"), Some(SimDuration::from_secs(3)));
        let faults: Vec<_> = doc.tables_named("fault").collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].str_of("kind"), Some("crash-primary"));
        assert_eq!(
            faults[1].duration_of("at"),
            Some(SimDuration::from_millis(600))
        );
        assert!(doc.table("fault").is_none(), "array tables are not plain");
    }

    #[test]
    fn rejects_malformed_documents() {
        for (bad, what) in [
            ("key = 1", "outside any"),
            ("[t]\nkey 1", "key = value"),
            ("[t]\nkey = \"open", "unterminated string"),
            ("[t]\nkey = 1.5", "unrecognized value"),
            ("[t]\nkey = \"a\\\"b\"", "not supported"),
            ("[t]\n[t]", "duplicate table"),
            ("[t]\nk = 1\nk = 2", "duplicate key"),
            ("[bad name]", "bad name"),
            ("[[t]\nk = 1", "unterminated"),
        ] {
            let err = ConfDoc::parse(bad).unwrap_err();
            assert!(err.contains(what), "{bad:?}: {err}");
        }
    }

    #[test]
    fn duration_and_flag_helpers() {
        assert_eq!(parse_duration("250ms"), Some(SimDuration::from_millis(250)));
        assert_eq!(parse_duration("3s"), Some(SimDuration::from_secs(3)));
        assert_eq!(parse_duration("4"), Some(SimDuration::from_secs(4)));
        assert_eq!(parse_duration("fast"), None);
        let args: Vec<String> = ["x", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--json"), Some("out.json"));
        assert_eq!(flag_value(&args, "--trace"), None);
    }
}
