//! Metric names owned by the network simulator.

/// Messages delivered (all links).
pub const MSGS: &str = "simnet.msgs";
/// Payload bytes delivered (all links).
pub const BYTES: &str = "simnet.bytes";
/// Messages that crossed a region boundary.
pub const CROSS_REGION_MSGS: &str = "simnet.cross_region.msgs";
/// Payload bytes that crossed a region boundary.
pub const CROSS_REGION_BYTES: &str = "simnet.cross_region.bytes";
