//! The invariant oracle: probe transactions and consistency checkers.
//!
//! While a fault plan executes, the oracle drives small probe
//! transactions against a dedicated `chaos_probe` table and checks, on
//! every observation:
//!
//! * **External consistency** — if write `p` was acknowledged before
//!   write `w` started (in virtual real time), then `p.commit_ts <
//!   w.commit_ts`.
//! * **RCP monotonicity** — no CN's adopted RCP ever moves backwards.
//! * **RCP bound** — a region's computed RCP never exceeds the largest
//!   max-applied-commit-ts among that region's replicas.
//! * **Replica-read containment** — a read served by replicas runs at
//!   exactly the CN's RCP snapshot, never newer.
//! * **Read correctness** — every read returns the probe value written
//!   by the latest write with `commit_ts <= snapshot` (reads are checked
//!   against the full write history, so a lost or resurrected version is
//!   caught the moment any probe observes it).
//! * **Durability** (strict mode, i.e. synchronous replication) — the
//!   per-key value sequence in commit-timestamp order is exactly
//!   `1, 2, 3, ...`: no acknowledged write is ever lost, not even across
//!   a primary failover.

use crate::trace::TraceHandle;
use globaldb::{Cluster, Datum, GlobalDb, Prepared, SimDuration, SimTime, Timestamp};
use std::cell::RefCell;
use std::rc::Rc;

/// One acknowledged probe write.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    pub key: i64,
    pub value: i64,
    pub started_at: SimTime,
    pub acked_at: SimTime,
    pub commit_ts: Timestamp,
}

/// Everything the oracle accumulates over a run.
#[derive(Debug, Default)]
pub struct OracleState {
    pub history: Vec<WriteRecord>,
    pub violations: Vec<String>,
    /// Per-CN last observed RCP (monotonicity witness).
    last_rcp: Vec<Timestamp>,
    pub writes_committed: u64,
    /// Probe writes rejected with a retryable error (expected under
    /// faults: CN down, shard unreachable, lock conflict).
    pub writes_rejected: u64,
    pub reads_checked: u64,
    pub reads_rejected: u64,
    pub rcp_checks: u64,
}

impl OracleState {
    fn violation(&mut self, trace: &TraceHandle, at: SimTime, msg: String) {
        trace.borrow_mut().record(at, format!("VIOLATION {msg}"));
        self.violations.push(msg);
    }
}

pub type OracleHandle = Rc<RefCell<OracleState>>;

/// The oracle: probe statements plus shared observation state.
pub struct Oracle {
    pub state: OracleHandle,
    keys: i64,
    select_v: Rc<Prepared>,
    /// Locking variant for the write probe: without `FOR UPDATE` the
    /// read-modify-write would be two steps under snapshot isolation and
    /// two overlapping probes could both increment the same base value (a
    /// plain lost update, not a system fault).
    select_v_locked: Rc<Prepared>,
    update_v: Rc<Prepared>,
}

impl Oracle {
    /// Create the probe table, seed `keys` rows (value 0), and record
    /// their insertion in the write history.
    pub fn install(cluster: &mut Cluster, keys: i64) -> globaldb::GdbResult<Oracle> {
        cluster.ddl(
            "CREATE TABLE chaos_probe (id INT NOT NULL, v INT, \
             PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
        )?;
        let insert = cluster.prepare("INSERT INTO chaos_probe VALUES (?, ?)")?;
        let select_v = cluster.prepare("SELECT v FROM chaos_probe WHERE id = ?")?;
        let select_v_locked =
            cluster.prepare("SELECT v FROM chaos_probe WHERE id = ? FOR UPDATE")?;
        let update_v = cluster.prepare("UPDATE chaos_probe SET v = ? WHERE id = ?")?;

        let mut history = Vec::new();
        for k in 0..keys {
            let at = cluster.now();
            let (_, outcome) = cluster.run_transaction(0, at, false, true, |t| {
                t.execute(&insert, &[Datum::Int(k), Datum::Int(0)])
            })?;
            history.push(WriteRecord {
                key: k,
                value: 0,
                started_at: at,
                acked_at: outcome.completed_at,
                commit_ts: outcome.commit_ts.expect("probe insert commits"),
            });
        }
        let state = Rc::new(RefCell::new(OracleState {
            history,
            last_rcp: vec![Timestamp::ZERO; cluster.db.cns.len()],
            ..OracleState::default()
        }));
        Ok(Oracle {
            state,
            keys,
            select_v: Rc::new(select_v),
            select_v_locked: Rc::new(select_v_locked),
            update_v: Rc::new(update_v),
        })
    }

    /// Schedule write and read probes every `interval` over
    /// `[start, end)`. Probes run as ordinary simulation events, so they
    /// interleave with the fault plan and the foreground workload.
    pub fn schedule(
        &self,
        cluster: &mut Cluster,
        start: SimTime,
        end: SimTime,
        interval: SimDuration,
        trace: &TraceHandle,
    ) {
        let half = SimDuration::from_nanos(interval.as_nanos() / 2);
        let mut t = start;
        let mut tick: u64 = 0;
        while t < end {
            let key = (tick as i64) % self.keys;
            let (state, sel, upd, tr) = (
                Rc::clone(&self.state),
                Rc::clone(&self.select_v_locked),
                Rc::clone(&self.update_v),
                Rc::clone(trace),
            );
            cluster.sim.schedule_at(t, move |w, sim| {
                write_probe(w, sim.now(), key, tick, &state, &sel, &upd, &tr);
            });
            let (state, sel, tr) = (
                Rc::clone(&self.state),
                Rc::clone(&self.select_v),
                Rc::clone(trace),
            );
            cluster.sim.schedule_at(t + half, move |w, sim| {
                rcp_probe(w, sim.now(), &state, &tr);
                read_probe(w, sim.now(), key, tick, &state, &sel, &tr);
            });
            t += interval;
            tick += 1;
        }
    }

    /// Post-run checks, after every fault healed and the cluster idled:
    /// read back every key from the primary and (in strict mode) verify
    /// both the final values and the full per-key value sequences.
    pub fn final_check(&self, cluster: &mut Cluster, strict: bool) {
        for k in 0..self.keys {
            let at = cluster.now();
            let sel = Rc::clone(&self.select_v);
            // A read-write transaction reads the freshest primary state.
            let observed = cluster
                .run_transaction(0, at, false, true, |t| {
                    t.execute(&sel, &[Datum::Int(k)]).map(|o| o.scalar_int())
                })
                .map(|(v, _)| v);
            let state = &mut *self.state.borrow_mut();
            let last = state
                .history
                .iter()
                .filter(|r| r.key == k)
                .max_by_key(|r| r.commit_ts)
                .map(|r| r.value);
            match observed {
                Ok(v) if strict && v != last => {
                    state.violations.push(format!(
                        "durability: key {k} final value {v:?}, last acked write {last:?}"
                    ));
                }
                Ok(_) => {}
                Err(e) => state
                    .violations
                    .push(format!("final read of key {k} failed: {e}")),
            }
        }
        if strict {
            let state = &mut *self.state.borrow_mut();
            for k in 0..self.keys {
                let mut vals: Vec<(Timestamp, i64)> = state
                    .history
                    .iter()
                    .filter(|r| r.key == k)
                    .map(|r| (r.commit_ts, r.value))
                    .collect();
                vals.sort();
                for (i, w) in vals.iter().enumerate() {
                    if w.1 != i as i64 {
                        state.violations.push(format!(
                            "durability: key {k} write #{i} has value {} (an acked \
                             write was lost or duplicated); sequence: {vals:?}",
                            w.1
                        ));
                        break;
                    }
                }
            }
        }
    }
}

fn alive_cns(db: &GlobalDb) -> Vec<usize> {
    (0..db.cns.len())
        .filter(|&i| !db.topo.is_node_down(db.cns[i].node))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn write_probe(
    db: &mut GlobalDb,
    now: SimTime,
    key: i64,
    tick: u64,
    state: &OracleHandle,
    sel: &Prepared,
    upd: &Prepared,
    trace: &TraceHandle,
) {
    let alive = alive_cns(db);
    let Some(&cn) = alive.get(tick as usize % alive.len().max(1)) else {
        return;
    };
    let res = db.run_transaction_at(cn, now, false, true, |t| {
        let cur = t
            .execute(sel, &[Datum::Int(key)])?
            .scalar_int()
            .unwrap_or(0);
        let next = cur + 1;
        t.execute(upd, &[Datum::Int(next), Datum::Int(key)])?;
        Ok(next)
    });
    let state = &mut *state.borrow_mut();
    match res {
        Ok((value, outcome)) => {
            let commit_ts = outcome.commit_ts.expect("probe write commits");
            // External consistency: every write acknowledged before this
            // one *started* must have a strictly smaller commit ts.
            for p in &state.history {
                if p.acked_at <= now && p.commit_ts >= commit_ts {
                    let msg = format!(
                        "external consistency: write(key={key}, ts={commit_ts:?}) started at \
                         {now} after write(key={}, ts={:?}) was acked at {}",
                        p.key, p.commit_ts, p.acked_at
                    );
                    state.violation(trace, now, msg);
                    break;
                }
            }
            state.history.push(WriteRecord {
                key,
                value,
                started_at: now,
                acked_at: outcome.completed_at,
                commit_ts,
            });
            state.writes_committed += 1;
        }
        Err(e) if e.is_retryable() => state.writes_rejected += 1,
        Err(e) => {
            let msg = format!("probe write(key={key}) failed non-retryably: {e}");
            state.violation(trace, now, msg);
        }
    }
}

fn read_probe(
    db: &mut GlobalDb,
    now: SimTime,
    key: i64,
    tick: u64,
    state: &OracleHandle,
    sel: &Prepared,
    trace: &TraceHandle,
) {
    let alive = alive_cns(db);
    // Read from the opposite end of the CN list so reads and writes keep
    // crossing CN (and usually region) boundaries.
    let Some(&cn) = alive.get(
        alive
            .len()
            .wrapping_sub(1 + tick as usize % alive.len().max(1)),
    ) else {
        return;
    };
    let rcp_before = db.cns[cn].rcp;
    let res = db.run_transaction_at(cn, now, true, true, |t| {
        Ok(t.execute(sel, &[Datum::Int(key)])?.scalar_int())
    });
    let state = &mut *state.borrow_mut();
    match res {
        Ok((observed, outcome)) => {
            state.reads_checked += 1;
            if outcome.used_replica && outcome.snapshot != rcp_before {
                let msg = format!(
                    "replica read at snapshot {:?} != CN {cn} RCP {rcp_before:?}",
                    outcome.snapshot
                );
                state.violation(trace, now, msg);
            }
            let expected = state
                .history
                .iter()
                .filter(|r| r.key == key && r.commit_ts <= outcome.snapshot)
                .max_by_key(|r| r.commit_ts)
                .map(|r| r.value);
            if observed != expected {
                let msg = format!(
                    "read(key={key}) at snapshot {:?} returned {observed:?}, history says \
                     {expected:?} (replica={})",
                    outcome.snapshot, outcome.used_replica
                );
                state.violation(trace, now, msg);
            }
        }
        Err(e) if e.is_retryable() => state.reads_rejected += 1,
        Err(e) => {
            let msg = format!("probe read(key={key}) failed non-retryably: {e}");
            state.violation(trace, now, msg);
        }
    }
}

fn rcp_probe(db: &mut GlobalDb, now: SimTime, state: &OracleHandle, trace: &TraceHandle) {
    let state = &mut *state.borrow_mut();
    state.rcp_checks += 1;
    for (i, cn) in db.cns.iter().enumerate() {
        if cn.rcp < state.last_rcp[i] {
            let msg = format!(
                "RCP moved backwards on CN {i}: {:?} -> {:?}",
                state.last_rcp[i], cn.rcp
            );
            state.violation(trace, now, msg);
        }
        state.last_rcp[i] = cn.rcp;
    }
    for (r, &region) in db.regions.iter().enumerate() {
        let computed = db.rcp[r].current();
        if computed == Timestamp::ZERO {
            continue; // group freshly rebuilt; nothing reported yet
        }
        let applied_max = db
            .shards
            .iter()
            .flat_map(|s| s.replicas.iter())
            .filter(|rep| rep.region == region)
            .map(|rep| rep.applier.max_commit_ts())
            .max();
        if let Some(m) = applied_max {
            if computed > m {
                let msg = format!(
                    "region {r} RCP {computed:?} exceeds its replicas' max applied \
                     commit ts {m:?}"
                );
                state.violation(trace, now, msg);
            }
        }
    }
}
