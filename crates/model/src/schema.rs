//! Table schemas and distribution metadata.

use crate::datum::{DataType, Datum};
use crate::error::{GdbError, GdbResult};
use crate::ids::{ShardId, TableId};
use crate::row::{Row, RowKey};
use serde::{Deserialize, Serialize};

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
    /// Scale for `Decimal` columns (digits after the point); 0 otherwise.
    pub scale: u8,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
            scale: 0,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    pub fn with_scale(mut self, scale: u8) -> Self {
        self.scale = scale;
        self
    }
}

/// How a table's rows are mapped to shards (paper §II-A: "DNs host portions
/// of tables based on the distribution key's hash value or range").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionKind {
    /// Hash the distribution-key columns; shard = hash % shard_count.
    Hash,
    /// Range-partition on the first distribution-key column (must be Int);
    /// `split_points[i]` is the first value of shard `i + 1`.
    Range { split_points: Vec<i64> },
    /// Small table replicated to every shard (TPC-C `ITEM`).
    Replicated,
}

/// Full schema of one table, including key and distribution metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Column indices forming the primary key, in key order.
    pub primary_key: Vec<usize>,
    /// Column indices forming the distribution key (usually a PK prefix).
    pub distribution_key: Vec<usize>,
    pub distribution: DistributionKind,
}

impl TableSchema {
    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Extract the primary-key value from a full row.
    pub fn primary_key_of(&self, row: &Row) -> RowKey {
        RowKey(self.primary_key.iter().map(|&i| row.0[i].clone()).collect())
    }

    /// Extract the distribution-key value from a full row.
    pub fn distribution_key_of(&self, row: &Row) -> RowKey {
        RowKey(
            self.distribution_key
                .iter()
                .map(|&i| row.0[i].clone())
                .collect(),
        )
    }

    /// Map a row to its shard given the cluster's shard count.
    pub fn shard_of_row(&self, row: &Row, shard_count: u16) -> ShardId {
        self.shard_of_key(&self.distribution_key_of(row), shard_count)
    }

    /// Map a *primary-key* value to its shard by extracting the
    /// distribution-key columns from it (requires the distribution key to
    /// be a subset of the primary key, which the schema builder enforces).
    pub fn shard_of_pk(&self, pk: &RowKey, shard_count: u16) -> ShardId {
        if matches!(self.distribution, DistributionKind::Replicated) {
            return ShardId(0);
        }
        let vals: Vec<Datum> = self
            .distribution_key
            .iter()
            .map(|dc| {
                let pos = self
                    .primary_key
                    .iter()
                    .position(|p| p == dc)
                    .expect("distribution key must be a subset of the primary key");
                pk.0[pos].clone()
            })
            .collect();
        self.shard_of_key(&RowKey(vals), shard_count)
    }

    /// Map a distribution-key value to its shard.
    ///
    /// For `Replicated` tables any shard holds the row; we return shard 0 as
    /// the canonical *write* target (writers must fan out to all shards —
    /// the executor handles that).
    pub fn shard_of_key(&self, key: &RowKey, shard_count: u16) -> ShardId {
        assert!(shard_count > 0);
        match &self.distribution {
            DistributionKind::Hash => ShardId((key.stable_hash() % shard_count as u64) as u16),
            DistributionKind::Range { split_points } => {
                let v = match key.0.first() {
                    Some(Datum::Int(v)) => *v,
                    _ => 0,
                };
                let idx = split_points.partition_point(|&p| p <= v);
                ShardId((idx as u16).min(shard_count - 1))
            }
            DistributionKind::Replicated => ShardId(0),
        }
    }

    /// Coerce a row in place: integer values destined for Decimal columns
    /// become decimals (SQL integer literals assigned to money columns).
    pub fn coerce_row(&self, row: &mut Row) {
        for (col, val) in self.columns.iter().zip(row.0.iter_mut()) {
            if col.data_type == DataType::Decimal {
                if let Datum::Int(v) = val {
                    *val = Datum::Decimal(*v);
                }
            }
        }
    }

    /// Validate that a row matches the schema (arity, types, nullability).
    pub fn check_row(&self, row: &Row) -> GdbResult<()> {
        if row.len() != self.columns.len() {
            return Err(GdbError::Schema(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(row.0.iter()) {
            if val.is_null() {
                if !col.nullable {
                    return Err(GdbError::Schema(format!("column {} is NOT NULL", col.name)));
                }
                continue;
            }
            let vt = val.data_type().expect("non-null datum has a type");
            let ok =
                vt == col.data_type || (vt == DataType::Int && col.data_type == DataType::Decimal);
            if !ok {
                return Err(GdbError::Schema(format!(
                    "column {}: expected {:?}, got {:?}",
                    col.name, col.data_type, vt
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`TableSchema`] used by the catalog and tests.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Vec<String>,
    distribution_key: Vec<String>,
    distribution: DistributionKind,
}

impl SchemaBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            distribution_key: Vec::new(),
            distribution: DistributionKind::Hash,
        }
    }

    pub fn column(mut self, col: ColumnDef) -> Self {
        self.columns.push(col);
        self
    }

    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn distribute_by(mut self, cols: &[&str], kind: DistributionKind) -> Self {
        self.distribution_key = cols.iter().map(|s| s.to_string()).collect();
        self.distribution = kind;
        self
    }

    pub fn build(self, id: TableId) -> GdbResult<TableSchema> {
        let resolve = |names: &[String]| -> GdbResult<Vec<usize>> {
            names
                .iter()
                .map(|n| {
                    self.columns
                        .iter()
                        .position(|c| &c.name == n)
                        .ok_or_else(|| GdbError::Schema(format!("unknown column {n}")))
                })
                .collect()
        };
        if self.primary_key.is_empty() {
            return Err(GdbError::Schema(format!(
                "table {} has no primary key",
                self.name
            )));
        }
        let primary_key = resolve(&self.primary_key)?;
        let distribution_key = if self.distribution_key.is_empty() {
            primary_key.clone()
        } else {
            resolve(&self.distribution_key)?
        };
        // Point operations locate shards from the primary key alone, so
        // the distribution key must be a subset of it.
        if !matches!(self.distribution, DistributionKind::Replicated) {
            for dc in &distribution_key {
                if !primary_key.contains(dc) {
                    return Err(GdbError::Schema(format!(
                        "table {}: distribution key column {} must be part of the primary key",
                        self.name, self.columns[*dc].name
                    )));
                }
            }
        }
        Ok(TableSchema {
            id,
            name: self.name,
            columns: self.columns,
            primary_key,
            distribution_key,
            distribution: self.distribution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        SchemaBuilder::new("t")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("name", DataType::Text))
            .column(ColumnDef::new("bal", DataType::Decimal).with_scale(2))
            .primary_key(&["id"])
            .build(TableId(1))
            .unwrap()
    }

    #[test]
    fn distribution_key_defaults_to_pk() {
        let s = sample_schema();
        assert_eq!(s.distribution_key, s.primary_key);
    }

    #[test]
    fn hash_distribution_is_stable() {
        let s = sample_schema();
        let row = Row::new(vec![Datum::Int(42), Datum::Null, Datum::Decimal(0)]);
        let a = s.shard_of_row(&row, 6);
        let b = s.shard_of_row(&row, 6);
        assert_eq!(a, b);
        assert!(a.0 < 6);
    }

    #[test]
    fn range_distribution_partitions() {
        let mut s = sample_schema();
        s.distribution = DistributionKind::Range {
            split_points: vec![100, 200],
        };
        assert_eq!(s.shard_of_key(&RowKey::single(50i64), 3), ShardId(0));
        assert_eq!(s.shard_of_key(&RowKey::single(100i64), 3), ShardId(1));
        assert_eq!(s.shard_of_key(&RowKey::single(199i64), 3), ShardId(1));
        assert_eq!(s.shard_of_key(&RowKey::single(250i64), 3), ShardId(2));
    }

    #[test]
    fn range_distribution_clamps_to_shard_count() {
        let mut s = sample_schema();
        s.distribution = DistributionKind::Range {
            split_points: vec![10, 20, 30],
        };
        // 4 ranges but only 2 shards: high ranges clamp to the last shard.
        assert_eq!(s.shard_of_key(&RowKey::single(35i64), 2), ShardId(1));
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = sample_schema();
        assert!(s
            .check_row(&Row::new(vec![
                Datum::Int(1),
                Datum::Text("x".into()),
                Datum::Decimal(5)
            ]))
            .is_ok());
        // Int coerces to Decimal.
        assert!(s
            .check_row(&Row::new(vec![Datum::Int(1), Datum::Null, Datum::Int(5)]))
            .is_ok());
        assert!(s.check_row(&Row::new(vec![Datum::Int(1)])).is_err());
        assert!(s
            .check_row(&Row::new(vec![Datum::Null, Datum::Null, Datum::Null]))
            .is_err());
        assert!(s
            .check_row(&Row::new(vec![
                Datum::Text("bad".into()),
                Datum::Null,
                Datum::Null
            ]))
            .is_err());
    }

    #[test]
    fn builder_rejects_unknown_and_missing_keys() {
        assert!(SchemaBuilder::new("t")
            .column(ColumnDef::new("a", DataType::Int))
            .primary_key(&["nope"])
            .build(TableId(1))
            .is_err());
        assert!(SchemaBuilder::new("t")
            .column(ColumnDef::new("a", DataType::Int))
            .build(TableId(1))
            .is_err());
    }
}
