//! Seam discipline: real transports must never call the simulation's
//! RNG-drawing delivery primitives.
//!
//! `Topology::one_way` (and the helpers built on it) draws jitter from
//! the topology's seeded RNG. If a real transport ever called it — even
//! once, even on an error path — installing that transport would
//! perturb the RNG stream and silently break the committed-trace
//! guarantee for every sim run sharing the process. Real transports may
//! only use the RNG-free fault/accounting surface: `deliverable`,
//! `injected_delay`, `record_delivery`.

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn realnet_never_calls_rng_drawing_delivery_primitives() {
    let banned = [
        "topo.one_way(",
        "topo.rtt(",
        "topo.ship_rtt(",
        "topo.charge_bytes(",
        ".nominal_rtt(",
    ];
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    rust_sources(&src, &mut files);
    assert!(files.len() >= 8, "unexpectedly few realnet sources");
    let mut offenders = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read source");
        // Whitespace-stripped so `topo\n  .one_way(` can't slip through.
        let squeezed: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in banned {
            if squeezed.contains(pat) {
                offenders.push(format!("{}: {pat}", path.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "sim-only delivery primitives called from realnet:\n{}",
        offenders.join("\n")
    );
}
