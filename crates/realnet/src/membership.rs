//! Static-config membership: which silo hosts which nodes.
//!
//! A *silo* is one real execution unit — a thread (and, for TCP, a
//! listener) hosting every role the topology co-locates on one host:
//! that host's shard primaries/replicas, possibly the GTM, possibly CNs.
//! Membership is derived once from the already-built [`Topology`] (the
//! cluster config placed every node on a host) and never changes at
//! runtime: the reproduction's clusters are static, so a config-file
//! provider is the honest model — no gossip, no directory service.

use gdb_simnet::{NetNodeId, NodeKind, Topology};
use std::collections::BTreeMap;

/// One silo: a host and every node placed on it, in node-id order.
#[derive(Debug, Clone)]
pub struct SiloSpec {
    pub host: u16,
    pub nodes: Vec<(NetNodeId, NodeKind)>,
}

/// The full, immutable silo layout of a cluster.
#[derive(Debug, Clone)]
pub struct StaticMembership {
    silos: Vec<SiloSpec>,
    /// Silo index per node id (dense: node ids are dense in `Topology`).
    silo_of_node: Vec<usize>,
}

impl StaticMembership {
    /// Group every node of `topo` by host. Host ids become silo indexes
    /// in ascending host order.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut by_host: BTreeMap<u16, Vec<(NetNodeId, NodeKind)>> = BTreeMap::new();
        for i in 0..topo.node_count() {
            let n = NetNodeId(i as u32);
            by_host
                .entry(topo.node_host(n))
                .or_default()
                .push((n, topo.node_kind(n)));
        }
        let silos: Vec<SiloSpec> = by_host
            .into_iter()
            .map(|(host, nodes)| SiloSpec { host, nodes })
            .collect();
        let mut silo_of_node = vec![0usize; topo.node_count()];
        for (idx, silo) in silos.iter().enumerate() {
            for (n, _) in &silo.nodes {
                silo_of_node[n.0 as usize] = idx;
            }
        }
        StaticMembership {
            silos,
            silo_of_node,
        }
    }

    pub fn silos(&self) -> &[SiloSpec] {
        &self.silos
    }

    pub fn silo_count(&self) -> usize {
        self.silos.len()
    }

    /// The silo index hosting `node`.
    pub fn silo_of(&self, node: NetNodeId) -> usize {
        self.silo_of_node[node.0 as usize]
    }

    /// The host id of a silo (for fault hooks keyed by host pair).
    pub fn host_of_silo(&self, silo: usize) -> u16 {
        self.silos[silo].host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globaldb::ClusterConfig;

    #[test]
    fn three_city_cluster_forms_three_silos_covering_every_node() {
        let (topo, _) = ClusterConfig::globaldb_three_city().build_topology();
        let m = StaticMembership::from_topology(&topo);
        assert_eq!(m.silo_count(), 3, "one silo per host");
        let total: usize = m.silos().iter().map(|s| s.nodes.len()).sum();
        assert_eq!(total, topo.node_count(), "every node lives in a silo");
        for silo in m.silos() {
            for &(n, kind) in &silo.nodes {
                assert_eq!(topo.node_host(n), silo.host);
                assert_eq!(topo.node_kind(n), kind);
                assert_eq!(m.host_of_silo(m.silo_of(n)), silo.host);
            }
        }
        // The GTM landed somewhere, exactly once.
        let gtms: usize = m
            .silos()
            .iter()
            .flat_map(|s| &s.nodes)
            .filter(|(_, k)| *k == NodeKind::GtmServer)
            .count();
        assert_eq!(gtms, 1);
    }
}
