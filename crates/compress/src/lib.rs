//! LZ4-block-format-style compression, implemented from scratch.
//!
//! GaussDB-Global compresses redo logs with LZ4 before shipping them across
//! regions (paper §V-A). This crate provides a compatible-in-spirit LZ77
//! codec using the LZ4 block layout (token byte, literal run, little-endian
//! 16-bit match offset, extension bytes), tuned for the highly repetitive
//! byte patterns of physical redo logs.
//!
//! The format produced here is *self-contained*, not interoperable with
//! reference LZ4 (we prepend the decompressed length as a varint so the
//! decoder can pre-allocate); everything else follows the block spec:
//!
//! ```text
//! [uncompressed-len varint] then sequences of:
//!   token: (literal_len:4 | match_len-4:4)
//!   [literal_len 255-extension bytes]*  literals
//!   offset: u16 LE (1..=65535)          — absent in the final sequence
//!   [match_len 255-extension bytes]*
//! ```

pub mod lz;

pub use lz::{compress, decompress, CompressError};

/// Which codec a replication channel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Ship raw bytes.
    #[default]
    None,
    /// LZ4-style compression (paper's configuration).
    Lz4,
}

impl Codec {
    /// Encode `data`, returning the wire bytes.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Lz4 => compress(data),
        }
    }

    /// Decode wire bytes produced by [`Codec::encode`].
    pub fn decode(&self, wire: &[u8]) -> Result<Vec<u8>, CompressError> {
        match self {
            Codec::None => Ok(wire.to_vec()),
            Codec::Lz4 => decompress(wire),
        }
    }

    /// The on-wire size of `data` under this codec (for network cost
    /// modelling without materializing the encoding twice).
    pub fn wire_size(&self, data: &[u8]) -> usize {
        match self {
            Codec::None => data.len(),
            Codec::Lz4 => compress(data).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_none_is_identity() {
        let data = b"hello world".to_vec();
        let wire = Codec::None.encode(&data);
        assert_eq!(wire, data);
        assert_eq!(Codec::None.decode(&wire).unwrap(), data);
    }

    #[test]
    fn codec_lz4_roundtrip_and_shrinks_redundancy() {
        let data: Vec<u8> = b"redo-record:".iter().cycle().take(4096).copied().collect();
        let wire = Codec::Lz4.encode(&data);
        assert!(
            wire.len() < data.len() / 4,
            "got {} of {}",
            wire.len(),
            data.len()
        );
        assert_eq!(Codec::Lz4.decode(&wire).unwrap(), data);
        assert_eq!(Codec::Lz4.wire_size(&data), wire.len());
    }
}
