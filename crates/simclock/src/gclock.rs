//! The GClock time source and its timestamp protocol (paper §III).
//!
//! A transaction gets its GClock timestamp from its computing node's clock:
//! `TS_GClock = T_clock + T_err`. The protocol then requires:
//!
//! * **Invocation**: wait until `T_clock > TS_GClock`, then begin.
//!   (Single-shard queries bypass this wait by reusing the node's last
//!   committed transaction timestamp.)
//! * **Commit**: wait until `T_clock > TS_GClock`, then commit.
//!
//! Following this protocol satisfies the paper's visibility requirements
//! R.1 / R.2 and yields external serializability.

use crate::drift::DriftClock;
use gdb_model::{Timestamp, TimestampBound};
use gdb_simnet::{SimDuration, SimTime};

/// Configuration of the per-node GClock (paper §III defaults).
#[derive(Debug, Clone, Copy)]
pub struct GClockConfig {
    /// How often nodes synchronize with the regional time device (1 ms).
    pub sync_interval: SimDuration,
    /// Observed sync round trip (≤ 60 µs as a TCP round trip).
    pub sync_rtt: SimDuration,
    /// Assumed drift bound (200 PPM).
    pub max_drift_ppm: f64,
}

impl Default for GClockConfig {
    fn default() -> Self {
        GClockConfig {
            sync_interval: SimDuration::from_millis(1),
            sync_rtt: SimDuration::from_micros(60),
            max_drift_ppm: 200.0,
        }
    }
}

/// The per-node GClock time source.
#[derive(Debug, Clone)]
pub struct GClock {
    clock: DriftClock,
    config: GClockConfig,
    /// Health flag: a clock-synchronization failure makes the source
    /// unusable and triggers the fallback transition to GTM mode.
    healthy: bool,
}

impl GClock {
    pub fn new(seed: u64, actual_drift_ppm: f64, config: GClockConfig) -> Self {
        GClock {
            clock: DriftClock::new(seed, actual_drift_ppm, config.max_drift_ppm),
            config,
            healthy: true,
        }
    }

    /// A perfect GClock (zero drift, zero sync error) for tests.
    pub fn ideal() -> Self {
        GClock {
            clock: DriftClock::ideal(),
            config: GClockConfig {
                sync_interval: SimDuration::from_millis(1),
                sync_rtt: SimDuration::ZERO,
                max_drift_ppm: 0.0,
            },
            healthy: true,
        }
    }

    pub fn config(&self) -> GClockConfig {
        self.config
    }

    /// Synchronize with the regional time device (call on the sync period).
    pub fn sync(&mut self, true_now: SimTime) {
        self.clock.sync(true_now, self.config.sync_rtt);
    }

    /// The clock reading as a GClock timestamp (microsecond units).
    pub fn t_clock(&self, true_now: SimTime) -> Timestamp {
        Timestamp::from_micros(self.clock.read_ns(true_now) / 1_000)
    }

    /// Current error bound `T_err`.
    pub fn t_err(&self, true_now: SimTime) -> SimDuration {
        self.clock.error_bound(true_now)
    }

    /// The TrueTime-style uncertainty interval `[T_clock − T_err, T_clock + T_err]`.
    pub fn now_bound(&self, true_now: SimTime) -> TimestampBound {
        let read_ns = self.clock.read_ns(true_now);
        let err_ns = self.clock.error_bound(true_now).as_nanos();
        // Round the upper bound up and the lower bound down to be safe
        // across the ns→µs truncation.
        let latest = Timestamp::from_micros((read_ns + err_ns).div_ceil(1_000));
        let earliest = Timestamp::from_micros(read_ns.saturating_sub(err_ns) / 1_000);
        TimestampBound { earliest, latest }
    }

    /// Assign a GClock timestamp: `TS = T_clock + T_err` (upper bound).
    pub fn assign_timestamp(&self, true_now: SimTime) -> Timestamp {
        self.now_bound(true_now).latest
    }

    /// How long the node must wait until its own clock reads past `ts`
    /// (the invocation / commit wait). After waiting this long, every
    /// correct clock in the system has `earliest ≥ ts`, which is what makes
    /// commits externally visible in timestamp order.
    pub fn wait_for(&self, true_now: SimTime, ts: Timestamp) -> SimDuration {
        self.clock
            .wait_until_after(true_now, ts.as_micros() * 1_000)
    }

    /// Combined helper: assign a commit timestamp and the commit-wait
    /// duration that must elapse before acknowledging the commit.
    pub fn commit_timestamp(&self, true_now: SimTime) -> (Timestamp, SimDuration) {
        let ts = self.assign_timestamp(true_now);
        (ts, self.wait_for(true_now, ts))
    }

    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Simulate a clock-synchronization failure (paper: the system then
    /// transitions to GTM mode until the issue is resolved).
    pub fn set_healthy(&mut self, healthy: bool) {
        self.healthy = healthy;
    }

    /// Inject a step fault into the underlying clock (testing hook).
    pub fn inject_fault_ns(&mut self, offset: i64) {
        self.clock.force_offset(offset);
    }

    /// Direct access to the underlying clock model (testing hook).
    pub fn clock(&self) -> &DriftClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synced_gclock(seed: u64, drift: f64, at: SimTime) -> GClock {
        let mut g = GClock::new(seed, drift, GClockConfig::default());
        g.sync(at);
        g
    }

    #[test]
    fn bound_contains_true_time() {
        let t0 = SimTime::from_secs(100);
        let g = synced_gclock(1, 150.0, t0);
        for ms in 0..5 {
            let now = t0 + SimDuration::from_millis(ms);
            let b = g.now_bound(now);
            let true_us = Timestamp::from_micros(now.as_micros());
            assert!(
                b.earliest <= true_us && true_us <= b.latest,
                "true time {true_us} outside [{}, {}]",
                b.earliest,
                b.latest
            );
        }
    }

    #[test]
    fn commit_wait_establishes_external_order() {
        // Node A (fast clock) commits; after its commit wait, node B (slow
        // clock) starts a transaction. B's snapshot must exceed A's commit
        // timestamp — this is R.1.
        let t0 = SimTime::from_secs(50);
        let a = synced_gclock(10, 200.0, t0);
        let b = synced_gclock(20, -200.0, t0);

        let commit_at = t0 + SimDuration::from_micros(300);
        let (commit_ts, wait) = a.commit_timestamp(commit_at);
        let ack_at = commit_at + wait; // client learns of the commit here

        // Any transaction starting (in true time) after the ack:
        let start_at = ack_at + SimDuration::from_nanos(1);
        let snapshot = b.assign_timestamp(start_at);
        assert!(
            snapshot > commit_ts,
            "snapshot {snapshot} must exceed committed {commit_ts}"
        );
    }

    #[test]
    fn commit_wait_is_roughly_two_t_err() {
        let t0 = SimTime::from_secs(10);
        let g = synced_gclock(3, 0.0, t0);
        let now = t0 + SimDuration::from_micros(500);
        let (_, wait) = g.commit_timestamp(now);
        let t_err = g.t_err(now);
        // wait ≈ T_err (clock must pass T_clock + T_err) within µs rounding.
        assert!(wait.as_micros() >= t_err.as_micros());
        assert!(wait.as_micros() <= t_err.as_micros() + 2);
    }

    #[test]
    fn ideal_clock_has_zero_wait() {
        let g = GClock::ideal();
        let (ts, wait) = g.commit_timestamp(SimTime::from_secs(1));
        assert_eq!(ts, Timestamp::from_micros(1_000_000));
        // Ideal: err 0, but still must tick past its own assigned ts.
        assert!(wait.as_micros() <= 1);
    }

    #[test]
    fn timestamps_use_epoch_micros() {
        let g = GClock::ideal();
        let ts = g.assign_timestamp(SimTime::from_secs(1_700_000_000));
        // A "10 digit number" domain as the paper notes (seconds-scale
        // epoch), here in µs: monotone with true time.
        assert!(ts > Timestamp::from_micros(1_000_000));
    }

    #[test]
    fn health_flag_roundtrip() {
        let mut g = GClock::ideal();
        assert!(g.is_healthy());
        g.set_healthy(false);
        assert!(!g.is_healthy());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// R.1 as a property: for arbitrary drifts within the bound and
        /// arbitrary commit times, a transaction that starts (in true time)
        /// after another's commit-wait completes always gets a larger
        /// timestamp.
        #[test]
        fn external_consistency_holds(
            drift_a in -200.0f64..200.0,
            drift_b in -200.0f64..200.0,
            seed_a in 0u64..1000,
            seed_b in 0u64..1000,
            commit_offset_us in 0u64..900,
            gap_ns in 1u64..1_000_000,
        ) {
            let t0 = SimTime::from_secs(1);
            let mut a = GClock::new(seed_a, drift_a, GClockConfig::default());
            let mut b = GClock::new(seed_b.wrapping_add(7777), drift_b, GClockConfig::default());
            a.sync(t0);
            b.sync(t0);

            let commit_at = t0 + SimDuration::from_micros(commit_offset_us);
            let (commit_ts, wait) = a.commit_timestamp(commit_at);
            let start_at = commit_at + wait + SimDuration::from_nanos(gap_ns);
            let snapshot = b.assign_timestamp(start_at);
            prop_assert!(snapshot > commit_ts,
                "snapshot {} <= commit {}", snapshot.0, commit_ts.0);
        }

        /// The advertised uncertainty interval always contains true time,
        /// across sync cadences.
        #[test]
        fn bound_always_contains_true_time(
            drift in -200.0f64..200.0,
            seed in 0u64..1000,
            probe_ms in 0u64..10,
        ) {
            let t0 = SimTime::from_secs(3);
            let mut g = GClock::new(seed, drift, GClockConfig::default());
            g.sync(t0);
            let now = t0 + SimDuration::from_millis(probe_ms);
            let b = g.now_bound(now);
            let true_ts = Timestamp::from_micros(now.as_micros());
            prop_assert!(b.earliest <= true_ts);
            prop_assert!(true_ts <= b.latest);
        }
    }
}
