#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, tests, a 5-seed smoke
# run of the chaos nemesis binary, and the bench perf-regression gate.
# Everything runs offline against the vendored dependency set.
#
# Usage: scripts/ci.sh [STAGE]
#   all            every stage below (default; what local runs use)
#   main           lint + build + test + bench-smoke (the CI "ci" job)
#   lint           cargo fmt --check && cargo clippy -D warnings, plus
#                  benchcmp validate over every committed BENCH_*.json
#   build          cargo build --release
#   test           cargo test -q
#   nemesis-smoke  nemesis seeds 1..5 (the CI "nemesis" job)
#   shell          gdb-shell tests + committed scenario replays (the CI
#                  "shell" job)
#   bench-smoke    tiny-scale figure runs gated against BENCH_smoke.json
#   txn            transaction hot-path wall-clock + allocation gate
#                  against BENCH_txn.json (the CI "txn" job)
#   scale          scale-out routing + terminal-state gate at a reduced
#                  shape against BENCH_scale.json (the CI "scale" job)
#   realnet        real-backend tests + loopback smoke gated against
#                  BENCH_realnet.json (the CI "realnet" job)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo bench --no-run (benches must keep compiling)"
    cargo bench --workspace --no-run -q

    echo "==> benchcmp validate (committed baselines + scenario files)"
    cargo run --release -q -p gdb-bench --bin benchcmp -- validate BENCH_*.json scenarios/*.toml
}

stage_build() {
    echo "==> cargo build --release"
    cargo build --release
}

stage_test() {
    echo "==> cargo test -q"
    cargo test -q
}

stage_nemesis_smoke() {
    echo "==> nemesis smoke (5 seeds)"
    for seed in 1 2 3 4 5; do
        cargo run --release -q -p gdb-chaos --bin nemesis -- --seed "$seed" --duration 2s \
            | tail -n 1
    done

    # Elastic membership under fire: node add, host drain with a
    # mid-flight source crash, and the re-issued drain that retires the
    # host. Virtual time cannot wedge, but a drain that never finishes
    # would loop the executor forever — hence the hard timeout.
    echo "==> elastic-under-fire canned plan"
    timeout 300 cargo run --release -q -p gdb-chaos --bin nemesis -- \
        --plan elastic-under-fire | tail -n 1
    echo "==> elastic nemesis (3 seeds)"
    for seed in 51 52 53; do
        timeout 300 cargo run --release -q -p gdb-chaos --bin nemesis -- \
            --seed "$seed" --duration 2s --elastic | tail -n 1
    done

    # The same two drills as committed scenario files, replayed through
    # the operator console (oracle must stay green).
    echo "==> committed scenario replays"
    for scn in scenarios/*.toml; do
        timeout 300 cargo run --release -q -p gdb-shell --bin gdb-shell -- \
            scenario run "$scn" | tail -n 1
    done
}

# Operator-console gate: the shell's unit + golden-transcript tests
# (byte-identical replay, thread-backend agreement), then both committed
# scenario files replayed end to end. Scenario runs are virtual-time
# chaos runs and cannot wedge, but the thread-backend test joins real
# threads — hence the hard timeouts.
stage_shell() {
    echo "==> gdb-shell tests (golden transcript + thread backend)"
    timeout 600 cargo test --release -q -p gdb-shell

    echo "==> committed scenario replays via gdb-shell"
    for scn in scenarios/*.toml; do
        timeout 300 cargo run --release -q -p gdb-shell --bin gdb-shell -- \
            scenario run "$scn" | tail -n 1
    done
}

# Regenerate every figure artifact at tiny scale and compare throughput
# against the committed baseline. The simulation is deterministic, so on
# unchanged code this reproduces the baseline exactly; the 20% tolerance
# only absorbs intended performance shifts (bless bigger ones with
# scripts/regen_bench.sh).
stage_bench_smoke() {
    echo "==> bench smoke (tiny scale) + perf gate"
    local out=target/bench-smoke
    rm -rf "$out"
    mkdir -p "$out"
    for fig in fig1a fig6a fig6b fig6c fig6d ablation_rebalance; do
        GDB_BENCH_SCALE=tiny GDB_BENCH_SECS=2 GDB_BENCH_TERMINALS=8 \
            cargo run --release -q -p gdb-bench --bin "$fig" -- \
            --json "$out/$fig.json" >/dev/null
    done
    cargo run --release -q -p gdb-chaos --bin nemesis -- \
        --seed 1 --duration 2s --json "$out/nemesis.json" >/dev/null
    cargo run --release -q -p gdb-bench --bin benchcmp -- merge \
        "$out/BENCH_smoke.json" \
        "$out"/fig1a.json "$out"/fig6a.json "$out"/fig6b.json \
        "$out"/fig6c.json "$out"/fig6d.json "$out"/ablation_rebalance.json \
        "$out"/nemesis.json
    cargo run --release -q -p gdb-bench --bin benchcmp -- check \
        BENCH_smoke.json "$out/BENCH_smoke.json" --tolerance 0.20

    # Wall-clock engine gate: re-measures the timing-wheel engine against
    # the frozen heap engine on *this* machine and checks only the
    # speedup ratio (absolute events/sec are machine-local by design).
    echo "==> engine wall-clock gate"
    GDB_ENGINE_EVENTS=1000000 \
        cargo run --release -q -p gdb-bench --bin engine_bench -- \
        --json "$out/engine.json" >/dev/null
    cargo run --release -q -p gdb-bench --bin benchcmp -- check \
        BENCH_engine.json "$out/engine.json" --tolerance 0.20
}

# Transaction hot-path gate: drives the fixed-seed write script through
# the optimized pipeline and the frozen pre-pass reference, asserts
# byte-identical durable segments, then checks two *ratios* against
# BENCH_txn.json: wall-clock speedup (floor 1.5x) and allocations per
# committed transaction (floor 10x fewer). Absolutes are machine-local
# and never compared. The timeout guards against a wedged run — the
# whole stage normally finishes in well under a minute.
stage_txn() {
    echo "==> txn hot-path wall-clock + allocation gate"
    local out=target/txn-bench
    rm -rf "$out"
    mkdir -p "$out"
    GDB_TXN_TXNS=60000 GDB_TXN_WINDOW=64 \
        timeout 600 cargo run --release -q -p gdb-bench --bin txn_bench -- \
        --json "$out/txn.json"
    cargo run --release -q -p gdb-bench --bin benchcmp -- check \
        BENCH_txn.json "$out/txn.json" --tolerance 0.20
}

# Scale-out gate: scale_bench at a reduced parameterization (CI machines
# cannot afford the full 256-shard/10⁵-terminal default, which is a
# manual/nightly run). The "scale" artifact is wall_clock=true, so only
# the routing-speedup and bytes-per-terminal *ratios* are compared
# (floors 2x / 4x); the in-bench FNV digest assert already proved the
# fast and legacy routers made identical decisions. The parameters here
# must match scripts/regen_bench.sh, which blesses the baseline.
stage_scale() {
    echo "==> scale-out routing + terminal-state gate"
    local out=target/scale-bench
    rm -rf "$out"
    mkdir -p "$out"
    GDB_SCALE_SHARDS=64 GDB_SCALE_REGIONS=5 GDB_SCALE_TERMINALS=5000 \
        GDB_SCALE_KEYS=1024 GDB_SCALE_EPOCHS=4 GDB_SCALE_OPS=8 GDB_SCALE_MOVES=8 \
        GDB_SCALE_CLUSTER_MS=500 GDB_SCALE_THINK_MS=100 \
        timeout 600 cargo run --release -q -p gdb-bench --bin scale_bench -- \
        --json "$out/scale.json"
    cargo run --release -q -p gdb-bench --bin benchcmp -- check \
        BENCH_scale.json "$out/scale.json" --tolerance 0.20
}

# Real-backend gate: the realnet crate's tests (unit + sim/real
# divergence + seam scans), then the 3-node loopback TPC-C smoke gated
# against BENCH_realnet.json. The artifact is wall_clock=true, so only
# the tcp/thread throughput *ratio* is compared — never the
# machine-local absolute numbers. Real threads and sockets can wedge in
# ways virtual time cannot, hence the hard timeouts.
stage_realnet() {
    echo "==> realnet tests (thread + tcp backends)"
    timeout 600 cargo test --release -q -p gdb-realnet

    echo "==> realnet loopback smoke + wall-clock gate"
    local out=target/realnet-smoke
    rm -rf "$out"
    mkdir -p "$out"
    GDB_BENCH_SCALE=tiny GDB_BENCH_SECS=2 GDB_BENCH_TERMINALS=8 \
        timeout 600 cargo run --release -q -p gdb-realnet --bin realnet_smoke -- \
        --json "$out/realnet.json"
    cargo run --release -q -p gdb-bench --bin benchcmp -- check \
        BENCH_realnet.json "$out/realnet.json" --tolerance 0.20
}

case "${1:-all}" in
lint) stage_lint ;;
build) stage_build ;;
test) stage_test ;;
nemesis-smoke) stage_nemesis_smoke ;;
shell) stage_shell ;;
bench-smoke) stage_bench_smoke ;;
txn) stage_txn ;;
scale) stage_scale ;;
realnet) stage_realnet ;;
main)
    stage_lint
    stage_build
    stage_test
    stage_bench_smoke
    echo "CI OK"
    ;;
all)
    stage_lint
    stage_build
    stage_test
    stage_nemesis_smoke
    stage_shell
    stage_bench_smoke
    stage_txn
    stage_scale
    stage_realnet
    echo "CI OK"
    ;;
*)
    echo "unknown stage: $1 (see scripts/ci.sh header)" >&2
    exit 2
    ;;
esac
