//! Transaction-management modes and the transition-protocol messages.

use gdb_model::Timestamp;
use gdb_simnet::SimDuration;
use std::fmt;

/// Which timestamp-generation scheme a node (GTM server or CN) is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TmMode {
    /// Centralized counter via the GTM server (paper Eq. 2).
    #[default]
    Gtm,
    /// Bridge mode during transitions (paper Eq. 3).
    Dual,
    /// Decentralized synchronized clocks (paper Eq. 1).
    GClock,
}

impl fmt::Display for TmMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmMode::Gtm => write!(f, "GTM"),
            TmMode::Dual => write!(f, "DUAL"),
            TmMode::GClock => write!(f, "GClock"),
        }
    }
}

/// Messages of the transition protocol (Figs. 2–3). The cluster layer
/// delivers these over the simulated network; the state machines in
/// [`crate::gtm`]/[`crate::cn`]/[`crate::transition`] consume them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmMsg {
    /// GTM server → CN: switch to DUAL mode.
    SwitchToDual,
    /// CN → GTM server: acknowledged DUAL. Carries the CN's current clock
    /// error bound (GTM→GClock direction uses it to size the hold wait)
    /// and its current GClock upper bound (GClock→GTM direction uses it to
    /// initialize the counter above all issued GClock timestamps).
    AckDual {
        cn: usize,
        err_bound: SimDuration,
        gclock_upper: Timestamp,
    },
    /// GTM server → CN: switch to GClock mode (end of Fig. 2).
    SwitchToGClock,
    /// GTM server → CN: switch back to GTM mode (end of Fig. 3).
    SwitchToGtm,
    /// CN → GTM server: final-mode switch acknowledged.
    AckFinal { cn: usize },
}
