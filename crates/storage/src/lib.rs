//! Shared-nothing MVCC storage engine (one instance per data node).
//!
//! GaussDB data nodes host horizontal portions of tables selected by the
//! distribution key (paper §II-A) and use multi-version concurrency control
//! for visibility checking. This crate implements:
//!
//! * [`table::Table`] — a B-tree keyed heap of version chains with
//!   timestamp-based snapshot visibility (the paper's R.1/R.2 rules reduce
//!   to `commit_ts ≤ snapshot_ts` once timestamps are assigned correctly).
//!   Each version also carries the *virtual time* its commit completed, so
//!   the simulation can model readers waiting on in-flight commits.
//! * [`lock::LockTable`] — row write locks with virtual-time release,
//!   giving PostgreSQL-style read-committed update semantics (writers wait
//!   for the current holder, then update the latest committed version).
//! * [`catalog::Catalog`] — table/index metadata, shared by CNs and DNs.
//! * [`engine::DataNodeStorage`] — the per-DN facade combining all of the
//!   above, plus secondary index maintenance.

pub mod catalog;
pub mod engine;
pub mod lock;
pub mod reference;
pub mod table;

pub use catalog::Catalog;
pub use engine::DataNodeStorage;
pub use lock::{LockOutcome, LockTable};
pub use table::{Table, Version, VisibleRow};
