//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure of the paper's
//! evaluation (§V, Fig. 1a and Fig. 6a–d) or one ablation. Absolute
//! numbers are simulated (the substrate is a deterministic virtual-time
//! cluster, not the authors' hardware); the *shape* — who wins, by what
//! factor, where the crossovers are — is the reproduction target.
//!
//! Environment knobs:
//! * `GDB_BENCH_SCALE` = `tiny` | `small` (default) | `medium`
//! * `GDB_BENCH_SECS`  = measured virtual seconds (default 10)
//! * `GDB_BENCH_TERMINALS` = closed-loop terminals (default 24)

pub mod txnpath;

use gdb_obs::{BenchArtifact, BenchSeries, HistSummary, NetStats};
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::SimDuration;
use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use gdb_workloads::WorkloadReport;
use globaldb::{Cluster, ClusterConfig, Metric};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Scale/duration parameters shared by the binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    pub scale: TpccScale,
    /// The resolved `GDB_BENCH_SCALE` name (recorded in artifacts).
    pub scale_name: &'static str,
    pub run: RunConfig,
    pub seed: u64,
}

impl BenchParams {
    /// Read from the environment (defaults: small scale, 10 virtual s).
    pub fn from_env() -> Self {
        let (scale, scale_name) = match std::env::var("GDB_BENCH_SCALE").as_deref() {
            Ok("tiny") => (TpccScale::tiny(), "tiny"),
            Ok("medium") => (TpccScale::medium(), "medium"),
            _ => (TpccScale::small(), "small"),
        };
        let secs: u64 = std::env::var("GDB_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        let terminals: usize = std::env::var("GDB_BENCH_TERMINALS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(24);
        BenchParams {
            scale,
            scale_name,
            run: RunConfig {
                terminals,
                duration: SimDuration::from_secs(secs),
                warmup: SimDuration::from_secs(1),
                think_time: SimDuration::from_millis(10),
            },
            seed: 42,
        }
    }
}

/// Build a cluster, load TPC-C, run the mix, and return the report.
pub fn tpcc_run(
    config: ClusterConfig,
    params: &BenchParams,
    mix: TpccMix,
    tweak: impl FnOnce(&mut TpccWorkload),
) -> (Cluster, WorkloadReport) {
    tpcc_run_with(config, params, mix, tweak, |_| {})
}

/// [`tpcc_run`] with a pre-load cluster hook (e.g. enabling the span
/// tracer for a `--trace` export). The hook must not perturb virtual
/// time or the topology RNG, or the run diverges from its untraced twin.
pub fn tpcc_run_with(
    config: ClusterConfig,
    params: &BenchParams,
    mix: TpccMix,
    tweak: impl FnOnce(&mut TpccWorkload),
    prep: impl FnOnce(&mut Cluster),
) -> (Cluster, WorkloadReport) {
    let mut cluster = Cluster::new(config);
    prep(&mut cluster);
    let mut wl = TpccWorkload::new(params.scale, mix, params.seed);
    tweak(&mut wl);
    wl.setup(&mut cluster).expect("tpcc setup");
    let report = run_workload(&mut cluster, &mut wl, params.run);
    (cluster, report)
}

/// Print an aligned results table (one figure per binary, paper-style).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    println!();
}

/// Format a throughput relative to a baseline ("3.2x").
pub fn ratio(value: f64, base: f64) -> String {
    if base <= 0.0 {
        "n/a".into()
    } else {
        format!("{:.2}x", value / base)
    }
}

/// The path given by `--json <path>` on the binary's command line.
pub fn json_out_path() -> Option<PathBuf> {
    gdb_obs::cli_path("--json")
}

/// The path given by `--trace <path>`: where to write a Chrome
/// trace-event JSON of the instrumented run's span tree.
pub fn trace_out_path() -> Option<PathBuf> {
    gdb_obs::cli_path("--trace")
}

/// Start a `gdb-bench/v1` artifact for one figure, recording the run
/// configuration (scale, virtual seconds, terminals, seed).
pub fn artifact(figure: &str, params: &BenchParams) -> BenchArtifact {
    let mut a = BenchArtifact::new(figure);
    a.config_kv("scale", params.scale_name);
    a.config_kv("secs", params.run.duration.as_secs_f64());
    a.config_kv("terminals", params.run.terminals);
    a.config_kv("seed", params.seed);
    a
}

/// Build one artifact series from a finished run: workload-window
/// throughput/latency plus the cluster's full metrics snapshot, with the
/// per-phase breakdown (`txnmgr.phase.*`) and network totals lifted into
/// their schema fields.
pub fn series_from_run(
    label: impl Into<String>,
    cluster: &mut Cluster,
    report: &WorkloadReport,
) -> BenchSeries {
    let snap = cluster.metrics_snapshot();
    // Measured-window latency across all transaction types.
    let mut lat = LatencyHistogram::bounded();
    for h in report.latency.values() {
        lat.merge(h);
    }
    let mut phases = BTreeMap::new();
    for (name, m) in &snap.metrics {
        if let (Some(rest), Metric::Histogram(h)) =
            (name.strip_prefix(gdb_txnmgr::metrics::PHASE_PREFIX), m)
        {
            phases.insert(rest.trim_end_matches("_us").to_string(), h.clone());
        }
    }
    let c = |n: &str| snap.counter(n).unwrap_or(0);
    let net = NetStats {
        wire_bytes: c(gdb_replication::metrics::SHIP_WIRE_BYTES),
        raw_bytes: c(gdb_replication::metrics::SHIP_RAW_BYTES),
        batches: c(gdb_replication::metrics::SHIP_BATCHES),
        cross_region_msgs: c(gdb_simnet::metrics::CROSS_REGION_MSGS),
        cross_region_bytes: c(gdb_simnet::metrics::CROSS_REGION_BYTES),
    };
    BenchSeries {
        label: label.into(),
        throughput_txn_s: report.throughput_per_sec(),
        tpmc: report.tpmc(),
        commits: report.total_commits(),
        aborts: report.total_aborts(),
        latency: HistSummary::of(&lat),
        phases,
        net,
        metrics: snap,
    }
}

/// Write the artifact to the `--json` path, if one was given.
pub fn emit_artifact(a: &BenchArtifact) {
    if let Some(path) = json_out_path() {
        std::fs::write(&path, a.to_pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

/// Mean RCP lag across regions in milliseconds (freshness metric).
pub fn rcp_lag_ms(cluster: &Cluster) -> f64 {
    let now_us = cluster.now().as_micros() as f64;
    let regions = cluster.db.rcp_calculators().len().max(1) as f64;
    let total: f64 = cluster
        .db
        .rcp_calculators()
        .iter()
        .map(|r| (now_us - r.current().as_micros() as f64).max(0.0))
        .sum();
    total / regions / 1_000.0
}
