//! The operator console binary.
//!
//! ```text
//! gdb-shell                                   # REPL on the sim backend
//! gdb-shell --backend thread                  # real threads (PR-6 seam)
//! gdb-shell --seed 7 --script ops.gdb         # batch transcript
//! gdb-shell scenario run scenarios/x.toml     # one-shot command
//! ```
//!
//! Exits non-zero if any command failed (unknown command, bad arguments,
//! scenario violations) or the backend teardown failed verification.

use gdb_obs::flag_value;
use gdb_realnet::Backend;
use gdb_shell::Shell;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gdb-shell [--backend sim|thread|tcp] [--seed N] [--script FILE] [COMMAND...]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend = match flag_value(&args, "--backend") {
        None | Some("sim") => Backend::Sim,
        Some("thread") => Backend::Thread,
        Some("tcp") => Backend::Tcp,
        Some(_) => usage(),
    };
    let seed: u64 = match flag_value(&args, "--seed") {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => 1,
    };
    let script = flag_value(&args, "--script").map(str::to_string);

    // Everything after the flags is one inline command.
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" | "--seed" | "--script" => i += 2,
            a => {
                rest.push(a.to_string());
                i += 1;
            }
        }
    }

    let mut shell = Shell::launch(seed, backend);
    if let Some(path) = script {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("gdb-shell: read {path}: {e}");
            std::process::exit(2);
        });
        print!("{}", shell.run_script(&text));
    } else if !rest.is_empty() {
        let out = shell.exec(&rest.join(" "));
        if !out.is_empty() {
            println!("{out}");
        }
    } else {
        repl(&mut shell);
    }
    println!("{}", shell.shutdown());
    if shell.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn repl(shell: &mut Shell) {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("gdb> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        let out = shell.exec(line);
        if !out.is_empty() {
            println!("{out}");
        }
    }
}
