//! RCP computation (paper Fig. 4).

use gdb_model::Timestamp;
use std::collections::BTreeMap;

/// Identifies one replica data node within the RCP group (a remote site's
/// full set of replica shards).
pub type ReplicaSlot = u32;

/// Collects per-replica max commit timestamps and derives the RCP.
#[derive(Debug, Default, Clone)]
pub struct RcpCalculator {
    reported: BTreeMap<ReplicaSlot, Timestamp>,
    /// The set of replicas that must report before an RCP exists.
    expected: Vec<ReplicaSlot>,
    rcp: Timestamp,
}

impl RcpCalculator {
    /// A calculator over the given replica set.
    pub fn new(expected: Vec<ReplicaSlot>) -> Self {
        RcpCalculator {
            reported: BTreeMap::new(),
            expected,
            rcp: Timestamp::ZERO,
        }
    }

    /// Record a replica's current max applied commit timestamp.
    /// Reports are monotone per replica (stale reports are ignored).
    pub fn report(&mut self, replica: ReplicaSlot, max_commit_ts: Timestamp) {
        let entry = self.reported.entry(replica).or_insert(Timestamp::ZERO);
        *entry = (*entry).max(max_commit_ts);
    }

    /// Recompute and return the RCP: the min over all expected replicas of
    /// their reported max, clamped to never move backwards. Replicas that
    /// have not reported yet pin the RCP at its previous value.
    pub fn compute(&mut self) -> Timestamp {
        let mut min: Option<Timestamp> = None;
        for slot in &self.expected {
            match self.reported.get(slot) {
                Some(ts) => {
                    min = Some(match min {
                        Some(m) => m.min(*ts),
                        None => *ts,
                    });
                }
                None => return self.rcp, // incomplete information
            }
        }
        if let Some(m) = min {
            self.rcp = self.rcp.max(m);
        }
        self.rcp
    }

    /// The current RCP without recomputing.
    pub fn current(&self) -> Timestamp {
        self.rcp
    }

    /// Adopt a distributed RCP from the collector CN (never backwards).
    pub fn adopt(&mut self, rcp: Timestamp) {
        self.rcp = self.rcp.max(rcp);
    }

    /// Remove a replica from the expected set (it crashed and was dropped
    /// from the read group); the RCP may then advance past it.
    pub fn remove_replica(&mut self, replica: ReplicaSlot) {
        self.expected.retain(|&r| r != replica);
        self.reported.remove(&replica);
    }

    /// Add a replica to the expected set (rejoined after recovery).
    pub fn add_replica(&mut self, replica: ReplicaSlot) {
        if !self.expected.contains(&replica) {
            self.expected.push(replica);
        }
    }

    pub fn expected_replicas(&self) -> &[ReplicaSlot] {
        &self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 4 scenario verbatim: replicas have applied up to
    /// ts4, ts5, and ts3 respectively ⇒ RCP = min = ts3, making Trx1..3
    /// visible and Trx4/Trx5 (possibly multi-shard / dependent) invisible.
    #[test]
    fn figure4_scenario() {
        let (ts3, ts4, ts5) = (Timestamp(3), Timestamp(4), Timestamp(5));
        let mut rcp = RcpCalculator::new(vec![1, 2, 3]);
        rcp.report(1, ts4);
        rcp.report(2, ts5);
        rcp.report(3, ts3);
        assert_eq!(rcp.compute(), ts3);
        // Trx1..Trx3 visible at the RCP snapshot; Trx4, Trx5 not.
        for visible in [1u64, 2, 3] {
            assert!(Timestamp(visible) <= rcp.current());
        }
        for invisible in [4u64, 5] {
            assert!(Timestamp(invisible) > rcp.current());
        }
    }

    #[test]
    fn rcp_waits_for_all_replicas() {
        let mut rcp = RcpCalculator::new(vec![1, 2]);
        rcp.report(1, Timestamp(100));
        assert_eq!(rcp.compute(), Timestamp::ZERO, "replica 2 unreported");
        rcp.report(2, Timestamp(60));
        assert_eq!(rcp.compute(), Timestamp(60));
    }

    #[test]
    fn rcp_is_monotone_even_if_reports_regress() {
        let mut rcp = RcpCalculator::new(vec![1, 2]);
        rcp.report(1, Timestamp(50));
        rcp.report(2, Timestamp(40));
        assert_eq!(rcp.compute(), Timestamp(40));
        // A stale (smaller) report must not pull the RCP back.
        rcp.report(2, Timestamp(10));
        assert_eq!(rcp.compute(), Timestamp(40));
        rcp.report(2, Timestamp(70));
        assert_eq!(rcp.compute(), Timestamp(50));
    }

    #[test]
    fn adopt_distributed_rcp_monotone() {
        let mut rcp = RcpCalculator::new(vec![]);
        rcp.adopt(Timestamp(30));
        rcp.adopt(Timestamp(20));
        assert_eq!(rcp.current(), Timestamp(30));
    }

    #[test]
    fn crashed_replica_unpins_rcp() {
        let mut rcp = RcpCalculator::new(vec![1, 2, 3]);
        rcp.report(1, Timestamp(90));
        rcp.report(2, Timestamp(80));
        rcp.report(3, Timestamp(5)); // far behind, then crashes
        assert_eq!(rcp.compute(), Timestamp(5));
        rcp.remove_replica(3);
        assert_eq!(rcp.compute(), Timestamp(80));
        // It rejoins: RCP stays monotone (pinned until it reports).
        rcp.add_replica(3);
        assert_eq!(rcp.compute(), Timestamp(80));
        rcp.report(3, Timestamp(85));
        assert_eq!(rcp.compute(), Timestamp(80), "min(90,80,85) = 80");
        rcp.report(3, Timestamp(100));
        rcp.report(2, Timestamp(95));
        assert_eq!(rcp.compute(), Timestamp(90));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The RCP never exceeds any replica's report high-water mark and
        /// never decreases across an arbitrary report/compute interleaving.
        #[test]
        fn rcp_invariants(
            reports in proptest::collection::vec((0u32..4, 0u64..1000), 1..60)
        ) {
            let mut rcp = RcpCalculator::new(vec![0, 1, 2, 3]);
            let mut high_water = [0u64; 4];
            let mut last_rcp = Timestamp::ZERO;
            for (slot, ts) in reports {
                rcp.report(slot, Timestamp(ts));
                high_water[slot as usize] = high_water[slot as usize].max(ts);
                let r = rcp.compute();
                prop_assert!(r >= last_rcp, "monotonicity violated");
                last_rcp = r;
                // RCP ≤ every replica's high water (once all reported).
                if high_water.iter().all(|&h| h > 0) {
                    let min_high = *high_water.iter().min().unwrap();
                    prop_assert!(r.0 <= min_high);
                }
            }
        }
    }
}
