//! Observability integration: identical seeds produce bit-identical
//! traces and metrics snapshots; transaction spans nest their phase
//! children; the per-phase histograms make the paper's commit-wait story
//! (GTM round trip vs bounded GClock wait) visible in numbers.

use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use globaldb::{Cluster, ClusterConfig, MetricsReport, SimDuration, SpanKind};

/// Run a short TPC-C burst and return the trace render + metrics
/// snapshot (the cluster too, for span-level assertions).
fn run_tpcc(config: ClusterConfig, workload_seed: u64) -> (Cluster, String, MetricsReport) {
    let mut cluster = Cluster::new(config);
    cluster.db.obs.tracer.enable(500_000);
    let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), workload_seed);
    wl.setup(&mut cluster).expect("tpcc setup");
    run_workload(
        &mut cluster,
        &mut wl,
        RunConfig {
            terminals: 4,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(200),
            think_time: SimDuration::from_millis(10),
        },
    );
    let render = cluster.db.obs.tracer.render();
    let snap = cluster.db.metrics_snapshot();
    (cluster, render, snap)
}

#[test]
fn identical_seeds_identical_trace_and_metrics() {
    let (_, render_a, snap_a) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    let (_, render_b, snap_b) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    assert!(!render_a.is_empty(), "tracer recorded nothing");
    assert_eq!(render_a, render_b, "same seed produced different traces");
    assert_eq!(snap_a, snap_b, "same seed produced different metrics");

    let (_, render_c, _) = run_tpcc(ClusterConfig::globaldb_three_city(), 43);
    assert_ne!(
        render_a, render_c,
        "different seeds replayed the same trace"
    );
}

#[test]
fn txn_spans_nest_their_phases() {
    let (cluster, _, _) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    let tracer = &cluster.db.obs.tracer;
    assert_eq!(tracer.dropped(), 0, "span capacity too small for this run");

    // Find a write transaction: a Txn root with all five phase children.
    let write_txn = tracer
        .spans()
        .iter()
        .filter(|s| s.is_root() && s.kind == SpanKind::Txn)
        .find(|s| tracer.children(s.id).len() == 5)
        .expect("no write transaction recorded");
    let kids = tracer.children(write_txn.id);
    let kinds: Vec<SpanKind> = kids.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::SnapshotAcquire,
            SpanKind::Execute,
            SpanKind::Prepare,
            SpanKind::CommitWait,
            SpanKind::ReplicationAck,
        ]
    );
    // Phases tile the transaction: each child starts where the previous
    // ended, the first at txn begin, the last ending at the final ack.
    assert_eq!(kids[0].start, write_txn.start);
    for pair in kids.windows(2) {
        assert_eq!(pair[0].end, pair[1].start);
    }
    assert_eq!(kids.last().unwrap().end, write_txn.end);

    // Read-only transactions record just snapshot + execute.
    let read_txn = tracer
        .spans()
        .iter()
        .filter(|s| s.is_root() && s.kind == SpanKind::Txn)
        .find(|s| tracer.children(s.id).len() == 2);
    if let Some(r) = read_txn {
        let kinds: Vec<SpanKind> = tracer.children(r.id).iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::SnapshotAcquire, SpanKind::Execute]);
    }

    // Background activities are spanned too.
    assert!(
        tracer.spans().iter().any(|s| s.kind == SpanKind::LogShip),
        "no log-shipping spans"
    );
}

#[test]
fn phase_histograms_expose_commit_wait_contrast() {
    // GTM + sync replication across three cities vs GClock + async: the
    // paper's Fig. 6a gap must be visible in the phase histograms.
    let (_, _, baseline) = run_tpcc(ClusterConfig::baseline_three_city(), 42);
    let (_, _, globaldb) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);

    for snap in [&baseline, &globaldb] {
        for phase in ["execute", "commit_wait"] {
            let h = snap
                .histogram(&format!("txnmgr.phase.{phase}_us"))
                .unwrap_or_else(|| panic!("missing phase histogram {phase}"));
            assert!(h.count > 0, "empty phase histogram {phase}");
        }
        assert!(snap.histogram("txnmgr.latency_us").is_some());
    }
    let base_wait = baseline.histogram("txnmgr.phase.commit_wait_us").unwrap();
    let gdb_wait = globaldb.histogram("txnmgr.phase.commit_wait_us").unwrap();
    assert!(
        base_wait.mean_us > 10 * gdb_wait.mean_us,
        "GTM commit wait ({} us) should dwarf GClock's ({} us)",
        base_wait.mean_us,
        gdb_wait.mean_us
    );

    // Counters mirrored from cluster stats and the network are present.
    assert!(globaldb.counter("txnmgr.committed").unwrap() > 0);
    assert!(globaldb.counter("simnet.msgs").unwrap() > 0);
    assert!(globaldb.counter("router.skyline.selections").unwrap() > 0);
    assert!(globaldb.counter("replication.ship.batches").unwrap() > 0);
    // Cross-region traffic counts real shipped bytes, not just probes.
    let msgs = globaldb.counter("simnet.cross_region.msgs").unwrap();
    let bytes = globaldb.counter("simnet.cross_region.bytes").unwrap();
    assert!(msgs > 0 && bytes > msgs, "cross-region bytes undercounted");
}
