//! Row write locks with virtual-time release.
//!
//! The simulation executes each transaction's logic at its start event, but
//! its commit completes later in virtual time (after network round trips
//! and the GClock commit wait). A row lock is therefore held until the
//! holder's commit *virtual time*; a later transaction that wants the row
//! observes the release time and adds the wait to its own latency — exactly
//! the blocking a real lock manager would produce.

use gdb_model::{FxHashMap, RowKey, TableId, TxnId};
use gdb_simnet::SimTime;

/// Result of a lock attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is yours; proceed.
    Acquired,
    /// Held by another transaction until the given virtual time; wait
    /// until then (adding to your latency) and retry.
    WaitUntil(SimTime),
}

#[derive(Debug, Clone, Copy)]
struct LockState {
    holder: TxnId,
    release_at: SimTime,
}

/// The per-data-node lock table.
///
/// Keyed as a two-level map (table, then row key) with a fast
/// non-cryptographic hasher: the hot acquire path probes the inner map
/// through a borrowed `&RowKey` and clones the key only when inserting
/// a lock on a row it has never seen. The frozen flat-map
/// implementation lives in [`crate::reference`] with differential tests
/// pinning the two to identical outcomes.
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    locks: FxHashMap<TableId, FxHashMap<RowKey, LockState>>,
    /// Total lock-wait events (contention metric).
    pub waits: u64,
}

impl LockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to take the write lock on `(table, key)` for `txn` at virtual
    /// time `now`, holding it until `release_at` (the txn's commit time).
    ///
    /// Re-acquisition by the same holder extends the release time.
    /// A lock whose release time has passed is expired and replaceable.
    pub fn acquire(
        &mut self,
        table: TableId,
        key: &RowKey,
        txn: TxnId,
        now: SimTime,
        release_at: SimTime,
    ) -> LockOutcome {
        let shard = self.locks.entry(table).or_default();
        if let Some(state) = shard.get_mut(key) {
            if state.holder == txn {
                state.release_at = state.release_at.max(release_at);
                return LockOutcome::Acquired;
            }
            if state.release_at <= now {
                // Previous holder's commit already completed.
                *state = LockState {
                    holder: txn,
                    release_at,
                };
                return LockOutcome::Acquired;
            }
            self.waits += 1;
            LockOutcome::WaitUntil(state.release_at)
        } else {
            shard.insert(
                key.clone(),
                LockState {
                    holder: txn,
                    release_at,
                },
            );
            LockOutcome::Acquired
        }
    }

    /// Extend the release time of all locks held by `txn` (its commit time
    /// moved later, e.g. a 2PC round lengthened the transaction).
    pub fn extend(&mut self, txn: TxnId, release_at: SimTime) {
        for shard in self.locks.values_mut() {
            for state in shard.values_mut() {
                if state.holder == txn {
                    state.release_at = state.release_at.max(release_at);
                }
            }
        }
    }

    /// Release all locks held by `txn` (abort path — commit releases
    /// implicitly by letting release times expire).
    pub fn release_all(&mut self, txn: TxnId) {
        for shard in self.locks.values_mut() {
            shard.retain(|_, s| s.holder != txn);
        }
    }

    /// Set the exact release time of one lock held by `txn` (the commit
    /// path pins each lock to the transaction's per-shard commit-apply
    /// instant).
    pub fn set_release(&mut self, table: TableId, key: &RowKey, txn: TxnId, at: SimTime) {
        if let Some(s) = self.locks.get_mut(&table).and_then(|m| m.get_mut(key)) {
            if s.holder == txn {
                s.release_at = at;
            }
        }
    }

    /// Drop expired entries (housekeeping so the map doesn't grow forever).
    pub fn sweep(&mut self, now: SimTime) {
        for shard in self.locks.values_mut() {
            shard.retain(|_, s| s.release_at > now);
        }
    }

    /// Current holder of a lock, if unexpired.
    pub fn holder(&self, table: TableId, key: &RowKey, now: SimTime) -> Option<TxnId> {
        self.locks
            .get(&table)
            .and_then(|m| m.get(key))
            .filter(|s| s.release_at > now)
            .map(|s| s.holder)
    }

    pub fn len(&self) -> usize {
        self.locks.values().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: i64) -> RowKey {
        RowKey::single(v)
    }

    const T: TableId = TableId(1);

    #[test]
    fn uncontended_acquire() {
        let mut lt = LockTable::new();
        assert_eq!(
            lt.acquire(
                T,
                &key(1),
                TxnId(1),
                SimTime::ZERO,
                SimTime::from_millis(10)
            ),
            LockOutcome::Acquired
        );
        assert_eq!(lt.holder(T, &key(1), SimTime::ZERO), Some(TxnId(1)));
    }

    #[test]
    fn contended_lock_reports_release_time() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        match lt.acquire(
            T,
            &key(1),
            TxnId(2),
            SimTime::from_millis(10),
            SimTime::from_millis(60),
        ) {
            LockOutcome::WaitUntil(t) => assert_eq!(t, SimTime::from_millis(50)),
            other => panic!("expected wait, got {other:?}"),
        }
        assert_eq!(lt.waits, 1);
        // After the release time, txn 2 can take it.
        assert_eq!(
            lt.acquire(
                T,
                &key(1),
                TxnId(2),
                SimTime::from_millis(50),
                SimTime::from_millis(60)
            ),
            LockOutcome::Acquired
        );
        assert_eq!(
            lt.holder(T, &key(1), SimTime::from_millis(55)),
            Some(TxnId(2))
        );
    }

    #[test]
    fn reentrant_acquire_extends() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        assert_eq!(
            lt.acquire(
                T,
                &key(1),
                TxnId(1),
                SimTime::ZERO,
                SimTime::from_millis(30)
            ),
            LockOutcome::Acquired
        );
        // Another txn must wait until the extended time.
        match lt.acquire(
            T,
            &key(1),
            TxnId(2),
            SimTime::from_millis(5),
            SimTime::from_millis(40),
        ) {
            LockOutcome::WaitUntil(t) => assert_eq!(t, SimTime::from_millis(30)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extend_moves_all_of_txns_locks() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        lt.acquire(
            T,
            &key(2),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        lt.extend(TxnId(1), SimTime::from_millis(99));
        match lt.acquire(
            T,
            &key(2),
            TxnId(2),
            SimTime::from_millis(20),
            SimTime::from_millis(100),
        ) {
            LockOutcome::WaitUntil(t) => assert_eq!(t, SimTime::from_millis(99)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn release_all_on_abort() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        lt.release_all(TxnId(1));
        assert_eq!(
            lt.acquire(
                T,
                &key(1),
                TxnId(2),
                SimTime::ZERO,
                SimTime::from_millis(10)
            ),
            LockOutcome::Acquired
        );
    }

    #[test]
    fn sweep_clears_expired() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        lt.acquire(
            T,
            &key(2),
            TxnId(2),
            SimTime::ZERO,
            SimTime::from_millis(90),
        );
        lt.sweep(SimTime::from_millis(50));
        assert_eq!(lt.len(), 1);
        assert_eq!(
            lt.holder(T, &key(2), SimTime::from_millis(50)),
            Some(TxnId(2))
        );
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let mut lt = LockTable::new();
        lt.acquire(
            T,
            &key(1),
            TxnId(1),
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        assert_eq!(
            lt.acquire(
                T,
                &key(2),
                TxnId(2),
                SimTime::ZERO,
                SimTime::from_millis(50)
            ),
            LockOutcome::Acquired
        );
        // Same key, different table: also no conflict.
        assert_eq!(
            lt.acquire(
                TableId(2),
                &key(1),
                TxnId(3),
                SimTime::ZERO,
                SimTime::from_millis(50)
            ),
            LockOutcome::Acquired
        );
    }
}
