//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Each redo record carries a CRC over its body so torn or corrupted
//! shipping batches are detected at replay time.

const POLY: u32 = 0xEDB8_8320;

fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Precomputed at first use; `OnceLock` keeps this dependency-free.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(make_table)
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
