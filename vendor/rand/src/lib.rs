//! In-tree, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched; everything here is deterministic and
//! seed-reproducible, which is exactly what the simulation needs.
//!
//! Provided surface:
//! * [`rngs::SmallRng`] — a splitmix64 generator, [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` for all primitive
//!   integer widths (including `i128`/`u128`) and `f32`/`f64`
//! * [`Rng::gen_bool`], [`Rng::gen_ratio`]
//!
//! Statistical quality is secondary to determinism here: modulo reduction
//! (with its negligible bias for the narrow ranges the simulator draws) is
//! used instead of rejection sampling so every draw costs exactly one or two
//! generator steps regardless of the range.

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (only the `u64` entry point is supported; that is
/// the only one the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let v = (next_u128(rng) % span) as $u;
                (self.start as $u).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u128;
                if span == <$u>::MAX as u128 {
                    // Full domain: every bit pattern is valid.
                    return next_u128(rng) as $u as $t;
                }
                let v = (next_u128(rng) % (span + 1)) as $u;
                (start as $u).wrapping_add(v) as $t
            }
        }
    )*};
}

int_range_impls!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (Steele et al., "Fast Splittable
    /// Pseudorandom Number Generators").
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = SmallRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            };
            rng.next_u64();
            rng
        }
    }

    /// The workspace only needs `SmallRng`; alias the standard generator to
    /// it so either name works.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0u64..=10);
            assert!(w <= 10);
            let x: i128 = rng.gen_range(-1_000_000i128..=1_000_000);
            assert!((-1_000_000..=1_000_000).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_ratio(5, 5));
        assert!(!rng.gen_ratio(0, 5));
    }
}
