//! The RCP driver: per-region consistency-point rounds (paper §IV-A),
//! heartbeats, the clock-health watchdog, and version vacuuming.
//!
//! An RCP round is two phases — *collect* (the region's collector CN
//! gathers max commit timestamps from the replicas at its site) and
//! *finish* (compute `min`, distribute to the region's CNs) — separated
//! by the gathering round trips, which is exactly the window a collector
//! crash can land in. The gather/distribute fan-in is counted on the
//! message plane ([`RpcKind::RcpGather`] / [`RpcKind::RcpDistribute`]);
//! its latency is modelled by the round's scheduling, not per message.

use crate::cluster::GlobalDb;
use crate::event::{CoreEvent, CoreSim};
use crate::net::RpcKind;
use gdb_model::Timestamp;
use gdb_obs::{SpanId, SpanKind};
use gdb_simnet::{SimDuration, SimTime};
use gdb_txnmgr::TmMode;
use gdb_wal::RedoPayload;

/// Tracks the GTM timestamp issue rate (used for GTM-mode staleness
/// estimation, paper §IV-B).
#[derive(Debug, Default, Clone, Copy)]
pub struct GtmRate {
    last_counter: u64,
    last_at: SimTime,
    pub per_sec: f64,
}

impl GtmRate {
    fn observe(&mut self, counter: u64, now: SimTime) {
        let dt = now.since(self.last_at).as_secs_f64();
        if dt > 0.0 {
            self.per_sec = (counter.saturating_sub(self.last_counter)) as f64 / dt;
        }
        self.last_counter = counter;
        self.last_at = now;
    }
}

impl GlobalDb {
    /// One synchronous RCP round for a region: collect then finish with no
    /// gathering window in between (used at load finish; the background
    /// event splits the two phases so a collector crash can land mid-round).
    pub(crate) fn rcp_round(&mut self, region_idx: usize, now: SimTime) {
        if let Some(collector_cn) = self.rcp_collect(region_idx, now) {
            let span = self
                .obs
                .tracer
                .begin(SpanKind::RcpRound, region_idx as u64, now);
            self.rcp_finish(region_idx, collector_cn, now);
            self.obs.tracer.end(span, now);
            self.obs
                .metrics
                .record(self.hot.rcp.round_us, SimDuration::ZERO);
        }
    }

    /// Phase 1 of an RCP collection round for a region (paper §IV-A): the
    /// collector CN gathers max commit timestamps from the replicas at its
    /// site. Returns the global index of the collecting CN, or `None` when
    /// every CN in the region is down (round skipped).
    ///
    /// The collector election refreshes from node health first: if the
    /// current collector CN died, the next alive CN in the region takes
    /// over (a collector failover).
    pub fn rcp_collect(&mut self, region_idx: usize, _now: SimTime) -> Option<usize> {
        let region = self.regions[region_idx];
        let region_cns: Vec<usize> = (0..self.cns.len())
            .filter(|&i| self.cns[i].region == region)
            .collect();
        let alive: Vec<bool> = region_cns
            .iter()
            .map(|&cn| !self.topo.is_node_down(self.cns[cn].node))
            .collect();
        if self.collectors[region_idx].refresh(&alive).is_some() {
            self.stats.collector_failovers += 1;
        }
        let collector_slot = self.collectors[region_idx].collector()?;
        // Report every replica located in this region.
        let mut slot = 0u32;
        for shard in &self.shards {
            for replica in &shard.replicas {
                if replica.region == region {
                    self.rcp[region_idx].report(slot, replica.applier.max_commit_ts());
                    self.plane.account(RpcKind::RcpGather, region, region, 64);
                }
                slot += 1;
            }
        }
        Some(region_cns[collector_slot])
    }

    /// Phase 2: the collector computes `min` over the gathered reports and
    /// distributes it to the region's CNs. If the collector crashed since
    /// phase 1, the round is abandoned — CNs keep their previous RCP, so
    /// the value every client observes stays monotone.
    pub fn rcp_finish(&mut self, region_idx: usize, collector_cn: usize, now: SimTime) {
        let region = self.regions[region_idx];
        if self.topo.is_node_down(self.cns[collector_cn].node) {
            self.stats.rcp_rounds_abandoned += 1;
            return;
        }
        let rcp = self.rcp[region_idx].compute();
        // Distribute to the region's alive CNs (monotone adoption).
        for i in 0..self.cns.len() {
            if self.cns[i].region == region && !self.topo.is_node_down(self.cns[i].node) {
                self.cns[i].rcp = self.cns[i].rcp.max(rcp);
                self.plane
                    .account(RpcKind::RcpDistribute, region, region, 16);
            }
        }
        self.stats.rcp_rounds += 1;
        // Track the GTM issue rate for GTM-mode staleness estimation.
        let counter = self.gtm.current().0;
        if region_idx == 0 {
            self.gtm_rate.observe(counter, now);
        }
    }

    /// How long the collector spends gathering replica reports: the
    /// slowest nominal round trip to a replica at its site. The background
    /// RCP event schedules the finish phase this far after the collect
    /// phase, which is exactly the window a collector crash can hit.
    pub fn rcp_gather_delay(&self, region_idx: usize, collector_cn: usize) -> SimDuration {
        let region = self.regions[region_idx];
        let cn_node = self.cns[collector_cn].node;
        let mut delay = SimDuration::from_micros(50);
        for shard in &self.shards {
            for replica in &shard.replicas {
                if replica.region == region {
                    delay = delay.max(self.topo.nominal_rtt(cn_node, replica.node));
                }
            }
        }
        delay
    }

    /// Clock-health watchdog (paper §III-A / Fig. 3): if any CN reports an
    /// unhealthy clock while the cluster runs in GClock mode, fall back to
    /// centralized GTM mode online. Returns true if a transition started.
    pub(crate) fn clock_health_check(&mut self) -> bool {
        if self.orchestrator.in_progress() {
            return false;
        }
        let in_gclock = self.cns.iter().any(|c| c.tm.mode == TmMode::GClock);
        let unhealthy = self.cns.iter().any(|c| !c.tm.gclock.is_healthy());
        in_gclock && unhealthy
    }

    /// Send a heartbeat transaction to every shard so replica max-commit
    /// timestamps advance even when idle (paper §IV-A).
    pub(crate) fn heartbeat(&mut self, now: SimTime) {
        // CN 0 (or the first alive CN) drives heartbeats.
        let Some(cn_idx) = (0..self.cns.len()).find(|&i| !self.topo.is_node_down(self.cns[i].node))
        else {
            return;
        };
        self.sync_cn_clock(cn_idx, now);
        // Modes that stamp through the GTM can't heartbeat while it is
        // down (fault injection); GClock heartbeats are unaffected.
        let gtm_down = self.topo.is_node_down(self.gtm_node);
        let ts = match self.cns[cn_idx].tm.mode {
            TmMode::GClock => {
                let ts = self.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.gtm.observe_commit(ts);
                ts
            }
            TmMode::Gtm => {
                if gtm_down {
                    return;
                }
                match self.gtm.commit_gtm() {
                    Ok((ts, _)) => ts,
                    Err(_) => return,
                }
            }
            TmMode::Dual => {
                if gtm_down {
                    return;
                }
                let g = self.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.gtm.commit_dual(g)
            }
        };
        let txn = self.next_txn_id(cn_idx);
        for shard in &mut self.shards {
            shard
                .log
                .append(now, txn, RedoPayload::Heartbeat { commit_ts: ts });
        }
        self.stats.heartbeats_sent += 1;
    }

    /// Rebuild the per-region RCP calculators after replica membership
    /// changes (promotion / permanent removal). CN-visible RCP values stay
    /// monotone because CNs only ever adopt larger values.
    pub(crate) fn rebuild_rcp_groups(&mut self) {
        for (region_idx, &region) in self.regions.iter().enumerate() {
            let mut expected = Vec::new();
            let mut slot = 0u32;
            for shard in &self.shards {
                for replica in &shard.replicas {
                    if replica.region == region {
                        expected.push(slot);
                    }
                    slot += 1;
                }
            }
            self.rcp[region_idx] = gdb_consistency::RcpCalculator::new(expected);
        }
    }

    /// Vacuum primaries up to the cluster-wide minimum RCP (safe horizon:
    /// every replica and every client snapshot is at or above it), trim
    /// shard shipping logs past the durable-consumer floor, and compact
    /// arenas under memory pressure.
    pub(crate) fn vacuum(&mut self) -> usize {
        // Memory-pressure compaction runs even before the first RCP
        // advance (bulk load can blow the soft limit long before any
        // vacuum horizon exists).
        if let Some(limit) = self.config.arena_soft_limit_bytes {
            for s in &mut self.shards {
                if s.storage.resident_bytes() > limit {
                    s.storage.compact();
                    self.stats.pressure_compactions += 1;
                }
                for replica in &mut s.replicas {
                    if replica.applier.storage.resident_bytes() > limit {
                        replica.applier.storage.compact();
                        self.stats.pressure_compactions += 1;
                    }
                }
            }
        }

        // Shard-log trimming: every record below the minimum resume
        // point over the shard's replicas *and* its in-flight migration
        // catch-ups is durably consumed and can never be re-requested
        // (crash rewinds go to the applier resume point, and in-flight
        // delivery events carry their records by value).
        for (si, s) in self.shards.iter_mut().enumerate() {
            let mut floor = s.log.sealed_head();
            for replica in &s.replicas {
                floor = floor.min(replica.applier.resume_from());
            }
            for m in &self.migrations {
                if m.shard == si {
                    floor = floor.min(m.applier.resume_from());
                }
            }
            self.stats.redo_records_trimmed += s.log.trim_shipped(floor) as u64;
        }

        let horizon = self
            .rcp
            .iter()
            .map(|r| r.current())
            .min()
            .unwrap_or(Timestamp::ZERO);
        if horizon == Timestamp::ZERO {
            return 0;
        }
        let h = horizon.prev();
        self.shards
            .iter_mut()
            .map(|s| {
                let mut removed = s.storage.vacuum(h);
                // Replicas vacuum at the same horizon: every client
                // snapshot (RCP-gated) is at or above it.
                for replica in &mut s.replicas {
                    removed += replica.applier.storage.vacuum(h);
                }
                removed
            })
            .sum()
    }
}

// ---- Recurring event functions ------------------------------------------

pub(crate) fn rcp_event(w: &mut GlobalDb, sim: &mut CoreSim, region: usize) {
    if w.config.rcp_two_phase {
        // Two-phase round: gather replica reports now, compute +
        // distribute after the gathering round trips. The gap is a real
        // vulnerability window — a collector crash in between abandons
        // the round. The round's span (and latency) covers collect
        // through finish; the span id rides in the finish event.
        if let Some(collector_cn) = w.rcp_collect(region, sim.now()) {
            let start = sim.now();
            let span = w.obs.tracer.begin(SpanKind::RcpRound, region as u64, start);
            let gather = w.rcp_gather_delay(region, collector_cn);
            sim.schedule_event_after(
                gather,
                CoreEvent::RcpFinish {
                    region,
                    collector_cn,
                    span,
                    start,
                },
            );
        }
    } else {
        w.rcp_round(region, sim.now());
    }
    let interval = w.config.rcp_interval;
    sim.schedule_event_after(interval, CoreEvent::RcpRound { region });
}

pub(crate) fn rcp_finish_event(
    w: &mut GlobalDb,
    sim: &mut CoreSim,
    region: usize,
    collector_cn: usize,
    span: Option<SpanId>,
    start: SimTime,
) {
    let now = sim.now();
    w.rcp_finish(region, collector_cn, now);
    w.obs.tracer.end(span, now);
    w.obs.metrics.record(w.hot.rcp.round_us, now.since(start));
}

pub(crate) fn heartbeat_event(w: &mut GlobalDb, sim: &mut CoreSim) {
    w.heartbeat(sim.now());
    // The heartbeat doubles as the clock-health watchdog: a failed clock
    // triggers the online fallback to GTM mode (Fig. 3).
    if w.clock_health_check() {
        crate::transition::start_transition(w, sim, gdb_txnmgr::TransitionDirection::ToGtm);
    }
    let interval = w.config.heartbeat_interval;
    sim.schedule_event_after(interval, CoreEvent::Heartbeat);
}

pub(crate) fn vacuum_event(w: &mut GlobalDb, sim: &mut CoreSim) {
    let removed = w.vacuum();
    w.stats.versions_vacuumed += removed as u64;
    let Some(interval) = w.config.vacuum_interval else {
        return;
    };
    sim.schedule_event_after(interval, CoreEvent::Vacuum);
}
