//! Scale-out hot-path benchmark: 256 shards, 5 regions, 10⁵ terminals.
//!
//! Two artifacts in one `gdb-bench/v1` bundle:
//!
//! * **`scale`** (gated) — the routing fast path. A fixed-seed routing
//!   script (epoch checks, primary lookups, periodic nearest-shard
//!   picks, synchronized epoch bumps that force rebuilds) extracted
//!   from a real scale-tier cluster is driven through both routers:
//!   the flat [`RouteTable`] with shared-Zipf terminals and pooled
//!   scratch (*fast*) vs the frozen [`MapRouteTable`] map walk with
//!   per-terminal Zipf setup and per-op scratch allocation (*legacy*,
//!   the pre-table behavior). An FNV digest over every routing decision
//!   asserts the two made identical calls; the gate then enforces the
//!   machine-local ops/s ratio (`wall_floor` 2×) and the lower-is-
//!   better `workload.terminal_bytes` leg (allocator bytes charged per
//!   terminal).
//! * **`scale_cluster`** (informational, no baseline series) — the same
//!   cluster runs the closed-loop TPC-C + Zipf-sysbench mix through the
//!   real storage path, reporting virtual throughput, counting-
//!   allocator peak footprint, and bytes per terminal.
//!
//! Knobs (defaults are the full scale tier; CI runs a reduced shape):
//! `GDB_SCALE_SHARDS` (256), `GDB_SCALE_REGIONS` (5),
//! `GDB_SCALE_TERMINALS` (100 000), `GDB_SCALE_KEYS` (2048),
//! `GDB_SCALE_EPOCHS` (8), `GDB_SCALE_OPS` (8 per terminal per epoch),
//! `GDB_SCALE_MOVES` (8 primaries per bump), `GDB_SCALE_CLUSTER_MS`
//! (1000 measured virtual ms), `GDB_SCALE_THINK_MS` (250).
//! Regenerate the baseline with `scripts/regen_bench.sh`.

use gdb_bench::{json_out_path, print_table, series_from_run};
use gdb_obs::{
    bundle, BenchArtifact, BenchSeries, HistSummary, MetricsRegistry, NetStats,
    WALL_ALLOC_FLOOR_KEY, WALL_ALLOC_METRIC_KEY, WALL_CLOCK_KEY, WALL_FLOOR_KEY,
};
use gdb_router::{MapRouteTable, RouteTable};
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{NetNodeId, SimDuration};
use gdb_workloads::driver::{run_workload, KeyDistribution, KeySampler, RunConfig, Workload};
use gdb_workloads::sysbench::{SysbenchMode, SysbenchScale, SysbenchWorkload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use globaldb::{Cluster, ClusterConfig, GdbResult, SimTime, TxnOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

// ---- Counting allocator with a live-bytes high-water mark -----------------
// Besides allocation counts/bytes (the per-terminal state leg), the scale
// tier cares about *peak footprint*: 10⁵ terminals must not pin unbounded
// heap. `dealloc` subtracts, so LIVE tracks resident bytes and PEAK their
// high-water mark.

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn reset_peak() {
    PEAK_BYTES.store(live_bytes(), Ordering::Relaxed);
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

const SEED: u64 = 42;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

#[derive(Clone, Copy)]
struct Params {
    shards: usize,
    regions: usize,
    terminals: usize,
    keys: i64,
    epochs: usize,
    ops: usize,
    moves: usize,
    cluster_ms: u64,
    think_ms: u64,
}

impl Params {
    fn from_env() -> Self {
        Params {
            shards: env_usize("GDB_SCALE_SHARDS", 256),
            regions: env_usize("GDB_SCALE_REGIONS", 5),
            terminals: env_usize("GDB_SCALE_TERMINALS", 100_000),
            keys: env_usize("GDB_SCALE_KEYS", 2_048) as i64,
            epochs: env_usize("GDB_SCALE_EPOCHS", 8),
            ops: env_usize("GDB_SCALE_OPS", 8),
            moves: env_usize("GDB_SCALE_MOVES", 8),
            cluster_ms: env_usize("GDB_SCALE_CLUSTER_MS", 1_000) as u64,
            think_ms: env_usize("GDB_SCALE_THINK_MS", 250) as u64,
        }
    }
}

// ---- The routing script ---------------------------------------------------

/// Key → shard, the same pure hash both paths use.
#[inline]
fn shard_of(key: i64, shards: usize) -> usize {
    ((key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) as usize % shards
}

/// FNV-1a fold of one routing decision.
#[inline]
fn fold(digest: u64, v: u64) -> u64 {
    (digest ^ v).wrapping_mul(0x1000_0000_01b3)
}

/// The frozen pre-cache Zipf terminal: recomputes the normalization
/// constants at construction — the O(keys) cost every terminal paid
/// before `zipf_constants` — and draws with the same Gray et al.
/// approximation, so its key sequence is bit-identical to the shared
/// sampler's.
struct LegacyZipf {
    n: i64,
    theta: f64,
    alpha: f64,
    eta: f64,
    zetan: f64,
}

impl LegacyZipf {
    fn new(n: i64, theta: f64) -> Self {
        let zeta = |n: i64| (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum::<f64>();
        let zetan = zeta(n);
        let zeta2 = zeta(n.min(2));
        LegacyZipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zetan,
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            1
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            2
        } else {
            let r = 1.0 + self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
            (r as i64).clamp(1, self.n)
        }
    }
}

/// One epoch bump of the script: the primaries that move and where to.
struct EpochBump {
    moves: Vec<(usize, NetNodeId)>,
}

/// Deterministic move schedule: each bump relocates `moves` primaries
/// onto other shards' (original) primary nodes — every target is a live
/// data node of the extracted topology.
fn synth_bumps(placement: &[(NetNodeId, u64)], p: &Params) -> Vec<EpochBump> {
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x5ca1_eb0b);
    (0..p.epochs)
        .map(|_| EpochBump {
            moves: (0..p.moves.min(p.shards))
                .map(|_| {
                    let s = rng.gen_range(0..p.shards);
                    let donor = rng.gen_range(0..p.shards);
                    (s, placement[donor].0)
                })
                .collect(),
        })
        .collect()
}

struct RouteRun {
    ops: u64,
    stale: u64,
    digest: u64,
    wall: std::time::Duration,
    alloc_bytes: u64,
}

const ZIPF_THETA: f64 = 0.99;
/// Every Nth op also asks for the CN's nearest shard (the read-only
/// anchor pick) — the O(shards) scan of the legacy path.
const NEAREST_EVERY: usize = 16;

/// Drive the routing script through one router. `fast` selects the flat
/// table + shared sampler + pooled scratch; otherwise the frozen map
/// walk + per-terminal setup + per-op allocation.
fn run_routing(
    fast: bool,
    placement: &[(NetNodeId, u64)],
    cns: &[NetNodeId],
    rtt: &impl Fn(NetNodeId, NetNodeId) -> SimDuration,
    bumps: &[EpochBump],
    p: &Params,
) -> RouteRun {
    let bytes0 = alloc_bytes();
    let start = std::time::Instant::now();

    let mut placement = placement.to_vec();
    let mut version = 0u64;
    let mut flat = fast.then(|| RouteTable::build(version, &placement, cns, rtt));
    let mut map = (!fast).then(|| MapRouteTable::build(version, &placement, cns));

    // Terminal state. Fast: one shared sampler (cache-backed) and one
    // pooled scratch buffer. Legacy: every terminal rebuilds the Zipf
    // constants and allocates fresh per-op scratch.
    let shared =
        fast.then(|| KeySampler::new(KeyDistribution::Zipfian { theta: ZIPF_THETA }, p.keys));
    let legacy: Vec<LegacyZipf> = if fast {
        Vec::new()
    } else {
        (0..p.terminals)
            .map(|_| LegacyZipf::new(p.keys, ZIPF_THETA))
            .collect()
    };
    let mut rngs: Vec<SmallRng> = (0..p.terminals)
        .map(|t| SmallRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9e3779b9)))
        .collect();
    let mut route_epoch = vec![0u64; p.terminals];
    let mut pooled: Vec<i64> = Vec::with_capacity(8);

    let mut ops = 0u64;
    let mut stale = 0u64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for bump in bumps {
        for t in 0..p.terminals {
            let rng = &mut rngs[t];
            for i in 0..p.ops {
                let key = match &shared {
                    Some(s) => s.sample(rng),
                    None => legacy[t].sample(rng),
                };
                let shard = shard_of(key, p.shards);
                let check = match (&flat, &map) {
                    (Some(f), _) => f.check_epoch(shard, route_epoch[t]),
                    (_, Some(m)) => m.check_epoch(shard, route_epoch[t]),
                    _ => unreachable!(),
                };
                let primary = match check {
                    Ok(node) => node,
                    Err(owner) => {
                        // One retryable stale-route reject: refresh the
                        // terminal's epoch and retry exactly once.
                        stale += 1;
                        digest = fold(digest, 0xdead ^ owner);
                        route_epoch[t] = version;
                        match (&flat, &map) {
                            (Some(f), _) => f.check_epoch(shard, route_epoch[t]),
                            (_, Some(m)) => m.check_epoch(shard, route_epoch[t]),
                            _ => unreachable!(),
                        }
                        .expect("retry at the current epoch must route")
                    }
                };
                if i % NEAREST_EVERY == 0 {
                    let cn = t % cns.len();
                    let near = match (&flat, &map) {
                        (Some(f), _) => f.nearest(cn),
                        (_, Some(m)) => m.nearest(cn, rtt),
                        _ => unreachable!(),
                    };
                    digest = fold(digest, near as u64);
                }
                // Per-op scratch: the fast path reuses one pooled
                // buffer; the legacy path allocates fresh, as the
                // pre-PR terminals did.
                if fast {
                    pooled.clear();
                    pooled.push(key);
                    pooled.push(primary.0 as i64);
                    std::hint::black_box(&pooled);
                } else {
                    let mut fresh: Vec<i64> = Vec::with_capacity(8);
                    fresh.push(key);
                    fresh.push(primary.0 as i64);
                    std::hint::black_box(&fresh);
                }
                digest = fold(digest, key as u64);
                digest = fold(digest, ((shard as u64) << 32) | primary.0 as u64);
                ops += 1;
            }
        }
        // Synchronized cutover: apply the batch, bump the epoch once,
        // rebuild whichever router is live.
        version += 1;
        for &(s, node) in &bump.moves {
            placement[s] = (node, version);
        }
        if let Some(f) = &mut flat {
            *f = RouteTable::build(version, &placement, cns, rtt);
        }
        if let Some(m) = &mut map {
            *m = MapRouteTable::build(version, &placement, cns);
        }
        digest = fold(digest, version);
    }

    RouteRun {
        ops,
        stale,
        digest,
        wall: start.elapsed(),
        alloc_bytes: alloc_bytes() - bytes0,
    }
}

fn best_of(rounds: u32, f: impl Fn() -> RouteRun) -> RouteRun {
    let mut best = f();
    for _ in 1..rounds {
        let r = f();
        if r.wall < best.wall {
            best = r;
        }
    }
    best
}

fn routing_series(label: &str, r: &RouteRun, p: &Params) -> BenchSeries {
    let ops_s = r.ops as f64 / r.wall.as_secs_f64().max(1e-9);
    let per_terminal = r.alloc_bytes as f64 / p.terminals as f64;
    let mut reg = MetricsRegistry::default();
    reg.set_counter("scale.routed_ops", r.ops);
    reg.set_counter("scale.stale_route_rejects", r.stale);
    reg.set_counter("scale.wall_ms", r.wall.as_millis() as u64);
    reg.set_counter("scale.alloc_bytes", r.alloc_bytes);
    reg.set_counter("scale.digest", r.digest);
    reg.gauge("scale.ops_per_sec", ops_s);
    reg.gauge(gdb_workloads::metrics::TERMINAL_BYTES, per_terminal);
    BenchSeries {
        label: label.into(),
        throughput_txn_s: ops_s,
        tpmc: 0.0,
        commits: r.ops,
        aborts: 0,
        latency: HistSummary::of(&LatencyHistogram::bounded()),
        phases: Default::default(),
        net: NetStats::default(),
        metrics: reg.snapshot(),
    }
}

// ---- The cluster leg ------------------------------------------------------

/// TPC-C on even terminals, Zipf-skewed sysbench point ops on odd ones —
/// the scale tier's mixed tenant population over one cluster.
struct MixWorkload {
    tpcc: TpccWorkload,
    sysbench: SysbenchWorkload,
}

impl Workload for MixWorkload {
    fn setup(&mut self, cluster: &mut Cluster) -> GdbResult<()> {
        self.tpcc.setup(cluster)?;
        self.sysbench.setup(cluster)
    }

    fn run_one(
        &mut self,
        cluster: &mut Cluster,
        terminal: usize,
        at: SimTime,
    ) -> (&'static str, GdbResult<TxnOutcome>) {
        if terminal.is_multiple_of(2) {
            self.tpcc.run_one(cluster, terminal / 2, at)
        } else {
            self.sysbench.run_one(cluster, terminal / 2, at)
        }
    }
}

fn main() {
    let p = Params::from_env();
    eprintln!(
        "scale_bench: {} shards, {} regions, {} terminals, {} keys, {} epochs x {} ops, best of 3",
        p.shards, p.regions, p.terminals, p.keys, p.epochs, p.ops
    );

    // One real scale-tier cluster: the routing script's placement and
    // RTT source, then the substrate for the workload leg.
    let mut cluster =
        Cluster::new(ClusterConfig::globaldb_scale(p.regions, p.shards).with_seed(SEED));
    let placement: Vec<(NetNodeId, u64)> = cluster
        .db
        .shards()
        .iter()
        .map(|s| (s.primary, s.owner_epoch))
        .collect();
    let cns: Vec<NetNodeId> = cluster.db.cns().iter().map(|c| c.node).collect();
    let bumps = synth_bumps(&placement, &p);

    let (fast, legacy) = {
        let topo = cluster.db.topo();
        let rtt = |a: NetNodeId, b: NetNodeId| topo.nominal_rtt(a, b);
        // Warmup (also primes the process-wide Zipf cache the fast path
        // is entitled to), then best-of-3 measured rounds.
        run_routing(true, &placement, &cns, &rtt, &bumps, &p);
        run_routing(false, &placement, &cns, &rtt, &bumps, &p);
        (
            best_of(3, || run_routing(true, &placement, &cns, &rtt, &bumps, &p)),
            best_of(3, || run_routing(false, &placement, &cns, &rtt, &bumps, &p)),
        )
    };

    // Differential gate: both routers saw the identical op stream and
    // made the identical decisions (keys, shards, primaries, nearest
    // picks, stale rejects), or the bench refuses to report.
    assert_eq!(
        fast.digest, legacy.digest,
        "routing decision divergence between flat table and map walk"
    );
    assert_eq!(fast.ops, legacy.ops);
    assert_eq!(fast.stale, legacy.stale);

    let ops_s = |r: &RouteRun| r.ops as f64 / r.wall.as_secs_f64().max(1e-9);
    let speedup = ops_s(&fast) / ops_s(&legacy);
    let per_t = |r: &RouteRun| r.alloc_bytes as f64 / p.terminals as f64;
    let state_improvement = per_t(&legacy) / per_t(&fast).max(1e-9);

    let mut scale = BenchArtifact::new("scale");
    scale.config_kv(WALL_CLOCK_KEY, "true");
    // Gate floors: ≥2× routed ops/s over the map walk, ≥4× fewer
    // allocator bytes per terminal — machine-local ratios.
    scale.config_kv(WALL_FLOOR_KEY, "2");
    scale.config_kv(
        WALL_ALLOC_METRIC_KEY,
        gdb_workloads::metrics::TERMINAL_BYTES,
    );
    scale.config_kv(WALL_ALLOC_FLOOR_KEY, "4");
    scale.config_kv("shards", p.shards);
    scale.config_kv("regions", p.regions);
    scale.config_kv("terminals", p.terminals);
    scale.config_kv("keys", p.keys);
    scale.config_kv("epochs", p.epochs);
    scale.config_kv("ops_per_terminal", p.ops);
    scale.config_kv("moves_per_epoch", p.moves);
    scale.config_kv("seed", SEED);
    scale.series.push(routing_series("fast", &fast, &p));
    scale.series.push(routing_series("legacy", &legacy, &p));

    print_table(
        "scale routing hot path (wall clock)",
        &[
            "path",
            "ops/s",
            "wall ms",
            "bytes/terminal",
            "stale rejects",
        ],
        &[
            vec![
                "fast (flat table + shared zipf + pooled)".into(),
                format!("{:.0}k", ops_s(&fast) / 1e3),
                format!("{:.1}", fast.wall.as_secs_f64() * 1e3),
                format!("{:.0}", per_t(&fast)),
                fast.stale.to_string(),
            ],
            vec![
                "legacy (map walk + per-terminal zipf)".into(),
                format!("{:.0}k", ops_s(&legacy) / 1e3),
                format!("{:.1}", legacy.wall.as_secs_f64() * 1e3),
                format!("{:.0}", per_t(&legacy)),
                legacy.stale.to_string(),
            ],
        ],
    );
    println!(
        "routing speedup: {speedup:.2}x, terminal-state improvement: {state_improvement:.1}x fewer bytes"
    );

    // ---- Cluster leg: the mix through the real storage path. ----
    let live0 = live_bytes();
    reset_peak();
    let mut mix = MixWorkload {
        tpcc: TpccWorkload::new(
            TpccScale {
                warehouses: (p.shards as i64 / 4).max(2),
                districts_per_warehouse: 2,
                customers_per_district: 30,
                items: 200,
                initial_orders_per_district: 20,
            },
            TpccMix::standard(),
            SEED,
        ),
        sysbench: SysbenchWorkload::new(
            SysbenchScale {
                tables: 8,
                rows_per_table: 10_000,
            },
            SysbenchMode::PointSelect,
            SEED,
        )
        .with_key_dist(KeyDistribution::Zipfian { theta: ZIPF_THETA }),
    };
    mix.setup(&mut cluster).expect("mix setup");
    let run = RunConfig {
        terminals: p.terminals,
        duration: SimDuration::from_millis(p.cluster_ms),
        warmup: SimDuration::from_millis(p.cluster_ms / 4),
        think_time: SimDuration::from_millis(p.think_ms),
    };
    let report = run_workload(&mut cluster, &mut mix, run);
    let peak = peak_bytes().saturating_sub(live0);
    let peak_per_terminal = peak as f64 / p.terminals as f64;

    let mut series = series_from_run("scale", &mut cluster, &report);
    series.metrics.metrics.insert(
        "scale.peak_footprint_bytes".into(),
        gdb_obs::Metric::Counter(peak),
    );
    series.metrics.metrics.insert(
        gdb_workloads::metrics::TERMINAL_BYTES.into(),
        gdb_obs::Metric::Gauge(peak_per_terminal),
    );

    let mut scale_cluster = BenchArtifact::new("scale_cluster");
    // Wall-clock-local and without a baseline series: informational
    // (the gated ratios live in the `scale` artifact above).
    scale_cluster.config_kv(WALL_CLOCK_KEY, "true");
    scale_cluster.config_kv("shards", p.shards);
    scale_cluster.config_kv("regions", p.regions);
    scale_cluster.config_kv("terminals", p.terminals);
    scale_cluster.config_kv("cluster_ms", p.cluster_ms);
    scale_cluster.config_kv("think_ms", p.think_ms);
    scale_cluster.config_kv("seed", SEED);
    scale_cluster.series.push(series);

    print_table(
        "scale cluster (virtual time, real storage path)",
        &["metric", "value"],
        &[
            vec![
                "txn/s (virtual)".into(),
                format!("{:.0}", report.throughput_per_sec()),
            ],
            vec!["commits".into(), report.total_commits().to_string()],
            vec!["aborts".into(), report.total_aborts().to_string()],
            vec![
                "peak footprint".into(),
                format!("{:.1} MiB", peak as f64 / (1024.0 * 1024.0)),
            ],
            vec![
                "bytes/terminal (peak)".into(),
                format!("{peak_per_terminal:.0}"),
            ],
        ],
    );

    if let Some(path) = json_out_path() {
        let doc = bundle(&[scale, scale_cluster]).to_pretty();
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
