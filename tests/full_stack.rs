//! Workspace-level integration tests: exercise the umbrella crate's public
//! API across every subsystem at once (SQL → txn management → replication
//! → RCP → ROR), including invariants under randomized concurrent load.

use gaussdb_global::{
    Cluster, ClusterConfig, Datum, GdbError, ReplicationMode, RoutingPolicy, SimDuration, SimTime,
    TmMode, TransitionDirection,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// A bank cluster with n accounts of `initial` each.
fn bank(config: ClusterConfig, n: i64, initial: i64) -> Cluster {
    let mut c = Cluster::new(config);
    c.ddl(
        "CREATE TABLE bank (id INT NOT NULL, balance DECIMAL, PRIMARY KEY (id)) \
         DISTRIBUTE BY HASH(id)",
    )
    .unwrap();
    let table = c.db.catalog().table_by_name("bank").unwrap().id;
    c.bulk_load(
        table,
        (0..n)
            .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Decimal(initial)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c
}

/// Money conservation under randomized concurrent transfers, with 2PC
/// across shards and occasional aborts — on every TM mode.
#[test]
fn money_conservation_across_modes() {
    for (label, mode) in [("gtm", TmMode::Gtm), ("gclock", TmMode::GClock)] {
        let mut config = ClusterConfig::globaldb_three_city();
        config.tm_mode = mode;
        let mut c = bank(config, 60, 1_000);
        let read = c
            .prepare("SELECT balance FROM bank WHERE id = ? FOR UPDATE")
            .unwrap();
        let write = c
            .prepare("UPDATE bank SET balance = ? WHERE id = ?")
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut committed = 0;
        for i in 0..150u64 {
            let from = rng.gen_range(0..60i64);
            let mut to = rng.gen_range(0..59i64);
            if to >= from {
                to += 1;
            }
            let amount = rng.gen_range(1..200i64);
            let abort_on_purpose = rng.gen_ratio(1, 10);
            let res = c.run_transaction(
                (i % 3) as usize,
                t(10) + SimDuration::from_millis(i * 3),
                false,
                false,
                |txn| {
                    let out = txn.execute(&read, &[Datum::Int(from)])?;
                    let bal = out.rows()[0].0[0].as_decimal().unwrap();
                    txn.execute(&write, &[Datum::Decimal(bal - amount), Datum::Int(from)])?;
                    let out = txn.execute(&read, &[Datum::Int(to)])?;
                    let tb = out.rows()[0].0[0].as_decimal().unwrap();
                    txn.execute(&write, &[Datum::Decimal(tb + amount), Datum::Int(to)])?;
                    if abort_on_purpose {
                        return Err(GdbError::TxnAborted("chaos".into()));
                    }
                    Ok(())
                },
            );
            if res.is_ok() {
                committed += 1;
            }
        }
        assert!(committed > 100, "{label}: too few commits");
        c.run_until(c.now() + SimDuration::from_secs(1));
        let (out, _) = c
            .execute_sql(0, c.now(), "SELECT SUM(balance) FROM bank", &[])
            .unwrap();
        assert_eq!(
            out.rows()[0].0[0].as_decimal().unwrap(),
            60 * 1_000,
            "{label}: money not conserved"
        );
    }
}

/// Replicas converge to exactly the primary state after quiescing, and ROR
/// reads then return identical results to primary reads.
#[test]
fn replica_convergence_equals_primary() {
    let mut c = bank(ClusterConfig::globaldb_three_city(), 40, 500);
    let upd = c
        .prepare("UPDATE bank SET balance = balance + ? WHERE id = ?")
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(9);
    for i in 0..120u64 {
        let id = rng.gen_range(0..40i64);
        let delta = rng.gen_range(-50..50i64);
        let _ = c.run_transaction(
            (i % 3) as usize,
            t(10) + SimDuration::from_millis(i * 2),
            false,
            true,
            |txn| {
                txn.execute(&upd, &[Datum::Decimal(delta), Datum::Int(id)])
                    .map(|_| ())
            },
        );
    }
    c.run_until(c.now() + SimDuration::from_secs(2));

    let sel = c.prepare("SELECT balance FROM bank WHERE id = ?").unwrap();
    for id in 0..40i64 {
        // Primary read.
        c.db.set_routing(RoutingPolicy::Primary);
        let ((), _) = c
            .run_transaction(1, c.now(), true, true, |txn| {
                let p = txn.execute(&sel, &[Datum::Int(id)])?;
                let _: () = assert_eq!(p.rows().len(), 1);
                Ok(())
            })
            .unwrap();
        let (primary_out, _) = c
            .execute_sql(
                1,
                c.now(),
                "SELECT balance FROM bank WHERE id = ?",
                &[Datum::Int(id)],
            )
            .unwrap();
        // Replica read.
        c.db.set_routing(RoutingPolicy::ReadOnReplica {
            freshness_bound: None,
        });
        let (ror_out, o) = c
            .execute_sql(
                1,
                c.now(),
                "SELECT balance FROM bank WHERE id = ?",
                &[Datum::Int(id)],
            )
            .unwrap();
        assert_eq!(primary_out.rows(), ror_out.rows(), "id {id}");
        let _ = o;
    }
}

/// Round-trip transition under concurrent writes: GTM → GClock → GTM, with
/// every write either committing or retrying — never corrupting state.
#[test]
fn transition_round_trip_under_load() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.tm_mode = TmMode::Gtm;
    let mut c = bank(config, 20, 100);
    let upd = c
        .prepare("UPDATE bank SET balance = balance + 1 WHERE id = ?")
        .unwrap();
    let mut commits = 0u64;
    let write = |c: &mut Cluster, ms: u64, id: i64, commits: &mut u64| {
        if c.run_transaction((id % 3) as usize, t(ms), false, true, |txn| {
            txn.execute(&upd, &[Datum::Int(id)]).map(|_| ())
        })
        .is_ok()
        {
            *commits += 1;
        }
    };
    for i in 0..10 {
        write(&mut c, 10 + i, i as i64 % 20, &mut commits);
    }
    c.start_transition(TransitionDirection::ToGClock);
    for i in 0..30 {
        write(&mut c, 30 + i * 2, i as i64 % 20, &mut commits);
    }
    c.run_until(t(1000));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGClock)
    );
    c.start_transition(TransitionDirection::ToGtm);
    for i in 0..30 {
        write(&mut c, 1010 + i * 2, i as i64 % 20, &mut commits);
    }
    c.run_until(t(2500));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGtm)
    );
    // Every commit is durable: the sum reflects exactly `commits` increments.
    let (out, _) = c
        .execute_sql(0, c.now(), "SELECT SUM(balance) FROM bank", &[])
        .unwrap();
    assert_eq!(
        out.rows()[0].0[0].as_decimal().unwrap(),
        20 * 100 + commits as i64,
        "committed increments must all be durable"
    );
    assert!(
        commits >= 65,
        "zero-downtime: most writes commit ({commits})"
    );
}

/// Synchronous remote-quorum replication means a region partition blocks
/// writes (no quorum), while async keeps committing — and heals cleanly.
#[test]
fn partition_behaviour_by_replication_mode() {
    // Async: writes keep committing during a partition.
    let mut c = bank(ClusterConfig::globaldb_three_city(), 10, 100);
    let regions = c.db.regions().to_vec();
    c.db.topo_mut().partition(regions[0], regions[1]);
    c.db.topo_mut().partition(regions[0], regions[2]);
    // A write to a shard homed in region 0, from the region-0 CN.
    let shard0_region = c.db.shards()[0].region;
    let cn0 = (0..3)
        .find(|&i| c.db.cns()[i].region == shard0_region)
        .unwrap();
    let table = c.db.catalog().table_by_name("bank").unwrap().clone();
    let id_on_shard0 = (0..10i64)
        .find(|&i| {
            table
                .shard_of_pk(&gdb_model::RowKey::single(i), c.db.shards().len() as u16)
                .0
                == 0
        })
        .expect("some id on shard 0");
    let upd0 = c
        .prepare("UPDATE bank SET balance = 1 WHERE id = ?")
        .unwrap();
    let res = c.run_transaction(cn0, t(10), false, true, |txn| {
        txn.execute(&upd0, &[Datum::Int(id_on_shard0)]).map(|_| ())
    });
    assert!(
        res.is_ok(),
        "async commit must survive a partition: {res:?}"
    );

    // Sync remote quorum: the same write cannot reach a remote replica.
    let mut config = ClusterConfig::globaldb_three_city();
    config.replication = ReplicationMode::SyncRemoteQuorum { quorum: 1 };
    let mut c2 = bank(config, 10, 100);
    let regions = c2.db.regions().to_vec();
    c2.db.topo_mut().partition(regions[0], regions[1]);
    c2.db.topo_mut().partition(regions[0], regions[2]);
    let upd = c2
        .prepare("UPDATE bank SET balance = 1 WHERE id = ?")
        .unwrap();
    let res = c2.run_transaction(cn0, t(10), false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(id_on_shard0)]).map(|_| ())
    });
    assert!(
        res.is_err(),
        "sync remote quorum must fail under a full partition"
    );
    // Heal and retry.
    c2.db.topo_mut().heal(regions[0], regions[1]);
    c2.db.topo_mut().heal(regions[0], regions[2]);
    let res = c2.run_transaction(cn0, t(50), false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(id_on_shard0)]).map(|_| ())
    });
    assert!(res.is_ok(), "heals cleanly: {res:?}");
}

/// Monotone reads: a client routed across different CNs never observes the
/// RCP snapshot move backwards (paper §IV-A's motivation for the
/// collector-CN design).
#[test]
fn ror_snapshots_are_monotone_across_cns() {
    let mut c = bank(ClusterConfig::globaldb_one_region(), 20, 100);
    let upd = c
        .prepare("UPDATE bank SET balance = balance + 1 WHERE id = ?")
        .unwrap();
    let sel = c.prepare("SELECT balance FROM bank WHERE id = 1").unwrap();
    let mut last_snapshot = gaussdb_global::Timestamp::ZERO;
    for i in 0..40u64 {
        let _ = c.run_transaction(0, t(20 + i * 10), false, true, |txn| {
            txn.execute(&upd, &[Datum::Int((i % 20) as i64)])
                .map(|_| ())
        });
        let cn = (i % 3) as usize; // client bounces across CNs
        let ((), o) = c
            .run_transaction(cn, t(25 + i * 10), true, true, |txn| {
                txn.execute(&sel, &[]).map(|_| ())
            })
            .unwrap();
        assert!(
            o.snapshot >= last_snapshot,
            "snapshot moved backwards: {:?} < {:?} at i={i}",
            o.snapshot,
            last_snapshot
        );
        last_snapshot = o.snapshot;
    }
}
