//! Bench artifact regression: a real TPC-C run serialises to the
//! gdb-bench/v1 schema and parses back to an identical artifact, with the
//! per-phase latency breakdown the fig6a baseline relies on.

use gdb_bench::{artifact, series_from_run, tpcc_run, BenchParams};
use gdb_workloads::driver::RunConfig;
use gdb_workloads::tpcc::{TpccMix, TpccScale};
use globaldb::{BenchArtifact, ClusterConfig, Json, SimDuration};

fn tiny_params() -> BenchParams {
    BenchParams {
        scale: TpccScale::tiny(),
        scale_name: "tiny",
        run: RunConfig {
            terminals: 4,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(200),
            think_time: SimDuration::from_millis(10),
        },
        seed: 42,
    }
}

#[test]
fn artifact_round_trips_through_json() {
    let params = tiny_params();
    let (mut cluster, report) = tpcc_run(
        ClusterConfig::globaldb_three_city(),
        &params,
        TpccMix::standard(),
        |_| {},
    );
    let mut art = artifact("figtest", &params);
    art.series
        .push(series_from_run("globaldb", &mut cluster, &report));

    let text = art.to_pretty();
    let parsed = BenchArtifact::from_json(&Json::parse(&text).expect("artifact is valid JSON"))
        .expect("artifact matches gdb-bench/v1");
    assert_eq!(parsed, art, "artifact did not round-trip through JSON");

    let s = &art.series[0];
    assert!(s.throughput_txn_s > 0.0);
    assert!(s.commits > 0);
    assert!(s.latency.count > 0 && s.latency.p99_us >= s.latency.p50_us);
    // The per-phase breakdown fig6a plots must be present and populated.
    for phase in ["snapshot_acquire", "execute", "prepare", "commit_wait"] {
        let h = s
            .phases
            .get(phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(h.count > 0, "empty phase {phase}");
    }
    // GClock clusters replicate asynchronously: the ack phase exists but
    // costs nothing, and real log-ship traffic shows up in net stats.
    assert!(s.phases.contains_key("replication_ack"));
    assert!(s.net.batches > 0 && s.net.wire_bytes > 0);
}
