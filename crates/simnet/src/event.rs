//! The discrete-event engine.
//!
//! A [`Sim<W>`] owns a priority queue of events, each a boxed closure that
//! runs against the world state `W` at a scheduled virtual time. Events
//! scheduled for the same instant fire in insertion order (a monotone
//! sequence number breaks ties), which makes runs fully deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue and virtual clock.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    executed: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute virtual time `at`. Scheduling in the
    /// past is clamped to "now" (the event still runs, immediately next).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `after` from now.
    pub fn schedule_after(
        &mut self,
        after: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) {
        self.schedule_at(self.now + after, f);
    }

    /// Run the single earliest event. Returns `false` if the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "time must be monotone");
                self.now = ev.at;
                self.executed += 1;
                (ev.f)(world, self);
                true
            }
            None => false,
        }
    }

    /// Run all events scheduled strictly before or at `until`. The clock is
    /// left at `until` even if the queue drains earlier.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.at <= until => {
                    let ev = self.queue.pop().expect("peeked");
                    self.now = ev.at;
                    self.executed += 1;
                    (ev.f)(world, self);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
    }

    /// Run events until the queue is empty (or `max_events` fire, as a
    /// runaway guard). Returns the number of events executed.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < max_events && self.step(world) {}
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(20), |w, s| {
            w.log.push((s.now().as_millis(), "b"))
        });
        sim.schedule_at(SimTime::from_millis(10), |w, s| {
            w.log.push((s.now().as_millis(), "a"))
        });
        sim.schedule_at(SimTime::from_millis(30), |w, s| {
            w.log.push((s.now().as_millis(), "c"))
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_time_fifo() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(SimTime::from_millis(5), move |w, s| {
                w.log.push((s.now().as_millis(), name))
            });
        }
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(1), |_, s| {
            s.schedule_after(SimDuration::from_millis(4), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "chained"));
            });
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(5, "chained")]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(10), |w, _| w.log.push((10, "in")));
        sim.schedule_at(SimTime::from_millis(50), |w, _| w.log.push((50, "out")));
        sim.run_until(&mut w, SimTime::from_millis(20));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_millis(10), |_, s| {
            // Try to schedule "before now" — must clamp, not panic.
            s.schedule_at(SimTime::from_millis(1), |w: &mut World, s| {
                w.log.push((s.now().as_millis(), "clamped"));
            });
        });
        sim.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(10, "clamped")]);
    }

    #[test]
    fn runaway_guard() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        // An event that perpetually reschedules itself.
        fn tick(w: &mut World, s: &mut Sim<World>) {
            w.log.push((s.now().as_millis(), "tick"));
            s.schedule_after(SimDuration::from_millis(1), tick);
        }
        sim.schedule_at(SimTime::ZERO, tick);
        let n = sim.run_to_completion(&mut w, 50);
        assert_eq!(n, 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always fire in (time, insertion) order regardless of the
        /// order they were scheduled in.
        #[test]
        fn events_fire_sorted(times in proptest::collection::vec(0u64..1_000, 1..50)) {
            struct W {
                fired: Vec<(u64, usize)>,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { fired: Vec::new() };
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, s| {
                    w.fired.push((s.now().as_micros(), i));
                });
            }
            sim.run_to_completion(&mut w, 10_000);
            prop_assert_eq!(w.fired.len(), times.len());
            // Non-decreasing times; ties broken by insertion order.
            for pair in w.fired.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0);
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1);
                }
            }
        }

        /// run_until(t) fires exactly the events at or before t and leaves
        /// the rest pending.
        #[test]
        fn run_until_is_a_clean_cut(
            times in proptest::collection::vec(0u64..1_000, 1..50),
            cut in 0u64..1_000,
        ) {
            struct W {
                count: usize,
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { count: 0 };
            for &t in &times {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut W, _| {
                    w.count += 1;
                });
            }
            sim.run_until(&mut w, SimTime::from_micros(cut));
            let expected = times.iter().filter(|&&t| t <= cut).count();
            prop_assert_eq!(w.count, expected);
            prop_assert_eq!(sim.pending(), times.len() - expected);
            prop_assert_eq!(sim.now(), SimTime::from_micros(cut));
        }
    }
}
