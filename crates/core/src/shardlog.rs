//! Virtual-time-ordered redo staging per shard.
//!
//! A transaction's whole logic executes at its start event, but the redo
//! records it produces belong at the *virtual times* of the operations
//! (PENDING_COMMIT at the first write, the commit record at the commit
//! instant). Staging records keyed by `(virtual time, tiebreak)` and
//! sealing them into the shipping [`RedoBuffer`] only up to the flush
//! boundary reconstructs the interleaving a real primary would write —
//! including commit records appearing out of timestamp order across
//! transactions, the case the paper's PENDING_COMMIT safeguard exists for.

use gdb_model::TxnId;
use gdb_simnet::SimTime;
use gdb_wal::{GroupCommitWal, Lsn, RedoBuffer, RedoPayload};
use std::collections::BTreeMap;

/// The redo log of one primary shard: a staging area ordered by virtual
/// time, the sealed shipping buffer, and the durable on-disk segment.
///
/// Sealing doubles as the group-commit boundary: every record sealed in
/// one `seal_upto`/`seal_all` call is framed into the durable
/// [`GroupCommitWal`] and the whole window is synced *once* at the end
/// of the call, instead of paying a per-transaction sync (and its
/// partial-tail-page rewrite) for each commit record.
#[derive(Debug)]
pub struct ShardLog {
    staging: BTreeMap<(SimTime, u64), (TxnId, RedoPayload)>,
    seq: u64,
    sealed: RedoBuffer,
    durable: GroupCommitWal,
    sealed_upto: SimTime,
}

impl Default for ShardLog {
    fn default() -> Self {
        ShardLog {
            staging: BTreeMap::new(),
            seq: 0,
            sealed: RedoBuffer::new(),
            // The seal call, not a record count, bounds the window: each
            // seal ends with one explicit sync over everything it framed.
            durable: GroupCommitWal::with_window(usize::MAX),
            sealed_upto: SimTime::ZERO,
        }
    }
}

impl ShardLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a record produced at virtual time `at`. `at` must be at or
    /// after the sealing boundary (events cannot produce records in the
    /// already-shipped past; the event engine guarantees this).
    pub fn append(&mut self, at: SimTime, txn: TxnId, payload: RedoPayload) {
        debug_assert!(
            at >= self.sealed_upto,
            "append at {at} behind seal boundary {}",
            self.sealed_upto
        );
        let key = (at.max(self.sealed_upto), self.seq);
        self.seq += 1;
        self.staging.insert(key, (txn, payload));
    }

    /// Seal all staged records with virtual time ≤ `upto` into the
    /// shipping buffer (assigning final LSNs in virtual-time order).
    /// Returns the number of records sealed.
    pub fn seal_upto(&mut self, upto: SimTime) -> usize {
        let mut sealed = 0;
        while let Some(entry) = self.staging.first_entry() {
            if entry.key().0 > upto {
                break;
            }
            let ((_, _), (txn, payload)) = entry.remove_entry();
            let lsn = self.sealed.head_lsn();
            self.durable.append_parts(lsn, txn, payload.as_view());
            self.durable.commit();
            self.sealed.append(txn, payload);
            sealed += 1;
        }
        if sealed > 0 {
            self.durable.sync();
        }
        self.sealed_upto = self.sealed_upto.max(upto);
        sealed
    }

    /// Seal every staged record regardless of apply instant, advancing the
    /// boundary only to `now`. Failover paths use this to cut the stream
    /// exactly at the primary's installed state: commit processing appends
    /// records (and installs versions) synchronously, so records staged
    /// with a *later* apply instant are already on the durable WAL — only
    /// their shipping cadence lay in the future. Later events may still
    /// append at virtual instants before the drained records' apply times;
    /// per-key ordering stays intact because row locks serialize same-key
    /// commits in event order.
    pub fn seal_all(&mut self, now: SimTime) -> usize {
        let mut sealed = 0;
        while let Some(entry) = self.staging.first_entry() {
            let ((_, _), (txn, payload)) = entry.remove_entry();
            let lsn = self.sealed.head_lsn();
            self.durable.append_parts(lsn, txn, payload.as_view());
            self.durable.commit();
            self.sealed.append(txn, payload);
            sealed += 1;
        }
        if sealed > 0 {
            self.durable.sync();
        }
        self.sealed_upto = self.sealed_upto.max(now);
        sealed
    }

    /// The sealed shipping buffer (shipping channels drain from here).
    pub fn sealed(&self) -> &RedoBuffer {
        &self.sealed
    }

    pub fn sealed_head(&self) -> Lsn {
        self.sealed.head_lsn()
    }

    /// Records still staged (not yet shippable).
    pub fn staged_len(&self) -> usize {
        self.staging.len()
    }

    /// The durable on-disk segment group commit writes into.
    pub fn durable(&self) -> &GroupCommitWal {
        &self.durable
    }

    /// Trim the sealed shipping buffer below `floor` — the minimum
    /// resume point over every consumer (replica appliers and in-flight
    /// migration catch-ups). The durable group-commit segment is never
    /// trimmed: it models the on-disk WAL, while the shipping buffer is
    /// the in-memory retention window this reclaims. Returns records
    /// dropped.
    pub fn trim_shipped(&mut self, floor: Lsn) -> usize {
        self.sealed.trim_to(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::Timestamp;

    fn commit(ts: u64) -> RedoPayload {
        RedoPayload::Commit {
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn sealing_orders_by_virtual_time_not_append_order() {
        let mut log = ShardLog::new();
        // T1 processed first but commits late (vtime 100).
        log.append(
            SimTime::from_millis(10),
            TxnId(1),
            RedoPayload::PendingCommit,
        );
        log.append(SimTime::from_millis(100), TxnId(1), commit(100));
        // T2 processed second, commits early (vtime 30).
        log.append(
            SimTime::from_millis(20),
            TxnId(2),
            RedoPayload::PendingCommit,
        );
        log.append(SimTime::from_millis(30), TxnId(2), commit(30));

        log.seal_upto(SimTime::from_millis(50));
        let order: Vec<(TxnId, bool)> = log
            .sealed()
            .iter()
            .map(|r| (r.txn, matches!(r.payload, RedoPayload::Commit { .. })))
            .collect();
        // Shipped so far: T1.pending, T2.pending, T2.commit — T1's commit
        // (vtime 100) is still unsealed. T1's tuples stay locked on the
        // replica exactly as the paper requires.
        assert_eq!(
            order,
            vec![(TxnId(1), false), (TxnId(2), false), (TxnId(2), true)]
        );
        assert_eq!(log.staged_len(), 1);

        log.seal_upto(SimTime::from_millis(100));
        assert_eq!(log.sealed().len(), 4);
        assert_eq!(log.staged_len(), 0);
    }

    #[test]
    fn equal_time_records_keep_append_order() {
        let mut log = ShardLog::new();
        let t = SimTime::from_millis(5);
        log.append(t, TxnId(1), RedoPayload::PendingCommit);
        log.append(t, TxnId(1), commit(7));
        log.seal_upto(t);
        let kinds: Vec<bool> = log
            .sealed()
            .iter()
            .map(|r| matches!(r.payload, RedoPayload::Commit { .. }))
            .collect();
        assert_eq!(kinds, vec![false, true]);
    }

    #[test]
    fn seal_boundary_is_monotone_and_idempotent() {
        let mut log = ShardLog::new();
        log.append(SimTime::from_millis(10), TxnId(1), commit(1));
        assert_eq!(log.seal_upto(SimTime::from_millis(10)), 1);
        assert_eq!(log.seal_upto(SimTime::from_millis(10)), 0);
        // A later event appending at exactly the boundary still works (it
        // seals on the next flush).
        log.append(SimTime::from_millis(10), TxnId(2), commit(2));
        assert_eq!(log.seal_upto(SimTime::from_millis(15)), 1);
    }

    #[test]
    fn seal_group_commits_durable_segment() {
        let mut log = ShardLog::new();
        for i in 0..10u64 {
            log.append(SimTime::from_millis(i), TxnId(i), commit(i));
        }
        // Two seal windows -> two fsyncs, not ten.
        log.seal_upto(SimTime::from_millis(4));
        log.seal_upto(SimTime::from_millis(9));
        assert_eq!(log.durable().fsyncs, 2);
        assert_eq!(log.durable().synced_txns, 10);
        assert_eq!(log.durable().unsynced_bytes(), 0);
        // The durable segment holds exactly the sealed records.
        let recs = gdb_wal::record::decode_all(log.durable().segment()).unwrap();
        let sealed: Vec<_> = log.sealed().iter().cloned().collect();
        assert_eq!(recs, sealed);
        // An empty seal window does not sync.
        log.seal_upto(SimTime::from_millis(20));
        assert_eq!(log.durable().fsyncs, 2);
    }

    #[test]
    fn trim_shipped_drops_below_floor_only() {
        let mut log = ShardLog::new();
        for i in 0..10u64 {
            log.append(SimTime::from_millis(i), TxnId(i), commit(i));
        }
        log.seal_upto(SimTime::from_millis(9));
        assert_eq!(log.trim_shipped(Lsn(6)), 6);
        // Total-ever count and head are unchanged; residency shrinks.
        assert_eq!(log.sealed().len(), 10);
        assert_eq!(log.sealed().resident_len(), 4);
        assert_eq!(log.sealed_head(), Lsn(10));
        // The untrimmed suffix still ships with correct LSNs.
        let batch = log.sealed().batch_from(Lsn(6), 100);
        let lsns: Vec<u64> = batch.records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, vec![6, 7, 8, 9]);
        // The durable segment is untouched: all 10 records remain.
        let recs = gdb_wal::record::decode_all(log.durable().segment()).unwrap();
        assert_eq!(recs.len(), 10);
        // Sealing after a trim keeps numbering from the head.
        log.append(SimTime::from_millis(20), TxnId(20), commit(20));
        log.seal_upto(SimTime::from_millis(20));
        assert_eq!(log.sealed().batch_from(Lsn(10), 5).records[0].lsn, Lsn(10));
    }

    #[test]
    fn lsns_are_contiguous_across_seals() {
        let mut log = ShardLog::new();
        for i in 0..10u64 {
            log.append(SimTime::from_millis(i), TxnId(i), commit(i));
        }
        log.seal_upto(SimTime::from_millis(4));
        log.seal_upto(SimTime::from_millis(9));
        let lsns: Vec<u64> = log.sealed().iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, (0..10).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gdb_model::Timestamp;
    use proptest::prelude::*;

    proptest! {
        /// Sealed output is always ordered by (virtual time, append order)
        /// and LSNs are dense, across arbitrary append/seal interleavings.
        #[test]
        fn sealing_preserves_vtime_order(
            appends in proptest::collection::vec((0u64..100, any::<bool>()), 1..60)
        ) {
            let mut log = ShardLog::new();
            let mut seal_floor = 0u64;
            for (i, &(dt, seal)) in appends.iter().enumerate() {
                // Appends may only target the unsealed future.
                let at = seal_floor + dt;
                log.append(
                    SimTime::from_micros(at),
                    TxnId(i as u64),
                    RedoPayload::Commit { commit_ts: Timestamp(at) },
                );
                if seal {
                    seal_floor = seal_floor.max(at);
                    log.seal_upto(SimTime::from_micros(seal_floor));
                }
            }
            log.seal_upto(SimTime::MAX);
            let recs: Vec<_> = log.sealed().iter().collect();
            // LSNs dense from 0.
            for (i, r) in recs.iter().enumerate() {
                prop_assert_eq!(r.lsn.0, i as u64);
            }
            // Commit timestamps (stamped = vtime here) non-decreasing per
            // seal group is NOT guaranteed globally (later seals can carry
            // earlier-vtime records only if appended later than the seal —
            // impossible by construction), so the full stream is sorted by
            // vtime within the monotone seal structure:
            let times: Vec<u64> = recs.iter().map(|r| match r.payload {
                RedoPayload::Commit { commit_ts } => commit_ts.0,
                _ => 0,
            }).collect();
            // Every record sealed in an earlier batch has vtime <= the
            // seal boundary of that batch <= any later append. We verify
            // the weaker, still-critical invariant directly exercised by
            // replicas: the stream never goes backwards by more than the
            // staging window (here: it must be fully sorted because all
            // appends happened at or after the last seal boundary).
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1], "stream order violated: {:?}", times);
            }
        }
    }
}
