//! `gdb-shell` — an operator console over a live GaussDB-Global cluster.
//!
//! The shell wraps a [`RealCluster`] (sim transport by default; thread or
//! loopback-TCP via the PR-6 seam) and exposes the whole operator surface
//! as one command language, usable three ways:
//!
//! * **REPL** — `gdb-shell` on a terminal;
//! * **batch** — `gdb-shell --script ops.gdb`, producing a transcript
//!   (`gdb> <cmd>` followed by the command's output);
//! * **one-shot** — `gdb-shell scenario run scenarios/x.toml` (what CI
//!   runs).
//!
//! On the sim backend every command's output is a pure function of the
//! seed and the script, so the same script replays to a byte-identical
//! transcript — the golden test in `tests/golden.rs` pins that.
//!
//! Commands: `status`, `nodes`, `shards`, `lag`, `sql <stmt>`,
//! `use cn <n>`, `run <dur>`, `migrate <shard> <region> <host>`,
//! `drain <region> <host>`, `join <region> <host>`, `heal`,
//! `fault <kind> [k=v ...]`, `plan run <name>`, `metrics [prefix]`,
//! `trace on [cap]` / `trace export <path>`, `bench tpcc [--json <path>]`,
//! `scenario run|check <file>`, `help`.

use gdb_chaos::fault::ChaosState;
use gdb_chaos::plan::canned;
use gdb_chaos::runner::heal_all;
use gdb_chaos::scenario;
use gdb_chaos::trace::new_trace;
use gdb_obs::{parse_duration, to_chrome_trace, ConfValue, Metric};
use gdb_realnet::{Backend, RealCluster};
use gdb_simnet::{NodeKind, RegionId};
use gdb_workloads::driver::RunConfig;
use gdb_workloads::tpcc::{TpccMix, TpccScale};
use globaldb::{Cluster, ClusterConfig, Datum, ExecOutput, SimDuration, SimTime, TxnOutcome};

/// Above this many shards, `shards` and `lag` summarize (top-k plus an
/// aggregate line) instead of listing every row — a 256-shard scale
/// cluster would otherwise print hundreds of lines per command.
const SUMMARY_THRESHOLD: usize = 12;
/// How many rows the summarized listings keep.
const SUMMARY_TOP_K: usize = 8;

/// One interactive session over one launched cluster.
pub struct Shell {
    real: RealCluster,
    seed: u64,
    /// CN statements are routed through (`use cn <n>`).
    cn: usize,
    /// Cross-command fault memory (crashed primaries awaiting rejoin,
    /// downed migration endpoints) — same state the plan engine keeps.
    chaos: ChaosState,
    /// Set when a command failed in a way a script should report
    /// (unknown command, bad arguments, scenario violations).
    failed: bool,
}

/// The deployment every shell session operates: the canonical chaos
/// topology (Three-City, two CNs per region, quorum-sync replication,
/// two-phase RCP) — the same cluster the scenario runner torments.
pub fn default_config(seed: u64) -> ClusterConfig {
    gdb_chaos::ChaosConfig::quick(seed).cluster_config()
}

impl Shell {
    /// Launch a cluster on `backend` and attach a console to it.
    pub fn launch(seed: u64, backend: Backend) -> Self {
        Self::launch_on(default_config(seed), backend)
    }

    /// Attach a console to a custom deployment (e.g. the scale tier's
    /// big multi-region clusters).
    pub fn launch_on(config: ClusterConfig, backend: Backend) -> Self {
        let seed = config.seed;
        Shell {
            real: RealCluster::launch(config, backend),
            seed,
            cn: 0,
            chaos: ChaosState::default(),
            failed: false,
        }
    }

    pub fn cluster(&mut self) -> &mut Cluster {
        &mut self.real.cluster
    }

    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Tear the backend down and report what it physically carried,
    /// cross-checked against the sim's message plane.
    pub fn shutdown(&mut self) -> String {
        let verify = {
            let report = self.real.shutdown();
            let v = report.verify_against_plane(self.real.cluster.db.plane());
            (report.backend.label(), report.msgs, report.bytes, v)
        };
        let (label, msgs, bytes, v) = verify;
        match v {
            Ok(()) => format!("backend {label}: {msgs} msgs, {bytes} bytes, plane verified"),
            Err(e) => {
                self.failed = true;
                format!("backend {label}: VERIFY FAILED: {e}")
            }
        }
    }

    /// Execute one command line and return its output (no trailing
    /// newline guarantees; `run_script` normalizes).
    pub fn exec(&mut self, line: &str) -> String {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => help(),
            "status" => self.status(),
            "nodes" => self.nodes(),
            "shards" => self.shards(),
            "lag" => self.lag(),
            "sql" => self.sql(rest),
            "use" => self.use_cn(rest),
            "run" => self.advance(rest),
            "migrate" => self.migrate(rest),
            "drain" => self.drain(rest),
            "join" => self.join(rest),
            "heal" => self.heal(),
            "fault" => self.fault(rest),
            "plan" => self.plan(rest),
            "metrics" => self.metrics(rest),
            "trace" => self.trace(rest),
            "bench" => self.bench(rest),
            "scenario" => self.scenario(rest),
            "" | "#" => String::new(),
            _ => self.fail(format!("unknown command {cmd:?} (try `help`)")),
        }
    }

    /// Run a batch script: every non-empty, non-comment line echoed as
    /// `gdb> <line>` followed by its output. Deterministic on sim.
    pub fn run_script(&mut self, text: &str) -> String {
        let mut out = String::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push_str("gdb> ");
            out.push_str(line);
            out.push('\n');
            let res = self.exec(line);
            if !res.is_empty() {
                out.push_str(&res);
                if !res.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        out
    }

    fn fail(&mut self, msg: String) -> String {
        self.failed = true;
        format!("error: {msg}")
    }

    fn status(&mut self) -> String {
        let backend = self.real.backend().label();
        let c = &self.real.cluster;
        let down = c.db.topo().down_nodes().len();
        format!(
            "backend {backend}, seed {}, t={}\n\
             cn {} of {}, routing epoch {}, {} shards, {} nodes ({down} down)\n\
             committed {}, aborted {}, migrations in flight: {}",
            self.seed,
            fmt_time(c.now()),
            self.cn,
            c.db.cns().len(),
            c.db.routing_epoch(),
            c.db.shards().len(),
            c.db.topo().node_count(),
            c.db.stats().committed,
            c.db.stats().aborted,
            c.db.migrating_shards().len(),
        )
    }

    fn nodes(&mut self) -> String {
        let c = &self.real.cluster;
        let topo = c.db.topo();
        let mut rows = Vec::new();
        for i in 0..topo.node_count() {
            let n = gdb_simnet::NetNodeId(i as u32);
            let kind = match topo.node_kind(n) {
                NodeKind::ComputeNode => "cn",
                NodeKind::DataNodePrimary => "dn-primary",
                NodeKind::DataNodeReplica => "dn-replica",
                NodeKind::GtmServer => "gtm",
                NodeKind::TimeDevice => "time-device",
                NodeKind::Client => "client",
            };
            rows.push(format!(
                "n{i:<3} {kind:<11} r{} h{} {}",
                topo.node_region(n).0,
                topo.node_host(n),
                if topo.is_node_down(n) { "DOWN" } else { "up" },
            ));
        }
        rows.join("\n")
    }

    fn shards(&mut self) -> String {
        // Above this many shards the full listing stops being an
        // operator tool and starts being a scroll; summarize instead.
        let summarize = self.real.cluster.db.shards().len() > SUMMARY_THRESHOLD;
        let snap = summarize.then(|| self.real.cluster.metrics_snapshot());
        let c = &self.real.cluster;
        let db = &c.db;
        let topo = db.topo();
        let mut out = Vec::new();
        let migrating = db.migrating_shards();
        let render = |s: usize, shard: &globaldb::Shard| -> String {
            let reps: Vec<String> = shard
                .replicas
                .iter()
                .map(|r| format!("n{}@r{}", r.node.0, topo.node_region(r.node).0))
                .collect();
            format!(
                "s{s}: primary n{}@r{}h{} epoch {} replicas [{}]{}",
                shard.primary.0,
                topo.node_region(shard.primary).0,
                topo.node_host(shard.primary),
                shard.owner_epoch,
                reps.join(", "),
                if migrating.contains(&s) {
                    " MIGRATING"
                } else {
                    ""
                },
            )
        };
        if let Some(snap) = snap {
            // Top-k by lifetime routed ops (the same counters rebalance
            // keys on), then an aggregate tail instead of every shard.
            let mut loads: Vec<(u64, usize)> = (0..db.shards().len())
                .map(|s| {
                    let ops = snap
                        .counter(&format!(
                            "{}.{s}",
                            globaldb::migrate::metrics::SHARD_OPS_PREFIX
                        ))
                        .unwrap_or(0);
                    (ops, s)
                })
                .collect();
            let total_ops: u64 = loads.iter().map(|&(ops, _)| ops).sum();
            loads.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            out.push(format!(
                "{} shards, {} total ops, {} migrating — top {} by ops:",
                db.shards().len(),
                total_ops,
                migrating.len(),
                SUMMARY_TOP_K.min(loads.len()),
            ));
            for &(ops, s) in loads.iter().take(SUMMARY_TOP_K) {
                out.push(format!("{} ops {ops}", render(s, &db.shards()[s])));
            }
            let hidden = db.shards().len().saturating_sub(SUMMARY_TOP_K);
            if hidden > 0 {
                out.push(format!("({hidden} more shards not shown)"));
            }
        } else {
            for (s, shard) in db.shards().iter().enumerate() {
                out.push(render(s, shard));
            }
        }
        let fmt_hosts = |hosts: &[(RegionId, u16)]| -> String {
            if hosts.is_empty() {
                "none".to_string()
            } else {
                hosts
                    .iter()
                    .map(|(r, h)| format!("r{}h{h}", r.0))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        out.push(format!(
            "routing epoch {}, draining: {}, retired: {}",
            db.routing_epoch(),
            fmt_hosts(db.draining_hosts()),
            fmt_hosts(db.retired_hosts()),
        ));
        out.join("\n")
    }

    /// Per-replica freshness: RCP lag and log-ship backlog, read off the
    /// same registry gauges the bench artifacts carry. Above the
    /// summarization threshold only the top-k laggiest replicas print,
    /// under an aggregate line.
    fn lag(&mut self) -> String {
        let snap = self.real.cluster.metrics_snapshot();
        let c = &self.real.cluster;
        let mut rows: Vec<(f64, u64, usize, usize, u32)> = Vec::new();
        for (s, shard) in c.db.shards().iter().enumerate() {
            for (r, rep) in shard.replicas.iter().enumerate() {
                let lag = snap
                    .gauge(&gdb_replication::metrics::replica_rcp_lag_gauge(s, r))
                    .unwrap_or(f64::NAN);
                let backlog = snap
                    .gauge(&gdb_replication::metrics::replica_backlog_gauge(s, r))
                    .unwrap_or(0.0) as u64;
                rows.push((lag, backlog, s, r, rep.node.0));
            }
        }
        let mut out = Vec::new();
        if c.db.shards().len() > SUMMARY_THRESHOLD {
            let total_backlog: u64 = rows.iter().map(|&(_, b, ..)| b).sum();
            let max_lag = rows.iter().map(|&(l, ..)| l).fold(0.0f64, f64::max);
            out.push(format!(
                "{} replicas over {} shards: max lag {:.3} ms, total backlog {} — top {} by lag:",
                rows.len(),
                c.db.shards().len(),
                max_lag / 1_000.0,
                total_backlog,
                SUMMARY_TOP_K.min(rows.len()),
            ));
            // Descending lag, shard/replica index as deterministic ties.
            rows.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3)));
            rows.truncate(SUMMARY_TOP_K);
        }
        out.push("shard replica node   lag_ms  backlog".to_string());
        for (lag, backlog, s, r, node) in rows {
            out.push(format!(
                "s{s:<4} r{r:<6} n{node:<5} {:>7.3} {backlog:>8}",
                lag / 1_000.0,
            ));
        }
        out.join("\n")
    }

    fn sql(&mut self, stmt: &str) -> String {
        if stmt.is_empty() {
            return self.fail("usage: sql <statement>".into());
        }
        let cn = self.cn;
        let c = &mut self.real.cluster;
        let at = c.now();
        match c.execute_sql(cn, at, stmt, &[]) {
            Ok((out, o)) => render_sql(&out, &o),
            Err(e) => format!("error: {e:?}"),
        }
    }

    fn use_cn(&mut self, rest: &str) -> String {
        let Some(n) = rest
            .strip_prefix("cn")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        else {
            return self.fail("usage: use cn <n>".into());
        };
        if n >= self.real.cluster.db.cns().len() {
            return self.fail(format!(
                "cn {n} out of range (cluster has {})",
                self.real.cluster.db.cns().len()
            ));
        }
        self.cn = n;
        format!("routing through cn {n}")
    }

    fn advance(&mut self, rest: &str) -> String {
        let Some(d) = parse_duration(rest) else {
            return self.fail("usage: run <duration> (e.g. run 500ms)".into());
        };
        let c = &mut self.real.cluster;
        let to = c.now() + d;
        c.run_until(to);
        format!("advanced to t={}", fmt_time(c.now()))
    }

    fn migrate(&mut self, rest: &str) -> String {
        let args: Vec<&str> = rest.split_whitespace().collect();
        let parsed = match args.as_slice() {
            [s, r, h] => match (s.parse(), r.parse(), h.parse()) {
                (Ok(s), Ok(r), Ok(h)) => Some((s, r, h)),
                _ => None,
            },
            _ => None,
        };
        let Some((shard, region, host)) = parsed else {
            return self.fail("usage: migrate <shard> <region> <host>".into());
        };
        let _: u16 = host;
        match self
            .real
            .cluster
            .start_migration(shard, RegionId(region), host)
        {
            Ok(()) => format!("migration of s{shard} to r{}h{host} started", region),
            Err(e) => self.fail(format!("migrate: {e:?}")),
        }
    }

    fn drain(&mut self, rest: &str) -> String {
        let args: Vec<&str> = rest.split_whitespace().collect();
        let parsed = match args.as_slice() {
            [r, h] => match (r.parse(), h.parse()) {
                (Ok(r), Ok(h)) => Some((r, h)),
                _ => None,
            },
            _ => None,
        };
        let Some((region, host)) = parsed else {
            return self.fail("usage: drain <region> <host>".into());
        };
        let c = &mut self.real.cluster;
        let Cluster { db, sim, .. } = c;
        match gdb_rebalance::drain_host(db, sim, RegionId(region), host) {
            Ok(n) => format!("draining r{region}h{host}: {n} moves started"),
            Err(e) => self.fail(format!("drain: {e:?}")),
        }
    }

    fn join(&mut self, rest: &str) -> String {
        let args: Vec<&str> = rest.split_whitespace().collect();
        let parsed = match args.as_slice() {
            [r, h] => match (r.parse::<usize>(), h.parse::<u16>()) {
                (Ok(r), Ok(h)) => Some((r, h)),
                _ => None,
            },
            _ => None,
        };
        let Some((region, host)) = parsed else {
            return self.fail("usage: join <region> <host>".into());
        };
        self.apply_fault(gdb_chaos::Fault::AddNode { region, host })
    }

    fn heal(&mut self) -> String {
        let c = &mut self.real.cluster;
        let now = c.now();
        heal_all(&mut c.db, now);
        self.chaos = ChaosState::default();
        "all faults healed".to_string()
    }

    fn fault(&mut self, rest: &str) -> String {
        let mut words = rest.split_whitespace();
        let Some(kind) = words.next() else {
            return self.fail("usage: fault <kind> [key=value ...]".into());
        };
        let mut pairs = Vec::new();
        for w in words {
            let Some((k, v)) = w.split_once('=') else {
                return self.fail(format!("fault: expected key=value, got {w:?}"));
            };
            let value = match v.parse::<i64>() {
                Ok(n) => ConfValue::Int(n),
                Err(_) => ConfValue::Str(v.to_string()),
            };
            pairs.push((k.to_string(), value));
        }
        match scenario::fault_from_pairs(kind, &pairs) {
            Ok(f) => self.apply_fault(f),
            Err(e) => self.fail(e),
        }
    }

    fn apply_fault(&mut self, fault: gdb_chaos::Fault) -> String {
        let c = &mut self.real.cluster;
        let now = c.now();
        let Cluster { db, sim, .. } = c;
        fault.apply(db, sim, &mut self.chaos, now)
    }

    fn plan(&mut self, rest: &str) -> String {
        let Some(name) = rest
            .strip_prefix("run")
            .map(str::trim)
            .filter(|n| !n.is_empty())
        else {
            return self.fail(format!(
                "usage: plan run <name> (known: {})",
                canned::all()
                    .iter()
                    .map(|p| p.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        };
        let Some(plan) = canned::by_name(name) else {
            return self.fail(format!(
                "unknown plan {name:?} (try `plan run` for the list)"
            ));
        };
        let c = &mut self.real.cluster;
        let now = c.now();
        let plan = plan.shifted(SimDuration::from_nanos(now.as_nanos()));
        let end = plan.events.iter().map(|e| e.at).max().unwrap_or(now);
        let trace = new_trace();
        plan.schedule(c, trace.clone());
        c.run_until(end + SimDuration::from_millis(100));
        let mut lines = trace.borrow().lines();
        lines.push(format!("plan {name} done at t={}", fmt_time(c.now())));
        lines.join("\n")
    }

    fn metrics(&mut self, prefix: &str) -> String {
        let snap = self.real.cluster.metrics_snapshot();
        let mut out = Vec::new();
        for (name, m) in &snap.metrics {
            if !name.starts_with(prefix) {
                continue;
            }
            out.push(match m {
                Metric::Counter(v) => format!("{name} = {v}"),
                Metric::Gauge(v) => format!("{name} = {v:.3}"),
                Metric::Histogram(h) => format!(
                    "{name} = {{count {}, mean {}us, p50 {}us, p99 {}us}}",
                    h.count, h.mean_us, h.p50_us, h.p99_us
                ),
            });
        }
        if out.is_empty() {
            format!("no metrics match {prefix:?}")
        } else {
            out.join("\n")
        }
    }

    fn trace(&mut self, rest: &str) -> String {
        let mut words = rest.split_whitespace();
        match words.next() {
            Some("on") => {
                let cap = words.next().and_then(|v| v.parse().ok()).unwrap_or(65_536);
                self.real.cluster.db.obs_mut().tracer.enable(cap);
                format!("tracer on (capacity {cap} spans)")
            }
            Some("export") => {
                let Some(path) = words.next() else {
                    return self.fail("usage: trace export <path>".into());
                };
                let tracer = &self.real.cluster.db.obs().tracer;
                if !tracer.is_enabled() {
                    return self.fail("tracer is off (run `trace on` first)".into());
                }
                let spans = tracer.spans().len();
                let doc = to_chrome_trace(tracer);
                match std::fs::write(path, doc) {
                    Ok(()) => format!("wrote {path} ({spans} spans)"),
                    Err(e) => self.fail(format!("write {path}: {e}")),
                }
            }
            _ => self.fail("usage: trace on [capacity] | trace export <path>".into()),
        }
    }

    /// `bench tpcc [--json <path>]`: a tiny-scale TPC-C figure run on a
    /// *fresh* sim cluster with this session's seed (the live cluster is
    /// left untouched), emitting a `gdb-bench/v1` artifact on request.
    fn bench(&mut self, rest: &str) -> String {
        let args: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
        if args.first().map(String::as_str) != Some("tpcc") {
            return self.fail("usage: bench tpcc [--json <path>]".into());
        }
        let params = gdb_bench::BenchParams {
            scale: TpccScale::tiny(),
            scale_name: "tiny",
            run: RunConfig {
                terminals: 8,
                duration: SimDuration::from_secs(2),
                warmup: SimDuration::from_secs(1),
                think_time: SimDuration::from_millis(10),
            },
            seed: self.seed,
        };
        let (mut cluster, report) = gdb_bench::tpcc_run(
            default_config(self.seed),
            &params,
            TpccMix::standard(),
            |_| {},
        );
        let mut out = format!(
            "tpcc tiny: {:.1} txn/s, tpmC {:.1}, {} committed, {} aborted",
            report.throughput_per_sec(),
            report.tpmc(),
            report.total_commits(),
            report.total_aborts(),
        );
        if let Some(path) = gdb_obs::flag_value(&args, "--json") {
            let mut a = gdb_bench::artifact("shell-tpcc", &params);
            a.series
                .push(gdb_bench::series_from_run("tpcc", &mut cluster, &report));
            match std::fs::write(path, a.to_pretty()) {
                Ok(()) => out.push_str(&format!("\nwrote {path}")),
                Err(e) => return self.fail(format!("write {path}: {e}")),
            }
        }
        out
    }

    /// `scenario run <file>` / `scenario check <file>`: run (or just
    /// lint) a declarative scenario. The run deploys its own cluster —
    /// the live session cluster is untouched — and any oracle violation
    /// marks the session failed.
    fn scenario(&mut self, rest: &str) -> String {
        let mut words = rest.split_whitespace();
        let (verb, path) = (words.next(), words.next());
        let (Some(verb @ ("run" | "check")), Some(path)) = (verb, path) else {
            return self.fail("usage: scenario run|check <file.toml>".into());
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return self.fail(format!("read {path}: {e}")),
        };
        if verb == "check" {
            let errors = scenario::lint(&text);
            return if errors.is_empty() {
                format!("{path}: ok")
            } else {
                self.failed = true;
                errors
                    .iter()
                    .map(|e| format!("{path}: {e}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
        }
        match scenario::run_text(&text) {
            Ok(report) => {
                if !report.ok() {
                    self.failed = true;
                }
                report.render()
            }
            Err(errors) => self.fail(errors.join("\n")),
        }
    }
}

fn fmt_time(t: SimTime) -> String {
    format!("{:.6}s", t.as_micros() as f64 / 1e6)
}

fn render_sql(out: &ExecOutput, o: &TxnOutcome) -> String {
    let mut s = String::new();
    match out {
        ExecOutput::Rows(rows) => {
            for row in rows {
                let cells: Vec<String> = row.0.iter().map(Datum::to_string).collect();
                s.push_str(&format!("({})\n", cells.join(", ")));
            }
            s.push_str(&format!("{} row(s)\n", rows.len()));
        }
        ExecOutput::Count(n) => s.push_str(&format!("{n} row(s) affected\n")),
    }
    let commit = match o.commit_ts {
        Some(ts) => format!("commit@{}", ts.as_micros()),
        None => "read-only".to_string(),
    };
    s.push_str(&format!(
        "-- via {}, snapshot {}, {commit}, latency {}us",
        if o.used_replica { "replica" } else { "primary" },
        o.snapshot.as_micros(),
        o.latency.as_micros(),
    ));
    s
}

fn help() -> String {
    "\
commands:
  status                          backend, time, routing epoch, txn counters
  nodes                           every node: kind, region, host, up/down
  shards                          placement, owner epochs, drain/retire state
  lag                             per-replica RCP lag + log-ship backlog
  sql <stmt>                      run one statement (shows replica/primary,
                                  snapshot, commit ts, latency)
  use cn <n>                      route statements through CN n
  run <dur>                       advance virtual time (e.g. run 500ms)
  migrate <shard> <region> <host> start an online shard migration
  drain <region> <host>           drain a host (elastic scale-in)
  join <region> <host>            provision a spare data node (scale-out)
  fault <kind> [k=v ...]          inject one fault (kinds: see DESIGN.md)
  heal                            restore every outstanding fault
  plan run <name>                 run a canned fault plan from now
  metrics [prefix]                dump the metrics registry
  trace on [cap] | trace export <path>   span tracer control
  bench tpcc [--json <path>]      tiny TPC-C figure run on a fresh cluster
  scenario run|check <file.toml>  run or lint a declarative scenario
  help                            this text"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `shards`/`lag` must compress to a top-k + aggregate view on big
    /// clusters: a 256-shard listing is unusable and the scale tier
    /// drives these commands from scripts.
    #[test]
    fn shards_and_lag_summarize_above_threshold() {
        let cfg = ClusterConfig::globaldb_scale(3, SUMMARY_THRESHOLD + 4).with_seed(11);
        let mut shell = Shell::launch_on(cfg, Backend::Sim);
        shell.exec("run 200ms");

        let shards = shell.exec("shards");
        assert!(
            shards.contains(&format!("top {SUMMARY_TOP_K} by ops:")),
            "missing aggregate header:\n{shards}"
        );
        assert!(
            shards.contains(&format!(
                "({} more shards not shown)",
                SUMMARY_THRESHOLD + 4 - SUMMARY_TOP_K
            )),
            "missing hidden-count tail:\n{shards}"
        );
        // top-k rows + header + tail + epoch line, not one row per shard.
        assert!(shards.lines().count() <= SUMMARY_TOP_K + 3);

        let lag = shell.exec("lag");
        assert!(lag.contains("max lag"), "missing lag aggregate:\n{lag}");
        assert!(lag.lines().count() <= SUMMARY_TOP_K + 2);
        assert!(!shell.failed());
    }

    /// Small clusters keep the exhaustive listing (the golden transcript
    /// pins the exact small-cluster bytes; this pins the branch choice).
    #[test]
    fn small_clusters_list_every_shard() {
        let mut shell = Shell::launch(7, Backend::Sim);
        let shards = shell.exec("shards");
        assert!(
            !shards.contains("not shown"),
            "summarized too early:\n{shards}"
        );
        let n = shell.cluster().db.shards().len();
        assert!(n <= SUMMARY_THRESHOLD);
        for s in 0..n {
            assert!(shards.contains(&format!("s{s}: primary")));
        }
    }
}
