//! The parse-time AST (unresolved names).

use gdb_model::Datum;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    DropTable(String),
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
    },
    DropIndex {
        name: String,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        values: Vec<Vec<PExpr>>,
    },
    Select(SelectStmt),
    Update {
        table: String,
        sets: Vec<(String, PExpr)>,
        filter: Option<PExpr>,
    },
    Delete {
        table: String,
        filter: Option<PExpr>,
    },
}

/// `CREATE TABLE` details.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnSpec>,
    pub primary_key: Vec<String>,
    pub distribute: Option<DistSpec>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub data_type: ParsedType,
    pub not_null: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedType {
    Int,
    Decimal,
    Text,
    Bool,
}

/// `DISTRIBUTE BY ...` clause (paper §II-A: hash or range on the
/// distribution key; replicated small tables).
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    Hash(Vec<String>),
    Range {
        columns: Vec<String>,
        split_points: Vec<i64>,
    },
    Replication,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    /// 1 or 2 tables (two-table joins via WHERE equality, TPC-C style).
    pub from: Vec<String>,
    pub filter: Option<PExpr>,
    /// `(column, descending)`.
    pub order_by: Option<(String, bool)>,
    pub limit: Option<u64>,
    pub for_update: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    Expr(PExpr),
}

/// Parse-time expressions; column names unresolved.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Lit(Datum),
    /// `?` placeholder, numbered left-to-right from 0.
    Param(usize),
    /// Possibly table-qualified column reference.
    Col(Option<String>, String),
    Bin(Box<PExpr>, BinOp, Box<PExpr>),
    Not(Box<PExpr>),
    Between {
        expr: Box<PExpr>,
        lo: Box<PExpr>,
        hi: Box<PExpr>,
    },
    InList {
        expr: Box<PExpr>,
        list: Vec<PExpr>,
    },
    IsNull {
        expr: Box<PExpr>,
        negated: bool,
    },
    /// Aggregate call; `None` argument = `COUNT(*)`.
    Agg(AggFunc, Option<Box<PExpr>>, bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}
