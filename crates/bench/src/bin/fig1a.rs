//! Fig. 1a — OLTP performance degrades as the cluster spans more distant
//! regions (same rack → same city → three cities), for a classic
//! shared-nothing deployment (centralized GTM + synchronous replication).
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin fig1a`

use gdb_bench::{
    artifact, emit_artifact, print_table, ratio, series_from_run, tpcc_run, BenchParams,
};
use gdb_workloads::tpcc::TpccMix;
use globaldb::{ClusterConfig, Geometry, SimDuration};

fn main() {
    let params = BenchParams::from_env();
    let mut art = artifact("fig1a", &params);

    let configs = [
        (
            "same rack",
            ClusterConfig {
                geometry: Geometry::OneRegion {
                    injected_delay: SimDuration::ZERO,
                },
                ..ClusterConfig::baseline_one_region()
            },
        ),
        (
            "same city (2 ms)",
            ClusterConfig {
                geometry: Geometry::OneRegion {
                    injected_delay: SimDuration::from_millis(2),
                },
                ..ClusterConfig::baseline_one_region()
            },
        ),
        ("three cities", ClusterConfig::baseline_three_city()),
    ];

    let mut rows = Vec::new();
    let mut base = 0.0;
    for (label, config) in configs {
        let (mut cluster, report) = tpcc_run(config, &params, TpccMix::standard(), |_| {});
        art.series
            .push(series_from_run(label, &mut cluster, &report));
        let tpmc = report.tpmc();
        if base == 0.0 {
            base = tpmc;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", tpmc),
            ratio(tpmc, base),
            format!("{}", report.mean_latency("new_order")),
        ]);
    }
    print_table(
        "Fig. 1a — baseline GaussDB TPC-C vs geographic span",
        &["deployment", "tpmC (sim)", "vs same rack", "NewOrder mean"],
        &rows,
    );
    println!(
        "Paper shape: throughput falls sharply as the cluster spans more \
         distant regions (Fig. 1a)."
    );
    emit_artifact(&art);
}
