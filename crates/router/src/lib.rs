//! Dynamic Read-On-Replica node selection (paper §IV-B, Fig. 5).
//!
//! The same data is available from multiple nodes with different
//! freshness, latency, load, and health. Each CN tracks per-node metrics
//! and periodically computes a **skyline** (Pareto front) over
//! (staleness, latency-and-load cost). A query with a bounded-staleness
//! requirement picks the minimum-cost skyline candidate that satisfies its
//! bound; crashed or overloaded nodes fall off the skyline automatically,
//! which is how GlobalDB load-balances and fails over reads.

pub mod metrics;
pub mod skyline;
pub mod staleness;
pub mod table;

pub use skyline::{NodeMetrics, Skyline};
pub use staleness::{estimate_staleness_gclock, estimate_staleness_gtm};
pub use table::{MapRouteTable, RouteEntry, RouteTable};
