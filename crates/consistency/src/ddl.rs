//! DDL visibility gating for ROR queries (paper §IV-A).
//!
//! A DDL statement must be visible to subsequent queries, but replicas
//! replay it with a delay. A ROR query is admitted only if:
//!
//! 1. the RCP is greater than the largest DDL timestamp in the cluster
//!    (every DDL has replayed everywhere), or
//! 2. the RCP is greater than the DDL timestamp of *each table involved in
//!    the query*.
//!
//! Otherwise the query must fall back to the primary (or wait).

use gdb_model::{TableId, Timestamp};
use std::collections::HashMap;

/// Tracks committed DDL timestamps cluster-wide.
#[derive(Debug, Default, Clone)]
pub struct DdlTracker {
    per_table: HashMap<TableId, Timestamp>,
    max_ddl: Timestamp,
}

impl DdlTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a DDL affecting `table` committed at `ts`.
    pub fn record(&mut self, table: TableId, ts: Timestamp) {
        let e = self.per_table.entry(table).or_insert(Timestamp::ZERO);
        *e = (*e).max(ts);
        self.max_ddl = self.max_ddl.max(ts);
    }

    /// Largest DDL timestamp recorded.
    pub fn max_ddl(&self) -> Timestamp {
        self.max_ddl
    }

    /// Last DDL timestamp for one table (ZERO if never altered).
    pub fn table_ddl(&self, table: TableId) -> Timestamp {
        self.per_table
            .get(&table)
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// The paper's two-condition admission check for a ROR query over
    /// `tables` at the given RCP.
    pub fn ror_allowed(&self, rcp: Timestamp, tables: &[TableId]) -> bool {
        // Condition 1: all DDLs everywhere have replayed.
        if rcp > self.max_ddl {
            return true;
        }
        // Condition 2: all DDLs on the involved tables have replayed.
        tables.iter().all(|t| rcp > self.table_ddl(*t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ddl_always_allows() {
        let d = DdlTracker::new();
        assert!(d.ror_allowed(Timestamp(1), &[TableId(1)]));
    }

    #[test]
    fn condition1_global_replay() {
        let mut d = DdlTracker::new();
        d.record(TableId(1), Timestamp(100));
        d.record(TableId(2), Timestamp(200));
        assert_eq!(d.max_ddl(), Timestamp(200));
        // RCP past every DDL: any query allowed, even on altered tables.
        assert!(d.ror_allowed(Timestamp(201), &[TableId(1), TableId(2)]));
        // RCP exactly at the max DDL: not strictly greater — falls through
        // to condition 2.
        assert!(!d.ror_allowed(Timestamp(200), &[TableId(2)]));
    }

    #[test]
    fn condition2_per_table() {
        let mut d = DdlTracker::new();
        d.record(TableId(1), Timestamp(100));
        d.record(TableId(2), Timestamp(500)); // recent DDL on table 2
                                              // RCP = 150: table 1's DDL replayed, table 2's has not.
        assert!(d.ror_allowed(Timestamp(150), &[TableId(1)]));
        assert!(!d.ror_allowed(Timestamp(150), &[TableId(2)]));
        assert!(!d.ror_allowed(Timestamp(150), &[TableId(1), TableId(2)]));
        // A table never altered is always fine under condition 2.
        assert!(d.ror_allowed(Timestamp(150), &[TableId(9)]));
    }

    #[test]
    fn multiple_ddls_keep_the_latest() {
        let mut d = DdlTracker::new();
        d.record(TableId(1), Timestamp(100));
        d.record(TableId(1), Timestamp(50)); // older, ignored
        assert_eq!(d.table_ddl(TableId(1)), Timestamp(100));
    }
}
