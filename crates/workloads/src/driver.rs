//! The closed-loop, multi-terminal workload driver.
//!
//! Terminals are simulated clients: each issues a transaction, waits for
//! completion (in virtual time), thinks, and repeats. A binary heap orders
//! terminals by their next start instant so the whole run is a single
//! deterministic interleaving of client work with the cluster's background
//! activity (replication, RCP rounds, heartbeats).

use crate::report::WorkloadReport;
use gdb_model::GdbResult;
use globaldb::{Cluster, SimDuration, SimTime, TxnOutcome};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A benchmark workload: setup (schema + load) plus a per-terminal
/// transaction generator.
pub trait Workload {
    /// Create schema and load initial data.
    fn setup(&mut self, cluster: &mut Cluster) -> GdbResult<()>;

    /// Run one transaction for `terminal` starting at `at`. Returns the
    /// transaction kind label and its outcome.
    fn run_one(
        &mut self,
        cluster: &mut Cluster,
        terminal: usize,
        at: SimTime,
    ) -> (&'static str, GdbResult<TxnOutcome>);
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    pub terminals: usize,
    /// Measured virtual duration (after warmup).
    pub duration: SimDuration,
    /// Unmeasured warmup.
    pub warmup: SimDuration,
    /// Think time between a completion and the next request.
    pub think_time: SimDuration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            terminals: 60,
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(1),
            think_time: SimDuration::from_millis(10),
        }
    }
}

/// Run `workload` against `cluster` (setup must already have happened).
pub fn run_workload(
    cluster: &mut Cluster,
    workload: &mut dyn Workload,
    config: RunConfig,
) -> WorkloadReport {
    let t0 = cluster.now();
    let measure_from = t0 + config.warmup;
    let t_end = measure_from + config.duration;

    let replica_reads_before = cluster.db.stats().reads_on_replica;
    let primary_reads_before = cluster.db.stats().reads_on_primary;

    let mut report = WorkloadReport {
        duration: config.duration,
        ..Default::default()
    };

    // Stagger terminal starts to avoid a thundering herd at t0.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..config.terminals)
        .map(|i| Reverse((t0 + SimDuration::from_micros(1 + i as u64 * 137), i)))
        .collect();

    while let Some(Reverse((at, terminal))) = heap.pop() {
        if at >= t_end {
            break;
        }
        let (kind, result) = workload.run_one(cluster, terminal, at);
        let next = match result {
            Ok(outcome) => {
                if at >= measure_from {
                    report.record_commit(kind, outcome.latency);
                }
                outcome.completed_at + config.think_time
            }
            Err(e) if e.is_retryable() => {
                if at >= measure_from {
                    report.record_abort(kind);
                }
                at + config.think_time
            }
            Err(e) => panic!("workload error ({kind}): {e}"),
        };
        heap.push(Reverse((next, terminal)));
    }
    // Drain background work to the end of the window so replica/RCP state
    // is consistent for whoever inspects the cluster next.
    cluster.run_until(t_end);

    report.reads_on_replica = cluster.db.stats().reads_on_replica - replica_reads_before;
    report.reads_on_primary = cluster.db.stats().reads_on_primary - primary_reads_before;
    report
}
