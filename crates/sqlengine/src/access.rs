//! The storage-access abstraction the executor runs against.
//!
//! The `globaldb` crate implements [`DataAccess`] with sharding, network
//! latency accounting, MVCC snapshots, and row locks; [`MemAccess`] here
//! is a single-node in-memory implementation used by the SQL engine's own
//! tests (and handy as an embedded mini-database).

use crate::plan::BoundDdl;
use gdb_model::{Datum, GdbResult, IndexId, Row, RowKey, TableId, Timestamp};
use gdb_simnet::SimTime;
use gdb_storage::{Catalog, DataNodeStorage};

/// What the executor needs from the storage/cluster layer.
pub trait DataAccess {
    /// The catalog to resolve schemas against.
    fn catalog(&self) -> &Catalog;

    /// Snapshot point read.
    fn point_read(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>>;

    /// Batched snapshot point reads (join inner side): one round trip per
    /// shard instead of one per key. The default just loops.
    fn multi_point_read(&mut self, table: TableId, keys: &[RowKey]) -> GdbResult<Vec<Option<Row>>> {
        keys.iter().map(|k| self.point_read(table, k)).collect()
    }

    /// Snapshot range read, inclusive bounds (`None` = unbounded).
    fn range_read(
        &mut self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> GdbResult<Vec<(RowKey, Row)>>;

    /// Snapshot secondary-index prefix lookup.
    fn index_read(&mut self, index: IndexId, prefix: &[Datum]) -> GdbResult<Vec<(RowKey, Row)>>;

    /// Snapshot full scan.
    fn full_scan(&mut self, table: TableId) -> GdbResult<Vec<(RowKey, Row)>>;

    /// Lock the row for write and return its *newest committed* version
    /// (read-committed update semantics; the lock is held to transaction
    /// end).
    fn read_for_update(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>>;

    /// Insert a new row (duplicate primary key is an error).
    fn insert(&mut self, table: TableId, row: Row) -> GdbResult<()>;

    /// Overwrite the row at `key` (caller holds the lock via
    /// [`DataAccess::read_for_update`]).
    fn update(&mut self, table: TableId, key: &RowKey, new_row: Row) -> GdbResult<()>;

    /// Delete the row at `key`.
    fn delete(&mut self, table: TableId, key: &RowKey) -> GdbResult<()>;

    /// Execute a DDL operation.
    fn apply_ddl(&mut self, ddl: &BoundDdl) -> GdbResult<()>;
}

/// Single-node, single-user in-memory implementation for tests: every
/// write commits immediately at an advancing timestamp.
pub struct MemAccess {
    storage: DataNodeStorage,
    now_ts: Timestamp,
}

impl MemAccess {
    pub fn new() -> Self {
        MemAccess {
            storage: DataNodeStorage::new(),
            now_ts: Timestamp(1),
        }
    }

    fn tick(&mut self) -> Timestamp {
        self.now_ts = self.now_ts.next();
        self.now_ts
    }

    pub fn storage(&self) -> &DataNodeStorage {
        &self.storage
    }
}

impl Default for MemAccess {
    fn default() -> Self {
        Self::new()
    }
}

impl DataAccess for MemAccess {
    fn catalog(&self) -> &Catalog {
        self.storage.catalog()
    }

    fn point_read(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        Ok(self
            .storage
            .read(table, key, Timestamp::MAX)?
            .map(|v| v.row.clone()))
    }

    fn range_read(
        &mut self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> GdbResult<Vec<(RowKey, Row)>> {
        Ok(self
            .storage
            .range(table, lo, hi, Timestamp::MAX)?
            .into_iter()
            .map(|v| (v.key.clone(), v.row.clone()))
            .collect())
    }

    fn index_read(&mut self, index: IndexId, prefix: &[Datum]) -> GdbResult<Vec<(RowKey, Row)>> {
        self.storage.index_lookup(index, prefix, Timestamp::MAX)
    }

    fn full_scan(&mut self, table: TableId) -> GdbResult<Vec<(RowKey, Row)>> {
        Ok(self
            .storage
            .scan(table, Timestamp::MAX)?
            .into_iter()
            .map(|v| (v.key.clone(), v.row.clone()))
            .collect())
    }

    fn read_for_update(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        Ok(self.storage.read_newest(table, key)?.map(|v| v.row.clone()))
    }

    fn insert(&mut self, table: TableId, row: Row) -> GdbResult<()> {
        let schema = self.storage.catalog().table(table)?;
        let mut row = row;
        schema.coerce_row(&mut row);
        schema.check_row(&row)?;
        let key = schema.primary_key_of(&row);
        let ts = self.tick();
        self.storage.insert(table, key, row, ts, SimTime::ZERO)
    }

    fn update(&mut self, table: TableId, key: &RowKey, new_row: Row) -> GdbResult<()> {
        let schema = self.storage.catalog().table(table)?;
        let mut new_row = new_row;
        schema.coerce_row(&mut new_row);
        schema.check_row(&new_row)?;
        let ts = self.tick();
        self.storage
            .update(table, key.clone(), new_row, ts, SimTime::ZERO)
    }

    fn delete(&mut self, table: TableId, key: &RowKey) -> GdbResult<()> {
        let ts = self.tick();
        self.storage.delete(table, key.clone(), ts, SimTime::ZERO)
    }

    fn apply_ddl(&mut self, ddl: &BoundDdl) -> GdbResult<()> {
        match ddl {
            BoundDdl::CreateTable {
                name,
                columns,
                primary_key,
                distribution_key,
                distribution,
            } => {
                let id = self.storage.catalog_mut().allocate_table_id();
                self.storage.create_table(gdb_model::TableSchema {
                    id,
                    name: name.clone(),
                    columns: columns.clone(),
                    primary_key: primary_key.clone(),
                    distribution_key: distribution_key.clone(),
                    distribution: distribution.clone(),
                })
            }
            BoundDdl::DropTable(id) => self.storage.drop_table(*id),
            BoundDdl::CreateIndex {
                table,
                name,
                columns,
            } => self
                .storage
                .create_index(*table, name.clone(), columns.clone())
                .map(|_| ()),
            BoundDdl::DropIndex { name, .. } => self.storage.drop_index(name),
        }
    }
}
