//! Cluster configuration and node placement.

use gdb_compress::Codec;
use gdb_replication::{ReplayCostModel, ReplicationMode};
use gdb_simclock::GClockConfig;
use gdb_simnet::{LinkParams, NodeKind, SimDuration, Topology, TopologyBuilder};
use gdb_txnmgr::TmMode;

/// Cluster geometry, mirroring the paper's two testbeds (§V).
#[derive(Debug, Clone)]
pub enum Geometry {
    /// Three servers in one rack, 10 GbE, optional `tc`-style injected
    /// inter-host delay (Fig. 6b).
    OneRegion { injected_delay: SimDuration },
    /// Xi'an / Langzhong / Dongguan, 25/35/55 ms RTT triangle.
    /// `tuned` = BBR + Nagle-off (GlobalDB's network stack, §V-A).
    ThreeCity { tuned: bool, bandwidth_mbps: u64 },
    /// The scale tier's synthetic N-region full-mesh WAN (one host per
    /// region; RTTs grow with circular region distance). See
    /// [`TopologyBuilder::multi_region`].
    MultiRegion { regions: usize, bandwidth_mbps: u64 },
}

/// How read-only queries are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// All reads to primary shards (the baseline).
    Primary,
    /// Read-On-Replica at the RCP snapshot, with an optional bounded
    /// staleness requirement (None = any RCP freshness acceptable).
    ReadOnReplica {
        freshness_bound: Option<SimDuration>,
    },
}

/// Full cluster configuration. Defaults mirror the paper's setup where it
/// specifies one (3 CNs, 6 shards, 2 replicas each, 1 ms clock sync,
/// ≤ 60 µs sync RTT, 200 PPM drift bound).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub geometry: Geometry,
    pub cn_count: usize,
    pub shard_count: usize,
    pub replicas_per_shard: usize,
    /// Initial transaction-management mode.
    pub tm_mode: TmMode,
    pub replication: ReplicationMode,
    /// Redo shipping codec (the paper uses LZ4).
    pub codec: Codec,
    pub routing: RoutingPolicy,
    pub gclock: GClockConfig,
    /// Redo shipping flush cadence per shard.
    pub flush_interval: SimDuration,
    /// RCP collection/distribution cadence (§IV-A).
    pub rcp_interval: SimDuration,
    /// Model the RCP round as two separate events — gather reports, then
    /// compute + distribute after the collection round trips — instead of
    /// one atomic step. The gap between the phases is the window where a
    /// collector-CN crash abandons the round (chaos testing); off by
    /// default so steady-state runs distribute the RCP the instant it is
    /// collected.
    pub rcp_two_phase: bool,
    /// Heartbeat cadence that keeps idle replicas' max commit ts moving.
    pub heartbeat_interval: SimDuration,
    pub replay: ReplayCostModel,
    /// CPU cost charged per SQL operation at a node (execution time).
    pub op_cpu_cost: SimDuration,
    /// Cadence of the background vacuum that prunes MVCC versions below
    /// the cluster-wide RCP horizon (`None` disables it).
    pub vacuum_interval: Option<SimDuration>,
    /// Per-storage-instance arena soft limit: when a shard primary's (or
    /// replica's) version arenas pin more than this many bytes at a
    /// vacuum tick, the storage is compacted (pooled row buffers dropped,
    /// slab slack returned). `None` disables pressure compaction.
    pub arena_soft_limit_bytes: Option<usize>,
    pub seed: u64,
}

impl ClusterConfig {
    /// GlobalDB on the Three-City WAN: GClock, async replication, LZ4,
    /// tuned network, ROR enabled.
    pub fn globaldb_three_city() -> Self {
        ClusterConfig {
            geometry: Geometry::ThreeCity {
                tuned: true,
                bandwidth_mbps: 1_000,
            },
            tm_mode: TmMode::GClock,
            replication: ReplicationMode::Async,
            codec: Codec::Lz4,
            routing: RoutingPolicy::ReadOnReplica {
                freshness_bound: None,
            },
            ..Self::base()
        }
    }

    /// Baseline GaussDB on the Three-City WAN: centralized GTM, remote
    /// synchronous quorum replication, untuned network, primary reads
    /// (Fig. 6a's baseline).
    pub fn baseline_three_city() -> Self {
        ClusterConfig {
            geometry: Geometry::ThreeCity {
                tuned: false,
                bandwidth_mbps: 1_000,
            },
            tm_mode: TmMode::Gtm,
            replication: ReplicationMode::SyncRemoteQuorum { quorum: 1 },
            codec: Codec::None,
            routing: RoutingPolicy::Primary,
            ..Self::base()
        }
    }

    /// GlobalDB on the One-Region rack (no regression check, Fig. 6a).
    pub fn globaldb_one_region() -> Self {
        ClusterConfig {
            geometry: Geometry::OneRegion {
                injected_delay: SimDuration::ZERO,
            },
            tm_mode: TmMode::GClock,
            replication: ReplicationMode::Async,
            codec: Codec::Lz4,
            routing: RoutingPolicy::ReadOnReplica {
                freshness_bound: None,
            },
            ..Self::base()
        }
    }

    /// Baseline GaussDB on the One-Region rack.
    pub fn baseline_one_region() -> Self {
        ClusterConfig {
            geometry: Geometry::OneRegion {
                injected_delay: SimDuration::ZERO,
            },
            tm_mode: TmMode::Gtm,
            replication: ReplicationMode::SyncLocalQuorum,
            codec: Codec::None,
            routing: RoutingPolicy::Primary,
            ..Self::base()
        }
    }

    fn base() -> Self {
        ClusterConfig {
            geometry: Geometry::OneRegion {
                injected_delay: SimDuration::ZERO,
            },
            cn_count: 3,
            shard_count: 6,
            replicas_per_shard: 2,
            tm_mode: TmMode::Gtm,
            replication: ReplicationMode::Async,
            codec: Codec::None,
            routing: RoutingPolicy::Primary,
            gclock: GClockConfig::default(),
            flush_interval: SimDuration::from_millis(5),
            rcp_interval: SimDuration::from_millis(25),
            rcp_two_phase: false,
            heartbeat_interval: SimDuration::from_millis(10),
            replay: ReplayCostModel::default(),
            op_cpu_cost: SimDuration::from_micros(30),
            vacuum_interval: Some(SimDuration::from_secs(5)),
            arena_soft_limit_bytes: None,
            seed: 42,
        }
    }

    /// The scale-tier preset (ROADMAP "scale-out stress tier"):
    /// `regions` regions (one host each) meshed by the synthetic WAN,
    /// one CN per region, `shard_count` shards with one replica each,
    /// GClock + async replication + LZ4 + ROR — the GlobalDB
    /// configuration, just big.
    pub fn globaldb_scale(regions: usize, shard_count: usize) -> Self {
        ClusterConfig {
            geometry: Geometry::MultiRegion {
                regions,
                bandwidth_mbps: 1_000,
            },
            cn_count: regions,
            shard_count,
            replicas_per_shard: 1,
            tm_mode: TmMode::GClock,
            replication: ReplicationMode::Async,
            codec: Codec::Lz4,
            routing: RoutingPolicy::ReadOnReplica {
                freshness_bound: None,
            },
            ..Self::base()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Build the topology plus placement: regions, hosts, CN / GTM / DN /
    /// replica endpoints.
    pub fn build_topology(&self) -> (Topology, Placement) {
        let (mut topo, regions) = match &self.geometry {
            Geometry::OneRegion { injected_delay } => {
                let (mut t, r) = TopologyBuilder::one_region(self.seed);
                t.set_intra_region(LinkParams::lan());
                t.set_injected_delay(*injected_delay);
                (t, vec![r])
            }
            Geometry::ThreeCity {
                tuned,
                bandwidth_mbps,
            } => {
                let (t, rs) = TopologyBuilder::three_city(self.seed, *tuned, *bandwidth_mbps);
                (t, rs.to_vec())
            }
            Geometry::MultiRegion {
                regions,
                bandwidth_mbps,
            } => TopologyBuilder::multi_region(self.seed, *regions, *bandwidth_mbps),
        };
        // Hosts: in One-Region, three hosts in the single region; in
        // Three-City, one host per city (matching the paper's 3 servers);
        // in the synthetic multi-region mesh, one host per region.
        let host_count = match &self.geometry {
            Geometry::MultiRegion { regions, .. } => (*regions).max(1),
            _ => 3usize,
        };
        let host_region = |h: usize| -> usize {
            if regions.len() == 1 {
                0
            } else {
                h % regions.len()
            }
        };

        // CNs: one per host.
        let mut cn_nodes = Vec::new();
        for i in 0..self.cn_count {
            let h = i % host_count;
            cn_nodes.push((
                topo.add_node(regions[host_region(h)], h as u16, NodeKind::ComputeNode),
                regions[host_region(h)],
            ));
        }
        // GTM co-located with the host that minimizes mean latency; host 0
        // is symmetric enough in both geometries (the paper co-locates the
        // GTM with the lowest-mean-latency machine).
        let gtm_node = topo.add_node(regions[host_region(0)], 0, NodeKind::GtmServer);

        // Shard primaries: spread round-robin over hosts.
        let mut shard_placement = Vec::new();
        for s in 0..self.shard_count {
            let h = s % host_count;
            let region = regions[host_region(h)];
            let primary = topo.add_node(region, h as u16, NodeKind::DataNodePrimary);
            // Replicas on the *other* hosts/regions (disaster tolerance).
            let mut replicas = Vec::new();
            for r in 1..=self.replicas_per_shard {
                let rh = (h + r) % host_count;
                let rregion = regions[host_region(rh)];
                replicas.push((
                    topo.add_node(rregion, rh as u16, NodeKind::DataNodeReplica),
                    rregion,
                ));
            }
            shard_placement.push(ShardPlacement {
                primary,
                primary_region: region,
                replicas,
            });
        }

        (
            topo,
            Placement {
                regions,
                cn_nodes,
                gtm_node,
                shards: shard_placement,
            },
        )
    }
}

/// Where one shard's nodes live.
#[derive(Debug, Clone)]
pub struct ShardPlacement {
    pub primary: gdb_simnet::NetNodeId,
    pub primary_region: gdb_simnet::RegionId,
    pub replicas: Vec<(gdb_simnet::NetNodeId, gdb_simnet::RegionId)>,
}

/// Full placement map produced by [`ClusterConfig::build_topology`].
#[derive(Debug, Clone)]
pub struct Placement {
    pub regions: Vec<gdb_simnet::RegionId>,
    /// `(node, region)` per CN.
    pub cn_nodes: Vec<(gdb_simnet::NetNodeId, gdb_simnet::RegionId)>,
    pub gtm_node: gdb_simnet::NetNodeId,
    pub shards: Vec<ShardPlacement>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_city_placement_spreads_replicas_across_regions() {
        let cfg = ClusterConfig::globaldb_three_city();
        let (topo, placement) = cfg.build_topology();
        assert_eq!(placement.regions.len(), 3);
        assert_eq!(placement.cn_nodes.len(), 3);
        assert_eq!(placement.shards.len(), 6);
        for sp in &placement.shards {
            assert_eq!(sp.replicas.len(), 2);
            for (node, region) in &sp.replicas {
                assert_ne!(
                    *region, sp.primary_region,
                    "replica must be in another region"
                );
                assert_eq!(topo.node_region(*node), *region);
            }
            // The three regions covered by primary + replicas are distinct.
            let mut rs = vec![sp.primary_region];
            rs.extend(sp.replicas.iter().map(|(_, r)| *r));
            rs.sort();
            rs.dedup();
            assert_eq!(rs.len(), 3);
        }
    }

    #[test]
    fn one_region_placement_uses_three_hosts() {
        let cfg = ClusterConfig::baseline_one_region();
        let (topo, placement) = cfg.build_topology();
        assert_eq!(placement.regions.len(), 1);
        for sp in &placement.shards {
            let ph = topo.node_host(sp.primary);
            for (node, _) in &sp.replicas {
                assert_ne!(topo.node_host(*node), ph, "replica on another host");
            }
        }
    }

    #[test]
    fn presets_match_paper_roles() {
        let g = ClusterConfig::globaldb_three_city();
        assert_eq!(g.tm_mode, TmMode::GClock);
        assert_eq!(g.replication, ReplicationMode::Async);
        assert!(matches!(g.routing, RoutingPolicy::ReadOnReplica { .. }));
        let b = ClusterConfig::baseline_three_city();
        assert_eq!(b.tm_mode, TmMode::Gtm);
        assert!(b.replication.is_sync());
        assert_eq!(b.routing, RoutingPolicy::Primary);
    }
}
