//! Typed simulation events for the cluster world.
//!
//! The engine's hot events — log-ship flushes, batch deliveries and
//! replays, RCP rounds, heartbeats, vacuum ticks — form a small closed
//! set, so they are scheduled as [`CoreEvent`] values stored inline in the
//! queue instead of one `Box<dyn FnOnce>` allocation each (see
//! [`gdb_simnet::TypedEvent`]). Open-ended sites keep using closures:
//! chaos fault plans, mode transitions, and migration steps capture
//! arbitrary state and fire rarely, so boxing them costs nothing
//! measurable. `core::net` and `core::lifecycle` schedule nothing
//! themselves — message charges and crash/restore handling run inline in
//! whichever event invokes them.

use crate::cluster::GlobalDb;
use gdb_obs::SpanId;
use gdb_simnet::{NetNodeId, Sim, SimTime, TypedEvent};
use gdb_wal::RedoRecord;

/// The event engine specialized to the cluster world and its typed events.
pub type CoreSim = Sim<GlobalDb, CoreEvent>;

/// The closed set of recurring/hot engine events.
pub enum CoreEvent {
    /// Seal and ship one shard's redo, then re-arm (recurring).
    FlushShard { shard: usize },
    /// A shipped batch arrives at a replica incarnation; models replay
    /// time and schedules the apply.
    DeliverBatch {
        shard: usize,
        node: NetNodeId,
        epoch: u64,
        records: Vec<RedoRecord>,
    },
    /// Replay finished: install the batch at the replica.
    ApplyBatch {
        shard: usize,
        node: NetNodeId,
        epoch: u64,
        records: Vec<RedoRecord>,
    },
    /// Start a region's RCP round (collect phase), then re-arm (recurring).
    RcpRound { region: usize },
    /// Finish phase of a two-phase RCP round, scheduled one gathering
    /// delay after the collect phase (the collector-crash window).
    RcpFinish {
        region: usize,
        collector_cn: usize,
        span: Option<SpanId>,
        start: SimTime,
    },
    /// Cluster-wide heartbeat + clock-health watchdog (recurring).
    Heartbeat,
    /// Vacuum versions below the safe horizon (recurring).
    Vacuum,
}

impl TypedEvent<GlobalDb> for CoreEvent {
    fn fire(self, w: &mut GlobalDb, sim: &mut CoreSim) {
        match self {
            CoreEvent::FlushShard { shard } => crate::repl_driver::flush_event(w, sim, shard),
            CoreEvent::DeliverBatch {
                shard,
                node,
                epoch,
                records,
            } => {
                let Some(done) = w.deliver_batch(shard, node, epoch, records.len(), sim.now())
                else {
                    return; // stale incarnation: the replica was rebuilt
                };
                sim.schedule_event_at(
                    done,
                    CoreEvent::ApplyBatch {
                        shard,
                        node,
                        epoch,
                        records,
                    },
                );
            }
            CoreEvent::ApplyBatch {
                shard,
                node,
                epoch,
                records,
            } => {
                w.apply_batch(shard, node, epoch, &records, sim.now());
            }
            CoreEvent::RcpRound { region } => crate::rcp_driver::rcp_event(w, sim, region),
            CoreEvent::RcpFinish {
                region,
                collector_cn,
                span,
                start,
            } => crate::rcp_driver::rcp_finish_event(w, sim, region, collector_cn, span, start),
            CoreEvent::Heartbeat => crate::rcp_driver::heartbeat_event(w, sim),
            CoreEvent::Vacuum => crate::rcp_driver::vacuum_event(w, sim),
        }
    }
}
