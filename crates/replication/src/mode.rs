//! Replication modes and quorum-wait math.

use gdb_simnet::SimDuration;

/// How commits interact with replica durability (paper §II-A/§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Commit acknowledges immediately; redo ships in the background.
    /// GlobalDB's geo-distributed configuration: replica reads regain
    /// consistency through the RCP.
    Async,
    /// Commit waits until all replicas *in the primary's own region* have
    /// the log. Survives node failures but not a regional disaster.
    SyncLocalQuorum,
    /// Commit waits for `quorum` replicas anywhere (including remote
    /// regions). Survives a site-level disaster; pays WAN latency on every
    /// commit — the paper's baseline on the Three-City cluster.
    SyncRemoteQuorum { quorum: usize },
}

impl ReplicationMode {
    /// True if commits must wait on any replica acknowledgment.
    pub fn is_sync(&self) -> bool {
        !matches!(self, ReplicationMode::Async)
    }
}

/// Given the one-way-plus-ack delays at which each replica would confirm
/// durability (`None` = unreachable), the extra commit wait to reach a
/// quorum of `quorum` confirmations. Returns `None` when the quorum cannot
/// be met (commit must fail or degrade per policy).
pub fn quorum_wait(delays: &[Option<SimDuration>], quorum: usize) -> Option<SimDuration> {
    if quorum == 0 {
        return Some(SimDuration::ZERO);
    }
    let mut reachable: Vec<SimDuration> = delays.iter().flatten().copied().collect();
    if reachable.len() < quorum {
        return None;
    }
    reachable.sort_unstable();
    Some(reachable[quorum - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Option<SimDuration> {
        Some(SimDuration::from_millis(v))
    }

    #[test]
    fn quorum_picks_kth_smallest() {
        let delays = [ms(30), ms(10), ms(50)];
        assert_eq!(quorum_wait(&delays, 1), Some(SimDuration::from_millis(10)));
        assert_eq!(quorum_wait(&delays, 2), Some(SimDuration::from_millis(30)));
        assert_eq!(quorum_wait(&delays, 3), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn unreachable_replicas_are_skipped() {
        let delays = [None, ms(40), ms(20)];
        assert_eq!(quorum_wait(&delays, 2), Some(SimDuration::from_millis(40)));
        assert_eq!(quorum_wait(&delays, 3), None);
    }

    #[test]
    fn zero_quorum_is_free() {
        assert_eq!(quorum_wait(&[None], 0), Some(SimDuration::ZERO));
    }

    #[test]
    fn mode_sync_flag() {
        assert!(!ReplicationMode::Async.is_sync());
        assert!(ReplicationMode::SyncLocalQuorum.is_sync());
        assert!(ReplicationMode::SyncRemoteQuorum { quorum: 2 }.is_sync());
    }
}
