//! Realnet-native fault hooks: per-link delay and connection drops.
//!
//! Chaos faults expressed against the *topology* (region partitions,
//! `tc` delay spikes, node crashes) already reach real transports — they
//! consult [`gdb_simnet::Topology::deliverable`] and
//! [`gdb_simnet::Topology::injected_delay`] per message. This module
//! adds the faults only a physical backend can express: extra delay or a
//! hard drop on one *silo pair's* link, keyed by host id like the
//! silo/membership layout. The controller is `Clone + Send`; tests keep
//! one handle while the transport (inside the cluster) holds another.

use gdb_simnet::SimDuration;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct LinkFaults {
    delay_ns: BTreeMap<(u16, u16), u64>,
    dropped: BTreeSet<(u16, u16)>,
}

fn norm(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Shared, thread-safe fault state for real transports (symmetric,
/// keyed by host pair).
#[derive(Debug, Clone, Default)]
pub struct FaultController {
    inner: Arc<Mutex<LinkFaults>>,
}

impl FaultController {
    /// Add `extra` one-way delay to every message between hosts `a`↔`b`
    /// (physically slept by the receiving silo).
    pub fn set_link_delay(&self, a: u16, b: u16, extra: SimDuration) {
        self.inner
            .lock()
            .expect("fault lock")
            .delay_ns
            .insert(norm(a, b), extra.as_nanos());
    }

    pub fn clear_link_delay(&self, a: u16, b: u16) {
        self.inner
            .lock()
            .expect("fault lock")
            .delay_ns
            .remove(&norm(a, b));
    }

    /// Drop the connection between hosts `a`↔`b`: deliveries return
    /// `None` (undeliverable), like a partition at the socket layer.
    pub fn drop_link(&self, a: u16, b: u16) {
        self.inner
            .lock()
            .expect("fault lock")
            .dropped
            .insert(norm(a, b));
    }

    pub fn heal_link(&self, a: u16, b: u16) {
        self.inner
            .lock()
            .expect("fault lock")
            .dropped
            .remove(&norm(a, b));
    }

    /// Clear every link fault at once (chaos-recovery sweep).
    pub fn heal_all(&self) {
        let mut f = self.inner.lock().expect("fault lock");
        f.delay_ns.clear();
        f.dropped.clear();
    }

    /// Extra injected delay on the `a`↔`b` link, in nanoseconds.
    pub fn delay_ns(&self, a: u16, b: u16) -> u64 {
        *self
            .inner
            .lock()
            .expect("fault lock")
            .delay_ns
            .get(&norm(a, b))
            .unwrap_or(&0)
    }

    pub fn is_dropped(&self, a: u16, b: u16) -> bool {
        self.inner
            .lock()
            .expect("fault lock")
            .dropped
            .contains(&norm(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_faults_are_symmetric_and_healable() {
        let f = FaultController::default();
        f.set_link_delay(2, 0, SimDuration::from_millis(5));
        assert_eq!(f.delay_ns(0, 2), 5_000_000);
        assert_eq!(f.delay_ns(2, 0), 5_000_000);
        assert_eq!(f.delay_ns(0, 1), 0);
        f.drop_link(1, 2);
        assert!(f.is_dropped(2, 1));
        assert!(!f.is_dropped(0, 1));
        f.heal_link(1, 2);
        assert!(!f.is_dropped(1, 2));
        f.drop_link(0, 1);
        f.heal_all();
        assert!(!f.is_dropped(0, 1));
        assert_eq!(f.delay_ns(0, 2), 0);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let f = FaultController::default();
        let g = f.clone();
        std::thread::spawn(move || g.drop_link(0, 1))
            .join()
            .unwrap();
        assert!(f.is_dropped(0, 1));
    }
}
