//! Fig. 6c — read-only TPC-C (Order-Status + Stock-Level, 50% of the
//! queries multi-shard) on the Three-City cluster. GlobalDB's
//! Read-On-Replica serves reads from local replicas at the RCP snapshot;
//! the baseline routes every read to (mostly remote) primaries. The paper
//! reports up to 14× improvement.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin fig6c`

use gdb_bench::{
    artifact, emit_artifact, print_table, ratio, series_from_run, tpcc_run, BenchParams,
};
use gdb_workloads::tpcc::TpccMix;
use globaldb::ClusterConfig;

fn main() {
    let mut params = BenchParams::from_env();
    // The paper drives 600 terminals with negligible think time; the
    // throughput gap is the per-query latency gap.
    params.run.think_time = gdb_simnet::SimDuration::from_millis(1);
    let mut art = artifact("fig6c", &params);

    // "Up to 14x": sweep the offered load (terminal count).
    let mut rows = Vec::new();
    let mut last_rcp_lag = 0.0;
    for terminals in [8usize, 24, 64] {
        let mut p = params;
        p.run.terminals = terminals;
        let (mut c_base, baseline) = tpcc_run(
            ClusterConfig::baseline_three_city(),
            &p,
            TpccMix::read_only(),
            |wl| {
                wl.multi_shard_read_fraction = 0.5;
                wl.remote_cn_fraction = 0.0;
            },
        );
        let (mut cluster, globaldb) = tpcc_run(
            ClusterConfig::globaldb_three_city(),
            &p,
            TpccMix::read_only(),
            |wl| {
                wl.multi_shard_read_fraction = 0.5;
                wl.remote_cn_fraction = 0.0;
            },
        );
        last_rcp_lag = gdb_bench::rcp_lag_ms(&cluster);
        art.series.push(series_from_run(
            format!("baseline @ {terminals}t"),
            &mut c_base,
            &baseline,
        ));
        art.series.push(series_from_run(
            format!("globaldb @ {terminals}t"),
            &mut cluster,
            &globaldb,
        ));
        let b = baseline.throughput_per_sec();
        let g = globaldb.throughput_per_sec();
        rows.push(vec![
            format!("{terminals}"),
            format!("{b:.0}"),
            format!("{}", baseline.mean_latency("stock_level")),
            format!("{g:.0}"),
            format!("{}", globaldb.mean_latency("stock_level")),
            ratio(g, b),
        ]);
    }
    print_table(
        "Fig. 6c — read-only TPC-C on Three-City (50% multi-shard)",
        &[
            "terminals",
            "baseline txn/s",
            "baseline StockLevel",
            "GlobalDB txn/s",
            "GlobalDB StockLevel",
            "speedup",
        ],
        &rows,
    );
    println!(
        "Paper shape: up to 14x read throughput from replica reads plus \
         decentralized timestamps. RCP lag at end: {last_rcp_lag:.1} ms."
    );
    emit_artifact(&art);
}
