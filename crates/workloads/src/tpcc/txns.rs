//! The five TPC-C transactions, implemented over prepared statements
//! exactly as a client application would run them.

use super::{nurand, random_last_name, TpccScale};
use gdb_model::Datum;
use globaldb::{Cluster, GdbError, GdbResult, Prepared, TxnOutcome};
use rand::rngs::SmallRng;
use rand::Rng;

fn d(v: i64) -> Datum {
    Datum::Int(v)
}

fn dec(v: i64) -> Datum {
    Datum::Decimal(v)
}

/// All statements, prepared once against the cluster catalog.
pub struct Statements {
    // New-Order
    w_tax: Prepared,
    dist_for_update: Prepared,
    dist_inc: Prepared,
    cust_fields: Prepared,
    ins_order: Prepared,
    ins_new_order: Prepared,
    item_price: Prepared,
    stock_for_update: Prepared,
    stock_update: Prepared,
    ins_order_line: Prepared,
    // Payment
    pay_wh: Prepared,
    pay_dist: Prepared,
    cust_by_last: Prepared,
    cust_bal_for_update: Prepared,
    cust_pay_update: Prepared,
    ins_history: Prepared,
    // Order-Status
    os_last_order: Prepared,
    os_order_lines: Prepared,
    os_cust: Prepared,
    // Delivery
    dlv_oldest_no: Prepared,
    dlv_del_no: Prepared,
    dlv_order: Prepared,
    dlv_set_carrier: Prepared,
    dlv_update_ol: Prepared,
    dlv_sum_ol: Prepared,
    dlv_cust: Prepared,
    // Stock-Level
    sl_next_oid: Prepared,
    sl_count: Prepared,
}

impl Statements {
    pub fn prepare(cluster: &Cluster) -> GdbResult<Self> {
        Ok(Statements {
            w_tax: cluster.prepare("SELECT w_tax FROM warehouse WHERE w_id = ?")?,
            dist_for_update: cluster.prepare(
                "SELECT d_tax, d_next_o_id FROM district \
                 WHERE d_w_id = ? AND d_id = ? FOR UPDATE",
            )?,
            dist_inc: cluster.prepare(
                "UPDATE district SET d_next_o_id = d_next_o_id + 1 \
                 WHERE d_w_id = ? AND d_id = ?",
            )?,
            cust_fields: cluster.prepare(
                "SELECT c_discount, c_last, c_credit FROM customer \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            )?,
            ins_order: cluster.prepare("INSERT INTO orders VALUES (?, ?, ?, ?, NULL, ?, ?)")?,
            ins_new_order: cluster.prepare("INSERT INTO new_order VALUES (?, ?, ?)")?,
            item_price: cluster.prepare("SELECT i_price, i_name FROM item WHERE i_id = ?")?,
            stock_for_update: cluster.prepare(
                "SELECT s_quantity, s_ytd, s_order_cnt, s_remote_cnt FROM stock \
                 WHERE s_w_id = ? AND s_i_id = ? FOR UPDATE",
            )?,
            stock_update: cluster.prepare(
                "UPDATE stock SET s_quantity = ?, s_ytd = ?, s_order_cnt = ?, s_remote_cnt = ? \
                 WHERE s_w_id = ? AND s_i_id = ?",
            )?,
            ins_order_line: cluster
                .prepare("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, NULL, ?, ?)")?,
            pay_wh: cluster.prepare("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?")?,
            pay_dist: cluster.prepare(
                "UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
            )?,
            cust_by_last: cluster.prepare(
                "SELECT c_id, c_first FROM customer \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
            )?,
            cust_bal_for_update: cluster.prepare(
                "SELECT c_balance, c_ytd_payment, c_payment_cnt FROM customer \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ? FOR UPDATE",
            )?,
            cust_pay_update: cluster.prepare(
                "UPDATE customer SET c_balance = ?, c_ytd_payment = ?, c_payment_cnt = ? \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            )?,
            ins_history: cluster.prepare("INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)")?,
            os_last_order: cluster.prepare(
                "SELECT o_id, o_carrier_id, o_entry_d, o_ol_cnt FROM orders \
                 WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? ORDER BY o_id DESC LIMIT 1",
            )?,
            os_order_lines: cluster.prepare(
                "SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d \
                 FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
            )?,
            os_cust: cluster.prepare(
                "SELECT c_balance, c_first, c_last FROM customer \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            )?,
            dlv_oldest_no: cluster.prepare(
                "SELECT no_o_id FROM new_order \
                 WHERE no_w_id = ? AND no_d_id = ? ORDER BY no_o_id ASC LIMIT 1",
            )?,
            dlv_del_no: cluster.prepare(
                "DELETE FROM new_order WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?",
            )?,
            dlv_order: cluster.prepare(
                "SELECT o_c_id, o_ol_cnt FROM orders \
                 WHERE o_w_id = ? AND o_d_id = ? AND o_id = ? FOR UPDATE",
            )?,
            dlv_set_carrier: cluster.prepare(
                "UPDATE orders SET o_carrier_id = ? WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
            )?,
            dlv_update_ol: cluster.prepare(
                "UPDATE order_line SET ol_delivery_d = ? \
                 WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
            )?,
            dlv_sum_ol: cluster.prepare(
                "SELECT SUM(ol_amount) FROM order_line \
                 WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
            )?,
            dlv_cust: cluster.prepare(
                "UPDATE customer SET c_balance = c_balance + ?, c_delivery_cnt = c_delivery_cnt + 1 \
                 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            )?,
            sl_next_oid: cluster.prepare(
                "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
            )?,
            sl_count: cluster.prepare(
                "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock \
                 WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id BETWEEN ? AND ? \
                 AND s_w_id = ? AND s_i_id = ol_i_id AND s_quantity < ?",
            )?,
        })
    }
}

/// New-Order (clause 2.4): the tpmC transaction. ~1% of orders contain an
/// invalid item and roll back; ~1% of lines are supplied by a remote
/// warehouse (making the transaction multi-shard).
#[allow(clippy::too_many_arguments)]
pub fn new_order(
    cluster: &mut Cluster,
    st: &Statements,
    rng: &mut SmallRng,
    scale: &TpccScale,
    cn: usize,
    at: globaldb::SimTime,
    w: i64,
    dist: i64,
    remote_supply_fraction: f64,
) -> GdbResult<TxnOutcome> {
    let c = nurand(rng, 1, scale.customers_per_district);
    let ol_cnt = rng.gen_range(5..=15i64);
    let rollback = rng.gen_ratio(1, 100);
    let mut lines = Vec::with_capacity(ol_cnt as usize);
    for i in 0..ol_cnt {
        let item = if rollback && i == ol_cnt - 1 {
            -1 // invalid item: forces the spec's 1% rollback
        } else {
            nurand(rng, 1, scale.items)
        };
        let supply_w = if scale.warehouses > 1 && rng.gen_bool(remote_supply_fraction) {
            // Remote supply warehouse.
            let mut o = rng.gen_range(1..=scale.warehouses - 1);
            if o >= w {
                o += 1;
            }
            o
        } else {
            w
        };
        lines.push((item, supply_w, rng.gen_range(1..=10i64)));
    }
    let single_shard = lines.iter().all(|&(_, sw, _)| sw == w);
    let entry_d = at.as_millis() as i64;

    let (_, outcome) = cluster.run_transaction(cn, at, false, single_shard, |txn| {
        let _wtax = txn.execute(&st.w_tax, &[d(w)])?;
        let dist_row = txn.execute(&st.dist_for_update, &[d(w), d(dist)])?;
        let dist_rows = dist_row.rows();
        let Some(drow) = dist_rows.first() else {
            // A snapshot too stale to see the loaded rows (possible under
            // extreme clock error): retry.
            return Err(GdbError::TxnAborted("stale snapshot".into()));
        };
        let o_id = drow.0[1]
            .as_int()
            .ok_or_else(|| GdbError::Execution("bad d_next_o_id".into()))?;
        txn.execute(&st.dist_inc, &[d(w), d(dist)])?;
        let _cust = txn.execute(&st.cust_fields, &[d(w), d(dist), d(c)])?;
        txn.execute(
            &st.ins_order,
            &[d(w), d(dist), d(o_id), d(c), d(ol_cnt), d(entry_d)],
        )?;
        txn.execute(&st.ins_new_order, &[d(w), d(dist), d(o_id)])?;

        for (number, &(item, supply_w, qty)) in lines.iter().enumerate() {
            let price_row = txn.execute(&st.item_price, &[d(item)])?;
            let rows = price_row.rows();
            if rows.is_empty() {
                // Invalid item: the spec requires a full rollback.
                return Err(GdbError::TxnAborted("invalid item number".into()));
            }
            let price = rows[0].0[0].as_decimal().unwrap_or(0);
            let stock = txn.execute(&st.stock_for_update, &[d(supply_w), d(item)])?;
            let stock_rows = stock.rows();
            let Some(srow) = stock_rows.first() else {
                return Err(GdbError::TxnAborted("stale snapshot".into()));
            };
            let s_qty = srow.0[0].as_int().unwrap_or(0);
            let s_ytd = srow.0[1].as_int().unwrap_or(0);
            let s_cnt = srow.0[2].as_int().unwrap_or(0);
            let s_rem = srow.0[3].as_int().unwrap_or(0);
            let new_qty = if s_qty - qty >= 10 {
                s_qty - qty
            } else {
                s_qty - qty + 91
            };
            txn.execute(
                &st.stock_update,
                &[
                    d(new_qty),
                    d(s_ytd + qty),
                    d(s_cnt + 1),
                    d(s_rem + if supply_w != w { 1 } else { 0 }),
                    d(supply_w),
                    d(item),
                ],
            )?;
            txn.execute(
                &st.ins_order_line,
                &[
                    d(w),
                    d(dist),
                    d(o_id),
                    d(number as i64 + 1),
                    d(item),
                    d(supply_w),
                    d(qty),
                    dec(price * qty),
                ],
            )?;
        }
        Ok(())
    })?;
    Ok(outcome)
}

/// Payment (clause 2.5): 60% select the customer by last name; 15% pay a
/// customer resident at a remote warehouse (multi-shard).
#[allow(clippy::too_many_arguments)]
pub fn payment(
    cluster: &mut Cluster,
    st: &Statements,
    rng: &mut SmallRng,
    scale: &TpccScale,
    cn: usize,
    at: globaldb::SimTime,
    w: i64,
    dist: i64,
    h_id: i64,
    remote_payment_fraction: f64,
) -> GdbResult<TxnOutcome> {
    let amount = rng.gen_range(100..=500_000i64); // 1.00 .. 5000.00
    let (c_w, c_d) = if scale.warehouses > 1 && rng.gen_bool(remote_payment_fraction) {
        let mut o = rng.gen_range(1..=scale.warehouses - 1);
        if o >= w {
            o += 1;
        }
        (o, rng.gen_range(1..=scale.districts_per_warehouse))
    } else {
        (w, dist)
    };
    let by_last = rng.gen_ratio(60, 100);
    let c_last = random_last_name(rng);
    let c_id_direct = nurand(rng, 1, scale.customers_per_district);
    let single_shard = c_w == w;
    let date = at.as_millis() as i64;

    let (_, outcome) = cluster.run_transaction(cn, at, false, single_shard, |txn| {
        txn.execute(&st.pay_wh, &[dec(amount), d(w)])?;
        txn.execute(&st.pay_dist, &[dec(amount), d(w), d(dist)])?;
        let c_id = if by_last {
            let matches = txn.execute(
                &st.cust_by_last,
                &[d(c_w), d(c_d), Datum::Text(c_last.clone())],
            )?;
            let rows = matches.rows();
            if rows.is_empty() {
                // No customer with this name at the scaled-down
                // cardinality: fall back to direct id.
                c_id_direct
            } else {
                rows[rows.len() / 2].0[0].as_int().unwrap_or(c_id_direct)
            }
        } else {
            c_id_direct
        };
        let bal = txn.execute(&st.cust_bal_for_update, &[d(c_w), d(c_d), d(c_id)])?;
        let rows = bal.rows();
        let row = rows
            .first()
            .ok_or_else(|| GdbError::TxnAborted("payment customer not visible".into()))?;
        let c_balance = row.0[0].as_decimal().unwrap_or(0);
        let c_ytd = row.0[1].as_decimal().unwrap_or(0);
        let c_cnt = row.0[2].as_int().unwrap_or(0);
        txn.execute(
            &st.cust_pay_update,
            &[
                dec(c_balance - amount),
                dec(c_ytd + amount),
                d(c_cnt + 1),
                d(c_w),
                d(c_d),
                d(c_id),
            ],
        )?;
        txn.execute(
            &st.ins_history,
            &[
                d(w),
                d(h_id),
                d(dist),
                d(c_w),
                d(c_d),
                d(c_id),
                dec(amount),
                d(date),
            ],
        )?;
        Ok(())
    })?;
    Ok(outcome)
}

/// Order-Status (clause 2.6): read-only; 60% by last name.
#[allow(clippy::too_many_arguments)]
pub fn order_status(
    cluster: &mut Cluster,
    st: &Statements,
    rng: &mut SmallRng,
    scale: &TpccScale,
    cn: usize,
    at: globaldb::SimTime,
    w: i64,
    dist: i64,
) -> GdbResult<TxnOutcome> {
    let by_last = rng.gen_ratio(60, 100);
    let c_last = random_last_name(rng);
    let c_id_direct = nurand(rng, 1, scale.customers_per_district);

    let (_, outcome) = cluster.run_transaction(cn, at, true, true, |txn| {
        let c_id = if by_last {
            let matches = txn.execute(
                &st.cust_by_last,
                &[d(w), d(dist), Datum::Text(c_last.clone())],
            )?;
            let rows = matches.rows();
            if rows.is_empty() {
                c_id_direct
            } else {
                rows[rows.len() / 2].0[0].as_int().unwrap_or(c_id_direct)
            }
        } else {
            c_id_direct
        };
        txn.execute(&st.os_cust, &[d(w), d(dist), d(c_id)])?;
        let last = txn.execute(&st.os_last_order, &[d(w), d(dist), d(c_id)])?;
        if let Some(order) = last.rows().first() {
            let o_id = order.0[0].as_int().unwrap_or(0);
            txn.execute(&st.os_order_lines, &[d(w), d(dist), d(o_id)])?;
        }
        Ok(())
    })?;
    Ok(outcome)
}

/// Delivery (clause 2.7): drains the oldest undelivered order of every
/// district of the warehouse.
pub fn delivery(
    cluster: &mut Cluster,
    st: &Statements,
    rng: &mut SmallRng,
    scale: &TpccScale,
    cn: usize,
    at: globaldb::SimTime,
    w: i64,
) -> GdbResult<TxnOutcome> {
    let carrier = rng.gen_range(1..=10i64);
    let date = at.as_millis() as i64;
    let districts = scale.districts_per_warehouse;

    let (_, outcome) = cluster.run_transaction(cn, at, false, true, |txn| {
        for dist in 1..=districts {
            let oldest = txn.execute(&st.dlv_oldest_no, &[d(w), d(dist)])?;
            let Some(row) = oldest.rows().first().cloned() else {
                continue; // nothing undelivered in this district
            };
            let o_id = row.0[0].as_int().unwrap_or(0);
            txn.execute(&st.dlv_del_no, &[d(w), d(dist), d(o_id)])?;
            let order = txn.execute(&st.dlv_order, &[d(w), d(dist), d(o_id)])?;
            let rows = order.rows();
            let Some(orow) = rows.first() else { continue };
            let c_id = orow.0[0].as_int().unwrap_or(0);
            txn.execute(&st.dlv_set_carrier, &[d(carrier), d(w), d(dist), d(o_id)])?;
            txn.execute(&st.dlv_update_ol, &[d(date), d(w), d(dist), d(o_id)])?;
            let sum = txn.execute(&st.dlv_sum_ol, &[d(w), d(dist), d(o_id)])?;
            let sum_rows = sum.rows();
            let amount = sum_rows
                .first()
                .and_then(|r| r.0[0].as_decimal())
                .unwrap_or(0);
            txn.execute(&st.dlv_cust, &[dec(amount), d(w), d(dist), d(c_id)])?;
        }
        Ok(())
    })?;
    Ok(outcome)
}

/// Stock-Level (clause 2.8): read-only join of recent order lines with
/// low-stock items. `stock_w` may point at a remote warehouse to make the
/// query multi-shard (Fig. 6c runs 50% multi-shard).
#[allow(clippy::too_many_arguments)]
pub fn stock_level(
    cluster: &mut Cluster,
    st: &Statements,
    rng: &mut SmallRng,
    _scale: &TpccScale,
    cn: usize,
    at: globaldb::SimTime,
    w: i64,
    dist: i64,
    stock_w: i64,
) -> GdbResult<TxnOutcome> {
    let threshold = rng.gen_range(10..=20i64);
    let single_shard = stock_w == w;

    let (_, outcome) = cluster.run_transaction(cn, at, true, single_shard, |txn| {
        let next = txn.execute(&st.sl_next_oid, &[d(w), d(dist)])?;
        let next_rows = next.rows();
        let next_oid = next_rows
            .first()
            .and_then(|r| r.0[0].as_int())
            .ok_or_else(|| GdbError::TxnAborted("stale snapshot".into()))?;
        txn.execute(
            &st.sl_count,
            &[
                d(w),
                d(dist),
                d((next_oid - 20).max(1)),
                d(next_oid),
                d(stock_w),
                d(threshold),
            ],
        )?;
        Ok(())
    })?;
    Ok(outcome)
}
