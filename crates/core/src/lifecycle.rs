//! Node lifecycle and fault injection: the chaos subsystem's entry points.
//!
//! Every method here takes `&mut GlobalDb` (not `Cluster`) so fault plans
//! can fire from *inside* scheduled simulation events, exactly like the
//! background activities they disturb. This module centralizes the
//! interleaved crash/heal ordering rules — what survives a crash (durable
//! WAL, applier state), what an incarnation bump orphans (in-flight
//! deliveries), and which failovers force a resync — so overlapping fault
//! plans compose without bespoke per-test recovery code.

use crate::cluster::GlobalDb;
use crate::repl_driver::Replica;
use crate::shardlog::ShardLog;
use gdb_model::{GdbError, GdbResult, Timestamp};
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simnet::{NetNodeId, NodeKind, RegionId, SimDuration, SimTime};

impl GlobalDb {
    /// Crash an arbitrary node: messages to/from it are dropped.
    pub fn crash_node(&mut self, node: NetNodeId) {
        self.topo.set_node_down(node, true);
    }

    /// Bring a crashed node back (topology level only — see the typed
    /// restart methods for state resynchronization).
    pub fn restore_node(&mut self, node: NetNodeId) {
        self.topo.set_node_down(node, false);
    }

    /// Crash a shard's primary data node. Replicas keep serving reads at
    /// the RCP; writes to the shard fail (retryably) until the primary
    /// restarts or a replica is promoted. Returns the crashed node.
    pub fn crash_primary(&mut self, shard_idx: usize) -> NetNodeId {
        let node = self.shards[shard_idx].primary;
        self.crash_node(node);
        node
    }

    /// Restart a crashed primary in place: its WAL survived, so replicas
    /// simply resume draining the redo stream where they left off (the
    /// shipping loop retries automatically once the node is reachable).
    pub fn restart_primary(&mut self, shard_idx: usize) {
        let node = self.shards[shard_idx].primary;
        self.restore_node(node);
    }

    /// Crash one replica of a shard. In-flight redo batches die with the
    /// connection (the incarnation bump drops them); the applier's durable
    /// state — applied rows, pending-transaction buffers rebuilt from its
    /// WAL — survives for [`GlobalDb::restart_replica`].
    pub fn crash_replica(&mut self, shard_idx: usize, replica_idx: usize) -> Option<NetNodeId> {
        let replica = self.shards[shard_idx].replicas.get_mut(replica_idx)?;
        replica.epoch += 1; // orphan in-flight deliver events
        let node = replica.node;
        self.crash_node(node);
        Some(node)
    }

    /// Restart a crashed replica with WAL catch-up: the shipping channel
    /// rewinds to the applier's durable resume point and the lost tail is
    /// re-shipped (duplicates replay idempotently).
    pub fn restart_replica(&mut self, shard_idx: usize, replica_idx: usize, now: SimTime) {
        let Some(replica) = self.shards[shard_idx].replicas.get_mut(replica_idx) else {
            return;
        };
        let resume = replica.applier.resume_from();
        replica.channel.rewind(resume);
        replica.busy_until = now;
        replica.stream_free = now;
        replica.last_arrival = now;
        let node = replica.node;
        self.restore_node(node);
    }

    /// Crash the GTM server node. GClock-mode commits are unaffected; GTM
    /// and DUAL mode commits (and GTM-routed begins) fail retryably until
    /// [`GlobalDb::restart_gtm`].
    pub fn crash_gtm(&mut self) {
        self.crash_node(self.gtm_node);
    }

    /// GTM failover: a standby takes over at the same address. The
    /// timestamp counter never regresses — it was replicated via
    /// `observe_commit` and commit persistence, so the new incumbent
    /// resumes from the durable maximum.
    pub fn restart_gtm(&mut self) {
        self.restore_node(self.gtm_node);
    }

    /// Crash a computing node. Transactions routed to it fail retryably;
    /// if it was its region's RCP collector, the next alive CN in the
    /// region takes over at the next collection round.
    pub fn crash_cn(&mut self, cn: usize) {
        let node = self.cns[cn].node;
        self.crash_node(node);
    }

    /// Restart a crashed CN: it rejoins with a freshly synced clock and
    /// its old (monotone) RCP value, adopting newer values at the next
    /// distribution round.
    pub fn restart_cn(&mut self, cn: usize, now: SimTime) {
        let node = self.cns[cn].node;
        self.restore_node(node);
        self.sync_cn_clock(cn, now);
    }

    /// Cut a CN's clock-sync daemon off from its regional time device.
    /// The clock keeps running on its crystal: drift accumulates and the
    /// error bound grows without bound, stretching GClock commit waits,
    /// until [`GlobalDb::resume_clock_sync`].
    pub fn block_clock_sync(&mut self, cn: usize) {
        if cn < self.clock_sync_blocked.len() {
            self.clock_sync_blocked[cn] = true;
        }
    }

    /// Reconnect a CN's clock-sync daemon and sync immediately.
    pub fn resume_clock_sync(&mut self, cn: usize, now: SimTime) {
        if cn < self.clock_sync_blocked.len() {
            self.clock_sync_blocked[cn] = false;
        }
        self.sync_cn_clock(cn, now);
    }

    /// Partition two regions (by index into [`GlobalDb::regions`]):
    /// messages between them are dropped until healed.
    pub fn partition_regions(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.regions[a], self.regions[b]);
        self.topo.partition(ra, rb);
    }

    /// Heal a region partition.
    pub fn heal_regions(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.regions[a], self.regions[b]);
        self.topo.heal(ra, rb);
    }

    /// Inject a `tc`-style extra one-way delay on every inter-host
    /// message (transient jitter spike); `ZERO` clears it.
    pub fn set_injected_delay(&mut self, delay: SimDuration) {
        self.topo.set_injected_delay(delay);
    }

    /// Promote one of a shard's replicas to primary at virtual time `now`
    /// (see [`crate::Cluster::promote_replica`] for the durability
    /// semantics).
    pub fn promote_replica_at(
        &mut self,
        shard_idx: usize,
        replica_idx: usize,
        now: SimTime,
    ) -> GdbResult<()> {
        if replica_idx >= self.shards[shard_idx].replicas.len() {
            return Err(GdbError::Internal(format!(
                "shard {shard_idx} has no replica {replica_idx}"
            )));
        }

        if self.config.replication.is_sync() {
            // Acknowledged commits are durable on the quorum: deliver the
            // whole outstanding stream to the chosen replica first. Seal
            // everything, including records staged with a later apply
            // instant — appending happens when the commit's WAL write is
            // issued, so staged records are already on the durable log the
            // quorum acknowledged.
            self.shards[shard_idx].log.seal_all(now);
            // Batches drained for this replica but still in flight die
            // with the failover (their delivery events are orphaned once
            // the replica leaves the list below), so restart the stream
            // from the applier's durable resume point — otherwise the
            // drain would skip the in-flight tail and leave a replay gap.
            {
                let replica = &mut self.shards[shard_idx].replicas[replica_idx];
                let resume = replica.applier.resume_from();
                replica.channel.rewind(resume);
            }
            loop {
                let (node, epoch, batch) = {
                    let shard = &mut self.shards[shard_idx];
                    let replica = &mut shard.replicas[replica_idx];
                    match replica.channel.drain(shard.log.sealed()) {
                        Some(wire) => (replica.node, replica.epoch, wire.batch.records),
                        None => break,
                    }
                };
                self.apply_batch(shard_idx, node, epoch, &batch, now);
            }
        }

        let codec = self.config.codec;
        let shard = &mut self.shards[shard_idx];
        let promoted = shard.replicas.remove(replica_idx);
        let old_primary = shard.primary;
        shard.primary = promoted.node;
        shard.region = promoted.region;
        // The old primary's row locks outlive it: commits already on the
        // durable log can carry apply instants — and commit timestamps —
        // *later* than the promotion instant (the cursor execution stages
        // them in the virtual future), and only the lock release times
        // make the next writer of such a key wait them out. Dropping the
        // lock table here would let a post-failover writer commit the same
        // key with a smaller timestamp than a drained record's.
        let old_locks = std::mem::take(&mut shard.storage.locks);
        // Pending (uncommitted) transactions die with their coordinators.
        shard.storage = promoted.applier.into_storage();
        shard.storage.locks = old_locks;
        shard.log = ShardLog::new();
        // Remaining replicas full-resync from the new primary: fresh
        // applier over a snapshot of the promoted state, fresh channel on
        // the new (empty) redo stream, new incarnation.
        for replica in &mut shard.replicas {
            replica.applier = ReplicaApplier::new(shard.storage.clone());
            replica.channel = ShippingChannel::new(codec);
            replica.busy_until = now;
            replica.stream_free = now;
            replica.last_arrival = now;
            replica.epoch += 1;
        }
        let _ = old_primary;

        // Replica membership changed: rebuild the per-region RCP groups.
        self.rebuild_rcp_groups();
        // The primary moved (no routing-epoch bump on promotion — routes
        // to the shard stay valid, only the destination node changed):
        // refresh the flat routing table so O(1) lookups see the new
        // primary and the nearest-shard cache tracks the new placement.
        self.rebuild_routes();
        Ok(())
    }

    /// Re-admit a recovered node as a replica of `shard` at `now` (see
    /// [`crate::Cluster::rejoin_as_replica`]).
    pub fn rejoin_as_replica_at(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        now: SimTime,
    ) -> GdbResult<()> {
        self.topo.set_node_down(node, false);
        let region = self.topo.node_region(node);
        let codec = self.config.codec;
        // Seal the *entire* staged log so the stream cut aligns with the
        // snapshot: `storage` already holds versions whose records are
        // staged with future apply instants (commit processing installs
        // both synchronously), and re-shipping those after the rejoin
        // would replay writes the snapshot contains — out of timestamp
        // order. The channel resumes at the post-cut head.
        self.shards[shard_idx].log.seal_all(now);
        let head = self.shards[shard_idx].log.sealed_head();
        let shard = &mut self.shards[shard_idx];
        // The snapshot's high-water mark: nothing above the primary's
        // installed state is claimed.
        let max_ts = shard
            .replicas
            .iter()
            .map(|r| r.applier.max_commit_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
        let mut channel = ShippingChannel::new(codec);
        channel.rewind(head);
        shard.replicas.push(Replica {
            node,
            region,
            applier: ReplicaApplier::resumed(shard.storage.clone(), head, max_ts),
            channel,
            busy_until: now,
            stream_free: now,
            last_arrival: now,
            epoch: 0,
        });
        self.rebuild_rcp_groups();
        Ok(())
    }

    // ---- Elastic membership: online node add / drain / retire ----------

    /// Provision a spare data node on `(region, host)` — elastic
    /// scale-out. The node carries no shards yet; it advertises the host
    /// slot to the rebalancer, which moves primaries/replicas onto it
    /// through the normal migration path. Draws no RNG, so an idle join
    /// leaves the trace unchanged.
    pub fn join_data_node(&mut self, region: RegionId, host: u16) -> NetNodeId {
        self.topo.add_node(region, host, NodeKind::DataNodeReplica)
    }

    /// Mark a host slot as draining (elastic scale-in): the rebalancer's
    /// cost model treats every placement on it as maximally expensive and
    /// proposes moves off it; once empty — and no in-flight migration
    /// touches it — its data nodes are retired permanently by
    /// [`GlobalDb::maybe_retire_drained`]. Co-located CNs/GTM stay.
    pub fn mark_host_draining(&mut self, region: RegionId, host: u16) {
        if !self.draining.contains(&(region, host)) {
            self.draining.push((region, host));
        }
    }

    /// Shard placements currently on `(region, host)`: primary shard
    /// indices and `(shard, replica node)` pairs.
    pub fn host_placements(
        &self,
        region: RegionId,
        host: u16,
    ) -> (Vec<usize>, Vec<(usize, NetNodeId)>) {
        let mut primaries = Vec::new();
        let mut replicas = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if self.topo.node_region(shard.primary) == region
                && self.topo.node_host(shard.primary) == host
            {
                primaries.push(s);
            }
            for r in &shard.replicas {
                if self.topo.node_region(r.node) == region && self.topo.node_host(r.node) == host {
                    replicas.push((s, r.node));
                }
            }
        }
        (primaries, replicas)
    }

    /// Retire the data nodes of every draining host that has emptied
    /// (no primary, no replica, no in-flight migration endpoint on it).
    /// Called after every migration-plan completion or abort, so a
    /// drain self-completes the moment its last move lands; callable
    /// directly to force a sweep.
    pub fn maybe_retire_drained(&mut self) {
        let mut i = 0;
        while i < self.draining.len() {
            let (region, host) = self.draining[i];
            let (primaries, replicas) = self.host_placements(region, host);
            let busy = self.migrations.iter().any(|m| {
                [m.source, m.target]
                    .iter()
                    .any(|&n| self.topo.node_region(n) == region && self.topo.node_host(n) == host)
            });
            if primaries.is_empty() && replicas.is_empty() && !busy {
                for n in 0..self.topo.node_count() {
                    let node = NetNodeId(n as u32);
                    if self.topo.node_region(node) == region
                        && self.topo.node_host(node) == host
                        && matches!(
                            self.topo.node_kind(node),
                            NodeKind::DataNodePrimary | NodeKind::DataNodeReplica
                        )
                        && !self.topo.is_node_retired(node)
                    {
                        self.topo.retire_node(node);
                    }
                }
                self.draining.remove(i);
                self.last_host_retired = Some((region, host));
                if !self.retired_hosts.contains(&(region, host)) {
                    self.retired_hosts.push((region, host));
                }
            } else {
                i += 1;
            }
        }
    }
}
