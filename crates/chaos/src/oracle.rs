//! The invariant oracle: probe transactions and consistency checkers.
//!
//! While a fault plan executes, the oracle drives small probe
//! transactions against a dedicated `chaos_probe` table and checks, on
//! every observation:
//!
//! * **External consistency** — if write `p` was acknowledged before
//!   write `w` started (in virtual real time), then `p.commit_ts <
//!   w.commit_ts`.
//! * **RCP monotonicity** — no CN's adopted RCP ever moves backwards.
//! * **RCP bound** — a region's computed RCP never exceeds the largest
//!   max-applied-commit-ts among that region's replicas.
//! * **Replica-read containment** — a read served by replicas runs at
//!   exactly the CN's RCP snapshot, never newer.
//! * **Read correctness** — every read returns the probe value written
//!   by the latest write with `commit_ts <= snapshot` (reads are checked
//!   against the full write history, so a lost or resurrected version is
//!   caught the moment any probe observes it). When asynchronous
//!   replication fails over ([`OracleState::lossy`]) the newest writes
//!   may be gone, so reads may observe older acked values — but still
//!   never a value that was not written at or before the snapshot.
//! * **Durability** (strict mode, i.e. synchronous replication) — the
//!   per-key value sequence in commit-timestamp order is exactly
//!   `1, 2, 3, ...`: no acknowledged write is ever lost, not even across
//!   a primary failover. Under asynchronous replication a failover may
//!   lose acknowledged writes, but only the shipping-window tail —
//!   [`Oracle::final_check`] bounds the loss instead of skipping the
//!   check.

use crate::trace::TraceHandle;
use globaldb::{Cluster, Datum, GlobalDb, Prepared, SimDuration, SimTime, Timestamp};
use std::cell::RefCell;
use std::rc::Rc;

/// Metric: end-to-end latency of committed oracle probe transactions
/// (both write and read probes). Lives in the cluster's metrics registry,
/// so nemesis `--json` artifacts carry the full fault-window latency
/// distribution of the probes alongside the workload's.
pub const PROBE_LATENCY_US: &str = "chaos.probe_latency_us";

/// One primary-failover episode of the executed fault plan: the crash of
/// a shard's primary and the later promotion of one of its replicas. In
/// asynchronous replication this is the only event that can lose
/// acknowledged writes — and only those acked inside the shipping window
/// before the crash (or between crash and promotion, which the shard
/// rejects anyway).
#[derive(Debug, Clone, Copy)]
pub struct FailoverWindow {
    pub crash_at: SimTime,
    pub promote_at: SimTime,
}

/// One acknowledged probe write.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    pub key: i64,
    pub value: i64,
    pub started_at: SimTime,
    pub acked_at: SimTime,
    pub commit_ts: Timestamp,
}

/// Everything the oracle accumulates over a run.
#[derive(Debug, Default)]
pub struct OracleState {
    pub history: Vec<WriteRecord>,
    pub violations: Vec<String>,
    /// Set by the runner when asynchronous replication runs a plan with a
    /// primary failover: the lost shipping-window tail means a read may
    /// legitimately observe an *older* acked value than the newest one at
    /// its snapshot. Mid-run reads then only reject invented values
    /// (never written, or newer than the snapshot); how much rollback is
    /// tolerable is enforced by [`Oracle::final_check`]'s bounded-loss
    /// pass.
    pub lossy: bool,
    /// Per-CN last observed RCP (monotonicity witness).
    last_rcp: Vec<Timestamp>,
    pub writes_committed: u64,
    /// Probe writes rejected with a retryable error (expected under
    /// faults: CN down, shard unreachable, lock conflict).
    pub writes_rejected: u64,
    pub reads_checked: u64,
    pub reads_rejected: u64,
    pub rcp_checks: u64,
}

impl OracleState {
    fn violation(&mut self, trace: &TraceHandle, at: SimTime, msg: String) {
        trace.borrow_mut().record(at, format!("VIOLATION {msg}"));
        self.violations.push(msg);
    }
}

pub type OracleHandle = Rc<RefCell<OracleState>>;

/// The oracle: probe statements plus shared observation state.
pub struct Oracle {
    pub state: OracleHandle,
    keys: i64,
    select_v: Rc<Prepared>,
    /// Locking variant for the write probe: without `FOR UPDATE` the
    /// read-modify-write would be two steps under snapshot isolation and
    /// two overlapping probes could both increment the same base value (a
    /// plain lost update, not a system fault).
    select_v_locked: Rc<Prepared>,
    update_v: Rc<Prepared>,
}

impl Oracle {
    /// Create the probe table, seed `keys` rows (value 0), and record
    /// their insertion in the write history.
    pub fn install(cluster: &mut Cluster, keys: i64) -> globaldb::GdbResult<Oracle> {
        cluster.ddl(
            "CREATE TABLE chaos_probe (id INT NOT NULL, v INT, \
             PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
        )?;
        let insert = cluster.prepare("INSERT INTO chaos_probe VALUES (?, ?)")?;
        let select_v = cluster.prepare("SELECT v FROM chaos_probe WHERE id = ?")?;
        let select_v_locked =
            cluster.prepare("SELECT v FROM chaos_probe WHERE id = ? FOR UPDATE")?;
        let update_v = cluster.prepare("UPDATE chaos_probe SET v = ? WHERE id = ?")?;

        let mut history = Vec::new();
        for k in 0..keys {
            let at = cluster.now();
            let (_, outcome) = cluster.run_transaction(0, at, false, true, |t| {
                t.execute(&insert, &[Datum::Int(k), Datum::Int(0)])
            })?;
            history.push(WriteRecord {
                key: k,
                value: 0,
                started_at: at,
                acked_at: outcome.completed_at,
                commit_ts: outcome.commit_ts.expect("probe insert commits"),
            });
        }
        let state = Rc::new(RefCell::new(OracleState {
            history,
            last_rcp: vec![Timestamp::ZERO; cluster.db.cns().len()],
            ..OracleState::default()
        }));
        Ok(Oracle {
            state,
            keys,
            select_v: Rc::new(select_v),
            select_v_locked: Rc::new(select_v_locked),
            update_v: Rc::new(update_v),
        })
    }

    /// Schedule write and read probes every `interval` over
    /// `[start, end)`. Probes run as ordinary simulation events, so they
    /// interleave with the fault plan and the foreground workload.
    pub fn schedule(
        &self,
        cluster: &mut Cluster,
        start: SimTime,
        end: SimTime,
        interval: SimDuration,
        trace: &TraceHandle,
    ) {
        let half = SimDuration::from_nanos(interval.as_nanos() / 2);
        let mut t = start;
        let mut tick: u64 = 0;
        while t < end {
            let key = (tick as i64) % self.keys;
            let (state, sel, upd, tr) = (
                Rc::clone(&self.state),
                Rc::clone(&self.select_v_locked),
                Rc::clone(&self.update_v),
                Rc::clone(trace),
            );
            cluster.sim.schedule_at(t, move |w, sim| {
                write_probe(w, sim.now(), key, tick, &state, &sel, &upd, &tr);
            });
            let (state, sel, tr) = (
                Rc::clone(&self.state),
                Rc::clone(&self.select_v),
                Rc::clone(trace),
            );
            cluster.sim.schedule_at(t + half, move |w, sim| {
                rcp_probe(w, sim.now(), &state, &tr);
                read_probe(w, sim.now(), key, tick, &state, &sel, &tr);
            });
            t += interval;
            tick += 1;
        }
    }

    /// Post-run checks, after every fault healed and the cluster idled:
    /// read back every key from the primary and verify durability.
    ///
    /// * **Strict** (synchronous replication): the final value is exactly
    ///   the last acknowledged write, and the full per-key value sequence
    ///   is `1, 2, 3, ...` — nothing acked is ever lost.
    /// * **Bounded loss** (asynchronous replication): a primary failover
    ///   may lose the *tail* of acknowledged writes still inside the
    ///   shipping-batch window at the crash — and nothing more. Every
    ///   write acked at least `loss_window` before each failover's crash
    ///   (or after its promotion, i.e. on the new primary) must survive:
    ///   the final value can never fall below the newest such safe write.
    ///   Without any failover, async loses nothing (restarts replay WAL),
    ///   so the strict final-value check applies.
    pub fn final_check(
        &self,
        cluster: &mut Cluster,
        strict: bool,
        failovers: &[FailoverWindow],
        loss_window: SimDuration,
    ) {
        for k in 0..self.keys {
            let at = cluster.now();
            let sel = Rc::clone(&self.select_v);
            // A read-write transaction reads the freshest primary state.
            let observed = cluster
                .run_transaction(0, at, false, true, |t| {
                    t.execute(&sel, &[Datum::Int(k)]).map(|o| o.scalar_int())
                })
                .map(|(v, _)| v);
            let state = &mut *self.state.borrow_mut();
            let last = state
                .history
                .iter()
                .filter(|r| r.key == k)
                .max_by_key(|r| r.commit_ts)
                .map(|r| r.value);
            match observed {
                Ok(v) if (strict || failovers.is_empty()) && v != last => {
                    state.violations.push(format!(
                        "durability: key {k} final value {v:?}, last acked write {last:?}"
                    ));
                }
                Ok(v) if !strict && !failovers.is_empty() => {
                    // A write is safe when no failover window covers it:
                    // it was shipped well before every crash, or it landed
                    // on the already-promoted new primary.
                    let safe = state
                        .history
                        .iter()
                        .filter(|r| r.key == k)
                        .filter(|r| {
                            failovers.iter().all(|f| {
                                r.acked_at + loss_window <= f.crash_at || r.acked_at >= f.promote_at
                            })
                        })
                        .max_by_key(|r| r.commit_ts);
                    if let Some(floor) = safe {
                        if v.is_none_or(|v| v < floor.value) {
                            state.violations.push(format!(
                                "bounded-loss durability: key {k} final value {v:?} lost \
                                 write {} acked at {} — outside every failover's \
                                 {}us loss window",
                                floor.value,
                                floor.acked_at,
                                loss_window.as_micros()
                            ));
                        }
                    }
                }
                Ok(_) => {}
                Err(e) => state
                    .violations
                    .push(format!("final read of key {k} failed: {e}")),
            }
        }
        if strict {
            let state = &mut *self.state.borrow_mut();
            for k in 0..self.keys {
                let mut vals: Vec<(Timestamp, i64)> = state
                    .history
                    .iter()
                    .filter(|r| r.key == k)
                    .map(|r| (r.commit_ts, r.value))
                    .collect();
                vals.sort();
                for (i, w) in vals.iter().enumerate() {
                    if w.1 != i as i64 {
                        state.violations.push(format!(
                            "durability: key {k} write #{i} has value {} (an acked \
                             write was lost or duplicated); sequence: {vals:?}",
                            w.1
                        ));
                        break;
                    }
                }
            }
        }
    }
}

fn alive_cns(db: &GlobalDb) -> Vec<usize> {
    (0..db.cns().len())
        .filter(|&i| !db.topo().is_node_down(db.cns()[i].node))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn write_probe(
    db: &mut GlobalDb,
    now: SimTime,
    key: i64,
    tick: u64,
    state: &OracleHandle,
    sel: &Prepared,
    upd: &Prepared,
    trace: &TraceHandle,
) {
    let alive = alive_cns(db);
    let Some(&cn) = alive.get(tick as usize % alive.len().max(1)) else {
        return;
    };
    let res = db.run_transaction_at(cn, now, false, true, |t| {
        let cur = t
            .execute(sel, &[Datum::Int(key)])?
            .scalar_int()
            .unwrap_or(0);
        let next = cur + 1;
        t.execute(upd, &[Datum::Int(next), Datum::Int(key)])?;
        Ok(next)
    });
    let state = &mut *state.borrow_mut();
    match res {
        Ok((value, outcome)) => {
            db.obs_mut()
                .metrics
                .observe(PROBE_LATENCY_US, outcome.latency);
            let commit_ts = outcome.commit_ts.expect("probe write commits");
            // External consistency: every write acknowledged before this
            // one *started* must have a strictly smaller commit ts.
            for p in &state.history {
                if p.acked_at <= now && p.commit_ts >= commit_ts {
                    let msg = format!(
                        "external consistency: write(key={key}, ts={commit_ts:?}) started at \
                         {now} after write(key={}, ts={:?}) was acked at {}",
                        p.key, p.commit_ts, p.acked_at
                    );
                    state.violation(trace, now, msg);
                    break;
                }
            }
            state.history.push(WriteRecord {
                key,
                value,
                started_at: now,
                acked_at: outcome.completed_at,
                commit_ts,
            });
            state.writes_committed += 1;
        }
        Err(e) if e.is_retryable() => state.writes_rejected += 1,
        Err(e) => {
            let msg = format!("probe write(key={key}) failed non-retryably: {e}");
            state.violation(trace, now, msg);
        }
    }
}

fn read_probe(
    db: &mut GlobalDb,
    now: SimTime,
    key: i64,
    tick: u64,
    state: &OracleHandle,
    sel: &Prepared,
    trace: &TraceHandle,
) {
    let alive = alive_cns(db);
    // Read from the opposite end of the CN list so reads and writes keep
    // crossing CN (and usually region) boundaries.
    let Some(&cn) = alive.get(
        alive
            .len()
            .wrapping_sub(1 + tick as usize % alive.len().max(1)),
    ) else {
        return;
    };
    let rcp_before = db.cns()[cn].rcp;
    let res = db.run_transaction_at(cn, now, true, true, |t| {
        Ok(t.execute(sel, &[Datum::Int(key)])?.scalar_int())
    });
    let state = &mut *state.borrow_mut();
    match res {
        Ok((observed, outcome)) => {
            db.obs_mut()
                .metrics
                .observe(PROBE_LATENCY_US, outcome.latency);
            state.reads_checked += 1;
            if outcome.used_replica && outcome.snapshot != rcp_before {
                let msg = format!(
                    "replica read at snapshot {:?} != CN {cn} RCP {rcp_before:?}",
                    outcome.snapshot
                );
                state.violation(trace, now, msg);
            }
            let expected = state
                .history
                .iter()
                .filter(|r| r.key == key && r.commit_ts <= outcome.snapshot)
                .max_by_key(|r| r.commit_ts)
                .map(|r| r.value);
            let ok = if state.lossy {
                // A failover already rolled (or may yet roll) the key back
                // to an older acked value; accept any value actually
                // written at or before the snapshot, reject inventions.
                match observed {
                    Some(v) => state
                        .history
                        .iter()
                        .any(|r| r.key == key && r.commit_ts <= outcome.snapshot && r.value == v),
                    None => expected.is_none(),
                }
            } else {
                observed == expected
            };
            if !ok {
                let msg = format!(
                    "read(key={key}) at snapshot {:?} returned {observed:?}, history says \
                     {expected:?} (replica={}, lossy={})",
                    outcome.snapshot, outcome.used_replica, state.lossy
                );
                state.violation(trace, now, msg);
            }
        }
        Err(e) if e.is_retryable() => state.reads_rejected += 1,
        Err(e) => {
            let msg = format!("probe read(key={key}) failed non-retryably: {e}");
            state.violation(trace, now, msg);
        }
    }
}

fn rcp_probe(db: &mut GlobalDb, now: SimTime, state: &OracleHandle, trace: &TraceHandle) {
    let state = &mut *state.borrow_mut();
    state.rcp_checks += 1;
    for (i, cn) in db.cns().iter().enumerate() {
        if cn.rcp < state.last_rcp[i] {
            let msg = format!(
                "RCP moved backwards on CN {i}: {:?} -> {:?}",
                state.last_rcp[i], cn.rcp
            );
            state.violation(trace, now, msg);
        }
        state.last_rcp[i] = cn.rcp;
    }
    for (r, &region) in db.regions().iter().enumerate() {
        let computed = db.rcp_calculators()[r].current();
        if computed == Timestamp::ZERO {
            continue; // group freshly rebuilt; nothing reported yet
        }
        let applied_max = db
            .shards()
            .iter()
            .flat_map(|s| s.replicas.iter())
            .filter(|rep| rep.region == region)
            .map(|rep| rep.applier.max_commit_ts())
            .max();
        if let Some(m) = applied_max {
            if computed > m {
                let msg = format!(
                    "region {r} RCP {computed:?} exceeds its replicas' max applied \
                     commit ts {m:?}"
                );
                state.violation(trace, now, msg);
            }
        }
    }
}
