//! Background-service tests: collector-CN failover for RCP distribution,
//! and the periodic vacuum pruning MVCC versions below the RCP horizon.

use globaldb::{Cluster, ClusterConfig, Datum, SimDuration, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn rcp_survives_collector_cn_failure() {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    c.execute_sql(0, t(5), "INSERT INTO kv VALUES (1, 0)", &[])
        .unwrap();
    c.run_until(t(300));
    let rcp_before = c.db.cn_rcp(1);
    assert!(rcp_before.as_micros() > 0);

    // Kill CN 0 — the initial collector.
    let cn0 = c.db.cns()[0].node;
    c.db.topo_mut().set_node_down(cn0, true);
    c.run_until(t(800));
    let rcp_after = c.db.cn_rcp(1);
    assert!(
        rcp_after > rcp_before,
        "a surviving CN must take over RCP collection: {rcp_before:?} vs {rcp_after:?}"
    );

    // CN 0 comes back: it resumes receiving the RCP and stays monotone.
    c.db.topo_mut().set_node_down(cn0, false);
    let rcp_cn0_at_revival = c.db.cn_rcp(0);
    c.run_until(t(1200));
    assert!(c.db.cn_rcp(0) > rcp_cn0_at_revival);
}

#[test]
fn periodic_vacuum_prunes_dead_versions() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.vacuum_interval = Some(SimDuration::from_millis(500));
    let mut c = Cluster::new(config);
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    c.execute_sql(0, t(5), "INSERT INTO kv VALUES (1, 0)", &[])
        .unwrap();
    // Hammer one row with updates: a long version chain accumulates.
    for i in 0..50u64 {
        c.execute_sql(
            0,
            t(10) + SimDuration::from_millis(i * 4),
            "UPDATE kv SET v = ? WHERE k = 1",
            &[Datum::Int(i as i64)],
        )
        .unwrap();
    }
    // After the vacuum interval (and RCP catching up), old versions go.
    c.run_until(t(3000));
    assert!(
        c.db.stats().versions_vacuumed > 20,
        "vacuum must prune the dead chain: {}",
        c.db.stats().versions_vacuumed
    );
    // The newest value is intact.
    let (out, _) = c
        .execute_sql(0, t(3010), "SELECT v FROM kv WHERE k = 1", &[])
        .unwrap();
    assert_eq!(out.rows()[0].0[0], Datum::Int(49));
}

#[test]
fn vacuum_disabled_keeps_versions() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.vacuum_interval = None;
    let mut c = Cluster::new(config);
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    c.execute_sql(0, t(5), "INSERT INTO kv VALUES (1, 0)", &[])
        .unwrap();
    for i in 0..20u64 {
        c.execute_sql(
            0,
            t(10) + SimDuration::from_millis(i * 4),
            "UPDATE kv SET v = ? WHERE k = 1",
            &[Datum::Int(i as i64)],
        )
        .unwrap();
    }
    c.run_until(t(3000));
    assert_eq!(c.db.stats().versions_vacuumed, 0);
}
