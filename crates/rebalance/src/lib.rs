//! `gdb-rebalance` — hot-shard detection and placement policy driving
//! online shard migration.
//!
//! The *mechanics* of a migration (snapshot copy → redo catch-up →
//! cutover barrier with an atomic routing-epoch bump) live in
//! `globaldb::migrate`; this crate owns the *policy* side:
//!
//! * [`HotShardDetector`] — a windowed consumer of the live metrics
//!   registry. Every [`HotShardDetector::observe`] snapshots the
//!   `rebalance.shard_ops.*` / `rebalance.shard_bytes.*` counters the
//!   transaction layer maintains, subtracts the previous observation,
//!   and joins the deltas with the current shard placement into a
//!   [`ClusterView`].
//! * [`PlacementPolicy`] — pluggable proposal logic over a view.
//!   [`LoadSpread`] moves the hottest shard off an overloaded host to
//!   the least-loaded one; [`RegionAffinity`] moves a shard whose
//!   traffic is dominated by a remote region into that region.
//! * [`RebalanceController`] — glues the two together: call
//!   [`RebalanceController::tick`] between workload windows and it
//!   observes, consults its policies in order, and starts at most one
//!   migration (the executor allows one in flight cluster-wide).
//!
//! Everything here is deterministic: observation order, host
//! enumeration, and tie-breaks are all fixed, so a seeded run proposes
//! the same migrations every time.

use gdb_simnet::{NetNodeId, RegionId};
use globaldb::migrate::metrics as mig_metrics;
use globaldb::Cluster;

/// One shard's load over the last observation window, joined with its
/// current placement.
#[derive(Debug, Clone)]
pub struct ShardStat {
    pub shard: usize,
    /// Region of the current primary.
    pub region: RegionId,
    /// Host (within-region machine index) of the current primary.
    pub host: u16,
    /// Data-node operations routed to the shard during the window.
    pub ops: u64,
    /// Payload bytes of those operations.
    pub bytes: u64,
    /// Ops split by the submitting CN's region, indexed like
    /// [`ClusterView::regions`].
    pub by_region: Vec<u64>,
}

/// A candidate placement slot: one physical host in one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HostSlot {
    pub region: RegionId,
    pub host: u16,
}

/// What the detector hands the policies: per-shard window loads plus
/// the current host inventory.
#[derive(Debug, Clone)]
pub struct ClusterView {
    pub shards: Vec<ShardStat>,
    /// Every live host slot, sorted (deterministic tie-breaks).
    pub hosts: Vec<HostSlot>,
    /// Region ids in cluster order (the index space of
    /// [`ShardStat::by_region`]).
    pub regions: Vec<RegionId>,
}

impl ClusterView {
    /// Total windowed ops of the shards whose primary sits on `slot`.
    pub fn host_load(&self, slot: HostSlot) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.region == slot.region && s.host == slot.host)
            .map(|s| s.ops)
            .sum()
    }

    /// Imbalance metric: max host load over mean host load (1.0 =
    /// perfectly even, 0.0 = idle cluster).
    pub fn spread(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        let loads: Vec<u64> = self.hosts.iter().map(|&h| self.host_load(h)).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }
}

/// A migration a policy wants: move `shard` to `to`.
#[derive(Debug, Clone)]
pub struct MigrationProposal {
    pub shard: usize,
    pub to: HostSlot,
    /// Which policy proposed it and why (for logs/tests).
    pub reason: String,
}

/// Pluggable proposal logic over a [`ClusterView`]. Policies must be
/// deterministic functions of the view.
pub trait PlacementPolicy {
    fn name(&self) -> &'static str;
    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal>;
}

/// Move the hottest shard off the most loaded host onto the least
/// loaded one, when the cluster is imbalanced enough to bother.
#[derive(Debug, Clone)]
pub struct LoadSpread {
    /// Trigger when `max host load > imbalance_ratio × mean host load`.
    pub imbalance_ratio: f64,
    /// Ignore windows with fewer ops than this on the hottest shard
    /// (don't migrate on noise).
    pub min_shard_ops: u64,
}

impl Default for LoadSpread {
    fn default() -> Self {
        LoadSpread {
            imbalance_ratio: 1.5,
            min_shard_ops: 64,
        }
    }
}

impl PlacementPolicy for LoadSpread {
    fn name(&self) -> &'static str {
        "load-spread"
    }

    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal> {
        if view.hosts.len() < 2 {
            return None;
        }
        let hottest = *view
            .hosts
            .iter()
            .max_by_key(|&&h| (view.host_load(h), std::cmp::Reverse(h)))?;
        let coolest = *view.hosts.iter().min_by_key(|&&h| (view.host_load(h), h))?;
        let hot_load = view.host_load(hottest);
        let cool_load = view.host_load(coolest);
        let total: u64 = view.hosts.iter().map(|&h| view.host_load(h)).sum();
        let mean = total as f64 / view.hosts.len() as f64;
        if hot_load == 0 || (hot_load as f64) <= self.imbalance_ratio * mean {
            return None;
        }
        // Hottest shard currently living on the hottest host.
        let shard = view
            .shards
            .iter()
            .filter(|s| s.region == hottest.region && s.host == hottest.host)
            .max_by_key(|s| (s.ops, std::cmp::Reverse(s.shard)))?;
        if shard.ops < self.min_shard_ops {
            return None;
        }
        // Only move if it strictly improves the spread: the receiving
        // host must end up below where the donor started.
        if cool_load + shard.ops >= hot_load {
            return None;
        }
        Some(MigrationProposal {
            shard: shard.shard,
            to: coolest,
            reason: format!(
                "load-spread: host ({},{}) carries {hot_load} ops (mean {mean:.0}); \
                 moving shard {} ({} ops) to host ({},{})",
                hottest.region.0,
                hottest.host,
                shard.shard,
                shard.ops,
                coolest.region.0,
                coolest.host
            ),
        })
    }
}

/// Move a shard whose window traffic is dominated by one *remote*
/// region into that region (placing it on the region's least-loaded
/// host).
#[derive(Debug, Clone)]
pub struct RegionAffinity {
    /// Minimum share of the shard's ops a remote region must account
    /// for to justify moving the shard there.
    pub dominance: f64,
    /// Ignore shards with fewer windowed ops than this.
    pub min_shard_ops: u64,
}

impl Default for RegionAffinity {
    fn default() -> Self {
        RegionAffinity {
            dominance: 0.6,
            min_shard_ops: 64,
        }
    }
}

impl PlacementPolicy for RegionAffinity {
    fn name(&self) -> &'static str {
        "region-affinity"
    }

    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal> {
        for s in &view.shards {
            if s.ops < self.min_shard_ops {
                continue;
            }
            for (ri, &region_ops) in s.by_region.iter().enumerate() {
                let region = *view.regions.get(ri)?;
                if region == s.region {
                    continue;
                }
                if (region_ops as f64) < self.dominance * s.ops as f64 {
                    continue;
                }
                let target = view
                    .hosts
                    .iter()
                    .filter(|h| h.region == region)
                    .min_by_key(|&&h| (view.host_load(h), h))
                    .copied()?;
                return Some(MigrationProposal {
                    shard: s.shard,
                    to: target,
                    reason: format!(
                        "region-affinity: shard {} gets {region_ops}/{} ops from region {}; \
                         moving it there (host ({},{}))",
                        s.shard, s.ops, region.0, target.region.0, target.host
                    ),
                });
            }
        }
        None
    }
}

/// Windowed consumer of the metrics registry: each `observe` reads the
/// absolute `rebalance.shard_ops.*` counters, subtracts the previous
/// observation, and returns the per-window deltas joined with the
/// current placement.
#[derive(Debug, Default)]
pub struct HotShardDetector {
    prev: Vec<(u64, u64, Vec<u64>)>,
}

impl HotShardDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the cluster's metrics and return the load view for the
    /// window since the previous call (first call: since startup).
    pub fn observe(&mut self, cluster: &mut Cluster) -> ClusterView {
        let shard_count = cluster.db.shards().len();
        let regions: Vec<RegionId> = cluster.db.regions().to_vec();
        let report = cluster.db.metrics_snapshot();
        self.prev
            .resize_with(shard_count, || (0, 0, vec![0; regions.len()]));

        let mut shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let ops_total = report
                .counter(&format!("{}.{s}", mig_metrics::SHARD_OPS_PREFIX))
                .unwrap_or(0);
            let bytes_total = report
                .counter(&format!("{}.{s}", mig_metrics::SHARD_BYTES_PREFIX))
                .unwrap_or(0);
            let mut by_region_total = vec![0u64; regions.len()];
            for (r, slot) in by_region_total.iter_mut().enumerate() {
                *slot = report
                    .counter(&format!("{}.{s}.r{r}", mig_metrics::SHARD_OPS_PREFIX))
                    .unwrap_or(0);
            }
            let prev = &mut self.prev[s];
            prev.2.resize(regions.len(), 0);
            let by_region: Vec<u64> = by_region_total
                .iter()
                .zip(&prev.2)
                .map(|(&cur, &old)| cur.saturating_sub(old))
                .collect();
            let primary = cluster.db.shards()[s].primary;
            shards.push(ShardStat {
                shard: s,
                region: cluster.db.topo().node_region(primary),
                host: cluster.db.topo().node_host(primary),
                ops: ops_total.saturating_sub(prev.0),
                bytes: bytes_total.saturating_sub(prev.1),
                by_region,
            });
            *prev = (ops_total, bytes_total, by_region_total);
        }

        // Host inventory: every live host slot, sorted for
        // deterministic tie-breaks.
        let mut hosts: Vec<HostSlot> = Vec::new();
        for i in 0..cluster.db.topo().node_count() {
            let n = NetNodeId(i as u32);
            if cluster.db.topo().is_node_down(n) {
                continue;
            }
            let slot = HostSlot {
                region: cluster.db.topo().node_region(n),
                host: cluster.db.topo().node_host(n),
            };
            if !hosts.contains(&slot) {
                hosts.push(slot);
            }
        }
        hosts.sort();

        ClusterView {
            shards,
            hosts,
            regions,
        }
    }
}

/// Detector + policy chain + migration trigger. Call
/// [`RebalanceController::tick`] between workload windows.
pub struct RebalanceController {
    pub detector: HotShardDetector,
    pub policies: Vec<Box<dyn PlacementPolicy>>,
    /// Every proposal that actually started a migration.
    pub history: Vec<MigrationProposal>,
}

impl Default for RebalanceController {
    fn default() -> Self {
        Self::new()
    }
}

impl RebalanceController {
    /// Default policy chain: spread load first, then chase region
    /// affinity.
    pub fn new() -> Self {
        RebalanceController {
            detector: HotShardDetector::new(),
            policies: vec![
                Box::new(LoadSpread::default()),
                Box::new(RegionAffinity::default()),
            ],
            history: Vec::new(),
        }
    }

    pub fn with_policies(policies: Vec<Box<dyn PlacementPolicy>>) -> Self {
        RebalanceController {
            detector: HotShardDetector::new(),
            policies,
            history: Vec::new(),
        }
    }

    /// Observe the window, consult the policies in order, and start the
    /// first viable migration. Returns the proposal that started, if
    /// any. Always advances the detector window, even when a migration
    /// is already in flight (so the next idle tick sees a fresh window,
    /// not the backlog).
    pub fn tick(&mut self, cluster: &mut Cluster) -> Option<MigrationProposal> {
        let view = self.detector.observe(cluster);
        if cluster.migration_in_flight().is_some() {
            return None;
        }
        for policy in &self.policies {
            let Some(proposal) = policy.propose(&view) else {
                continue;
            };
            let current = &view.shards[proposal.shard];
            if (current.region, current.host) == (proposal.to.region, proposal.to.host) {
                continue; // already there
            }
            if cluster
                .start_migration(proposal.shard, proposal.to.region, proposal.to.host)
                .is_ok()
            {
                self.history.push(proposal.clone());
                return Some(proposal);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(shards: Vec<ShardStat>, hosts: Vec<(u16, u16)>, regions: usize) -> ClusterView {
        ClusterView {
            shards,
            hosts: hosts
                .into_iter()
                .map(|(r, h)| HostSlot {
                    region: RegionId(r),
                    host: h,
                })
                .collect(),
            regions: (0..regions as u16).map(RegionId).collect(),
        }
    }

    fn stat(shard: usize, region: u16, host: u16, ops: u64, by_region: Vec<u64>) -> ShardStat {
        ShardStat {
            shard,
            region: RegionId(region),
            host,
            ops,
            bytes: ops * 256,
            by_region,
        }
    }

    #[test]
    fn load_spread_moves_hottest_shard_to_coolest_host() {
        let v = view(
            vec![
                stat(0, 0, 0, 900, vec![900]),
                stat(1, 0, 0, 100, vec![100]),
                stat(2, 0, 1, 50, vec![50]),
            ],
            vec![(0, 0), (0, 1), (0, 2)],
            1,
        );
        let p = LoadSpread::default().propose(&v).expect("imbalanced");
        assert_eq!(p.shard, 0);
        assert_eq!(
            p.to,
            HostSlot {
                region: RegionId(0),
                host: 2
            }
        );
    }

    #[test]
    fn load_spread_ignores_balanced_and_idle_clusters() {
        let balanced = view(
            vec![
                stat(0, 0, 0, 100, vec![100]),
                stat(1, 0, 1, 110, vec![110]),
                stat(2, 0, 2, 90, vec![90]),
            ],
            vec![(0, 0), (0, 1), (0, 2)],
            1,
        );
        assert!(LoadSpread::default().propose(&balanced).is_none());
        let idle = view(vec![stat(0, 0, 0, 0, vec![0])], vec![(0, 0), (0, 1)], 1);
        assert!(LoadSpread::default().propose(&idle).is_none());
    }

    #[test]
    fn load_spread_refuses_moves_that_do_not_improve() {
        // One giant shard: moving it just relocates the hot spot.
        let v = view(
            vec![stat(0, 0, 0, 1000, vec![1000])],
            vec![(0, 0), (0, 1)],
            1,
        );
        assert!(LoadSpread::default().propose(&v).is_none());
    }

    #[test]
    fn region_affinity_moves_shard_toward_its_traffic() {
        let v = view(
            vec![
                stat(0, 0, 0, 100, vec![10, 90]),
                stat(1, 0, 1, 100, vec![80, 20]),
            ],
            vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            2,
        );
        let p = RegionAffinity::default().propose(&v).expect("dominated");
        assert_eq!(p.shard, 0);
        assert_eq!(p.to.region, RegionId(1));
    }

    #[test]
    fn region_affinity_respects_min_ops_and_local_dominance() {
        // Dominant region is already the shard's own.
        let local = view(
            vec![stat(0, 1, 0, 100, vec![5, 95])],
            vec![(0, 0), (1, 0)],
            2,
        );
        assert!(RegionAffinity::default().propose(&local).is_none());
        // Too little traffic to justify a move.
        let quiet = view(vec![stat(0, 0, 0, 10, vec![1, 9])], vec![(0, 0), (1, 0)], 2);
        assert!(RegionAffinity::default().propose(&quiet).is_none());
    }

    #[test]
    fn spread_metric_tracks_imbalance() {
        let skewed = view(
            vec![stat(0, 0, 0, 900, vec![900]), stat(1, 0, 1, 100, vec![100])],
            vec![(0, 0), (0, 1)],
            1,
        );
        let even = view(
            vec![stat(0, 0, 0, 500, vec![500]), stat(1, 0, 1, 500, vec![500])],
            vec![(0, 0), (0, 1)],
            1,
        );
        assert!(skewed.spread() > even.spread());
        assert!((even.spread() - 1.0).abs() < 1e-9);
    }
}
