//! The Global Transaction Manager server.

use crate::mode::TmMode;
use gdb_model::{GdbError, GdbResult, Timestamp};
use gdb_simnet::SimDuration;

/// The centralized timestamp authority (one logical instance per cluster;
/// GaussDB scales it to ~1000 servers, which we model as a single
/// serialization point with network cost).
#[derive(Debug, Clone)]
pub struct GtmServer {
    mode: TmMode,
    /// The last issued timestamp. Begins read it; GTM commits increment
    /// it; DUAL commits raise it past the supplied GClock timestamp;
    /// observed GClock commits raise it too (Fig. 3's "largest GClock
    /// timestamp issued so far").
    counter: u64,
    /// Largest clock error bound reported during the current/most recent
    /// transition (sizes DUAL-mode waits; Fig. 2).
    max_err_seen: SimDuration,
    /// Statistics: timestamps issued per kind.
    pub begins_served: u64,
    pub gtm_commits_served: u64,
    pub dual_commits_served: u64,
}

impl GtmServer {
    pub fn new() -> Self {
        GtmServer {
            mode: TmMode::Gtm,
            counter: 0,
            max_err_seen: SimDuration::ZERO,
            begins_served: 0,
            gtm_commits_served: 0,
            dual_commits_served: 0,
        }
    }

    pub fn mode(&self) -> TmMode {
        self.mode
    }

    pub fn set_mode(&mut self, mode: TmMode) {
        self.mode = mode;
    }

    /// The last issued timestamp (every commit at or below it is durable
    /// from the GTM's perspective).
    pub fn current(&self) -> Timestamp {
        Timestamp(self.counter)
    }

    /// Largest error bound reported during the transition window.
    pub fn max_err_seen(&self) -> SimDuration {
        self.max_err_seen
    }

    /// Record a clock error bound reported by a CN during transition.
    pub fn record_err_bound(&mut self, err: SimDuration) {
        self.max_err_seen = self.max_err_seen.max(err);
    }

    /// Reset the transition error tracking (at transition start).
    pub fn reset_err_tracking(&mut self) {
        self.max_err_seen = SimDuration::ZERO;
    }

    /// Serve a begin-snapshot request (GTM or DUAL mode CNs).
    pub fn begin_snapshot(&mut self) -> Timestamp {
        self.begins_served += 1;
        Timestamp(self.counter)
    }

    /// Serve a GTM-mode commit. While the server is in DUAL mode the
    /// transaction must additionally wait `2 × max_err_seen` before
    /// acknowledging (paper Fig. 2 / Listing 1). After the cluster has
    /// moved to GClock mode, straggler GTM transactions abort.
    pub fn commit_gtm(&mut self) -> GdbResult<(Timestamp, SimDuration)> {
        match self.mode {
            TmMode::Gtm => {
                self.counter += 1;
                self.gtm_commits_served += 1;
                Ok((Timestamp(self.counter), SimDuration::ZERO))
            }
            TmMode::Dual => {
                self.counter += 1;
                self.gtm_commits_served += 1;
                Ok((Timestamp(self.counter), self.max_err_seen * 2))
            }
            TmMode::GClock => Err(GdbError::TxnAborted(
                "GTM-mode transaction committed after cluster switched to GClock".into(),
            )),
        }
    }

    /// Serve a DUAL-mode commit: `TS = max(TS_GTM, TS_GClock) + 1`
    /// (paper Eq. 3). The counter advances to the issued value so later
    /// GTM/DUAL timestamps stay above it.
    pub fn commit_dual(&mut self, gclock_ts: Timestamp) -> Timestamp {
        let ts = self.counter.max(gclock_ts.0) + 1;
        self.counter = ts;
        self.dual_commits_served += 1;
        Timestamp(ts)
    }

    /// Observe a GClock-mode commit (CNs piggyback these asynchronously).
    /// Keeps the counter above every issued GClock timestamp so a later
    /// GClock→GTM transition needs no waiting (Fig. 3) and so DUAL
    /// timestamps bridge correctly (Listing 1's "raise internal timestamp").
    pub fn observe_commit(&mut self, ts: Timestamp) {
        self.counter = self.counter.max(ts.0);
    }
}

impl Default for GtmServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtm_timestamps_start_at_zero_and_increment() {
        let mut g = GtmServer::new();
        assert_eq!(g.begin_snapshot(), Timestamp(0));
        let (t1, w1) = g.commit_gtm().unwrap();
        assert_eq!(t1, Timestamp(1));
        assert_eq!(w1, SimDuration::ZERO);
        let (t2, _) = g.commit_gtm().unwrap();
        assert_eq!(t2, Timestamp(2));
        // Begin after commits sees the latest.
        assert_eq!(g.begin_snapshot(), Timestamp(2));
    }

    #[test]
    fn dual_commit_bridges_domains() {
        let mut g = GtmServer::new();
        g.commit_gtm().unwrap(); // counter = 1
                                 // A huge GClock timestamp arrives: DUAL must exceed it.
        let ts = g.commit_dual(Timestamp(1_000_000));
        assert_eq!(ts, Timestamp(1_000_001));
        // And a subsequent GTM commit continues above it.
        g.set_mode(TmMode::Dual);
        let (t, _) = g.commit_gtm().unwrap();
        assert_eq!(t, Timestamp(1_000_002));
        // Symmetric: counter larger than the GClock ts.
        let ts2 = g.commit_dual(Timestamp(5));
        assert_eq!(ts2, Timestamp(1_000_003));
    }

    #[test]
    fn gtm_commits_wait_while_server_in_dual() {
        let mut g = GtmServer::new();
        g.set_mode(TmMode::Dual);
        g.record_err_bound(SimDuration::from_micros(80));
        g.record_err_bound(SimDuration::from_micros(60)); // smaller, ignored
        let (_, wait) = g.commit_gtm().unwrap();
        assert_eq!(wait, SimDuration::from_micros(160));
    }

    #[test]
    fn straggler_gtm_commit_aborts_in_gclock_mode() {
        let mut g = GtmServer::new();
        g.set_mode(TmMode::GClock);
        let err = g.commit_gtm().unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn observed_gclock_commits_raise_counter() {
        let mut g = GtmServer::new();
        g.observe_commit(Timestamp(42));
        assert_eq!(g.current(), Timestamp(42));
        g.observe_commit(Timestamp(10)); // lower, ignored
        assert_eq!(g.current(), Timestamp(42));
        // Next begin sees everything committed under GClock.
        assert_eq!(g.begin_snapshot(), Timestamp(42));
    }

    #[test]
    fn err_tracking_resets() {
        let mut g = GtmServer::new();
        g.record_err_bound(SimDuration::from_micros(100));
        g.reset_err_tracking();
        assert_eq!(g.max_err_seen(), SimDuration::ZERO);
    }
}
