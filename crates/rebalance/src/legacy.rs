//! The frozen PR 4 placement-policy chain, kept as a differential
//! reference for the Placement v2 cost model.
//!
//! Before the unified cost model, the controller consulted a
//! first-match chain of [`PlacementPolicy`] implementations:
//! [`LoadSpread`] (move the hottest shard off the most loaded host)
//! then [`RegionAffinity`] (chase a shard's dominant remote region).
//! Because each policy scored the *next* move in isolation, the chain
//! could oscillate: LoadSpread would scatter the one-sided shards that
//! RegionAffinity had just centralized, and the pair would trade the
//! same shards back and forth every window (the `ablation_rebalance`
//! run spent 16 migrations on a workload that needs 4).
//!
//! Nothing here is called by production code anymore. The tests in
//! `tests/rebalance.rs` still drive [`LegacyController`] head-to-head
//! against the cost model to show the new controller converges on views
//! the old chain ping-ponged on, and the policy unit tests below pin
//! the frozen behavior so the reference itself cannot drift.

use crate::{ClusterView, HostSlot};
use globaldb::Cluster;

/// A migration a policy wants: move `shard`'s primary to `to`.
#[derive(Debug, Clone)]
pub struct MigrationProposal {
    pub shard: usize,
    pub to: HostSlot,
    /// Which policy proposed it and why (for logs/tests).
    pub reason: String,
}

/// Pluggable proposal logic over a [`ClusterView`]. Policies must be
/// deterministic functions of the view.
pub trait PlacementPolicy {
    fn name(&self) -> &'static str;
    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal>;
}

/// Move the hottest shard off the most loaded host onto the least
/// loaded one, when the cluster is imbalanced enough to bother.
#[derive(Debug, Clone)]
pub struct LoadSpread {
    /// Trigger when `max host load > imbalance_ratio × mean host load`.
    pub imbalance_ratio: f64,
    /// Ignore windows with fewer ops than this on the hottest shard
    /// (don't migrate on noise).
    pub min_shard_ops: u64,
}

impl Default for LoadSpread {
    fn default() -> Self {
        LoadSpread {
            imbalance_ratio: 1.5,
            min_shard_ops: 64,
        }
    }
}

impl PlacementPolicy for LoadSpread {
    fn name(&self) -> &'static str {
        "load-spread"
    }

    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal> {
        if view.hosts.len() < 2 {
            return None;
        }
        let hottest = *view
            .hosts
            .iter()
            .max_by_key(|&&h| (view.host_load(h), std::cmp::Reverse(h)))?;
        let coolest = *view.hosts.iter().min_by_key(|&&h| (view.host_load(h), h))?;
        let hot_load = view.host_load(hottest);
        let cool_load = view.host_load(coolest);
        let total: u64 = view.hosts.iter().map(|&h| view.host_load(h)).sum();
        let mean = total as f64 / view.hosts.len() as f64;
        if hot_load == 0 || (hot_load as f64) <= self.imbalance_ratio * mean {
            return None;
        }
        // Hottest shard currently living on the hottest host.
        let shard = view
            .shards
            .iter()
            .filter(|s| s.region == hottest.region && s.host == hottest.host)
            .max_by_key(|s| (s.ops, std::cmp::Reverse(s.shard)))?;
        if shard.ops < self.min_shard_ops {
            return None;
        }
        // Only move if it strictly improves the spread: the receiving
        // host must end up below where the donor started.
        if cool_load + shard.ops >= hot_load {
            return None;
        }
        Some(MigrationProposal {
            shard: shard.shard,
            to: coolest,
            reason: format!(
                "load-spread: host ({},{}) carries {hot_load} ops (mean {mean:.0}); \
                 moving shard {} ({} ops) to host ({},{})",
                hottest.region.0,
                hottest.host,
                shard.shard,
                shard.ops,
                coolest.region.0,
                coolest.host
            ),
        })
    }
}

/// Move a shard whose window traffic is dominated by one *remote*
/// region into that region (placing it on the region's least-loaded
/// host).
#[derive(Debug, Clone)]
pub struct RegionAffinity {
    /// Minimum share of the shard's ops a remote region must account
    /// for to justify moving the shard there.
    pub dominance: f64,
    /// Ignore shards with fewer windowed ops than this.
    pub min_shard_ops: u64,
}

impl Default for RegionAffinity {
    fn default() -> Self {
        RegionAffinity {
            dominance: 0.6,
            min_shard_ops: 64,
        }
    }
}

impl PlacementPolicy for RegionAffinity {
    fn name(&self) -> &'static str {
        "region-affinity"
    }

    fn propose(&self, view: &ClusterView) -> Option<MigrationProposal> {
        for s in &view.shards {
            if s.ops < self.min_shard_ops {
                continue;
            }
            for (ri, &region_ops) in s.by_region.iter().enumerate() {
                let region = *view.regions.get(ri)?;
                if region == s.region {
                    continue;
                }
                if (region_ops as f64) < self.dominance * s.ops as f64 {
                    continue;
                }
                let target = view
                    .hosts
                    .iter()
                    .filter(|h| h.region == region)
                    .min_by_key(|&&h| (view.host_load(h), h))
                    .copied()?;
                return Some(MigrationProposal {
                    shard: s.shard,
                    to: target,
                    reason: format!(
                        "region-affinity: shard {} gets {region_ops}/{} ops from region {}; \
                         moving it there (host ({},{}))",
                        s.shard, s.ops, region.0, target.region.0, target.host
                    ),
                });
            }
        }
        None
    }
}

/// The PR 4 controller: detector + first-match policy chain + one
/// migration in flight at a time. Kept verbatim (modulo the detector's
/// new signature) for differential tests.
pub struct LegacyController {
    pub detector: crate::HotShardDetector,
    pub policies: Vec<Box<dyn PlacementPolicy>>,
    /// Every proposal that actually started a migration.
    pub history: Vec<MigrationProposal>,
}

impl Default for LegacyController {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyController {
    /// Default policy chain: spread load first, then chase region
    /// affinity.
    pub fn new() -> Self {
        LegacyController {
            detector: crate::HotShardDetector::new(),
            policies: vec![
                Box::new(LoadSpread::default()),
                Box::new(RegionAffinity::default()),
            ],
            history: Vec::new(),
        }
    }

    pub fn with_policies(policies: Vec<Box<dyn PlacementPolicy>>) -> Self {
        LegacyController {
            detector: crate::HotShardDetector::new(),
            policies,
            history: Vec::new(),
        }
    }

    /// Observe the window, consult the policies in order, and start the
    /// first viable migration. Returns the proposal that started, if
    /// any. Always advances the detector window, even when a migration
    /// is already in flight (so the next idle tick sees a fresh window,
    /// not the backlog).
    pub fn tick(&mut self, cluster: &mut Cluster) -> Option<MigrationProposal> {
        let view = self.detector.observe(&mut cluster.db);
        if cluster.migration_in_flight().is_some() {
            return None;
        }
        for policy in &self.policies {
            let Some(proposal) = policy.propose(&view) else {
                continue;
            };
            let current = &view.shards[proposal.shard];
            if (current.region, current.host) == (proposal.to.region, proposal.to.host) {
                continue; // already there
            }
            if cluster
                .start_migration(proposal.shard, proposal.to.region, proposal.to.host)
                .is_ok()
            {
                self.history.push(proposal.clone());
                return Some(proposal);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{stat, view};
    use gdb_simnet::RegionId;

    #[test]
    fn load_spread_moves_hottest_shard_to_coolest_host() {
        let v = view(
            vec![
                stat(0, 0, 0, 900, vec![900]),
                stat(1, 0, 0, 100, vec![100]),
                stat(2, 0, 1, 50, vec![50]),
            ],
            vec![(0, 0), (0, 1), (0, 2)],
            1,
        );
        let p = LoadSpread::default().propose(&v).expect("imbalanced");
        assert_eq!(p.shard, 0);
        assert_eq!(
            p.to,
            HostSlot {
                region: RegionId(0),
                host: 2
            }
        );
    }

    #[test]
    fn load_spread_ignores_balanced_and_idle_clusters() {
        let balanced = view(
            vec![
                stat(0, 0, 0, 100, vec![100]),
                stat(1, 0, 1, 110, vec![110]),
                stat(2, 0, 2, 90, vec![90]),
            ],
            vec![(0, 0), (0, 1), (0, 2)],
            1,
        );
        assert!(LoadSpread::default().propose(&balanced).is_none());
        let idle = view(vec![stat(0, 0, 0, 0, vec![0])], vec![(0, 0), (0, 1)], 1);
        assert!(LoadSpread::default().propose(&idle).is_none());
    }

    #[test]
    fn load_spread_refuses_moves_that_do_not_improve() {
        // One giant shard: moving it just relocates the hot spot.
        let v = view(
            vec![stat(0, 0, 0, 1000, vec![1000])],
            vec![(0, 0), (0, 1)],
            1,
        );
        assert!(LoadSpread::default().propose(&v).is_none());
    }

    #[test]
    fn region_affinity_moves_shard_toward_its_traffic() {
        let v = view(
            vec![
                stat(0, 0, 0, 100, vec![10, 90]),
                stat(1, 0, 1, 100, vec![80, 20]),
            ],
            vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            2,
        );
        let p = RegionAffinity::default().propose(&v).expect("dominated");
        assert_eq!(p.shard, 0);
        assert_eq!(p.to.region, RegionId(1));
    }

    #[test]
    fn region_affinity_respects_min_ops_and_local_dominance() {
        // Dominant region is already the shard's own.
        let local = view(
            vec![stat(0, 1, 0, 100, vec![5, 95])],
            vec![(0, 0), (1, 0)],
            2,
        );
        assert!(RegionAffinity::default().propose(&local).is_none());
        // Too little traffic to justify a move.
        let quiet = view(vec![stat(0, 0, 0, 10, vec![1, 9])], vec![(0, 0), (1, 0)], 2);
        assert!(RegionAffinity::default().propose(&quiet).is_none());
    }
}
