//! Ablation — zero-downtime online transition (paper §III-A, Figs. 2–3).
//!
//! Runs TPC-C in GTM mode, switches the cluster to GClock mid-run (and
//! later back to GTM), and reports throughput in 500 ms windows. The
//! paper's claim: the cluster keeps accepting transactions throughout —
//! no window drops to zero, versus the strawman of blocking the system
//! until all GTM transactions drain.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_transition`

use gdb_bench::{print_table, BenchParams};
use gdb_model::Datum;
use gdb_simnet::{SimDuration, SimTime};
use gdb_workloads::tpcc::{loader, txns, TpccMix, TpccScale};
use globaldb::{Cluster, ClusterConfig, TmMode, TransitionDirection};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let params = BenchParams::from_env();
    let scale = TpccScale::tiny();
    let mut config = ClusterConfig::globaldb_one_region();
    config.tm_mode = TmMode::Gtm;
    let mut cluster = Cluster::new(config);
    loader::load(&mut cluster, &scale, params.seed).expect("load");
    let st = txns::Statements::prepare(&cluster).expect("prepare");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let _ = TpccMix::standard();

    let window = SimDuration::from_millis(500);
    let total_windows = 16usize;
    let mut commits_per_window = vec![0u64; total_windows];
    let mut modes = vec![String::new(); total_windows];

    // Closed loop, single driver thread of 8 logical terminals.
    let mut next_at: Vec<SimTime> = (0..8)
        .map(|i| SimTime::from_millis(10 + i as u64))
        .collect();
    let t_end = SimTime::from_millis(10) + window * total_windows as u64;
    let mut transition_started = 0usize; // 0 = none, 1 = to GClock, 2 = back

    while let Some((term, &at)) = next_at.iter().enumerate().min_by_key(|(_, t)| t.as_nanos()) {
        if at >= t_end {
            break;
        }
        // Kick the transitions at windows 4 and 10.
        let widx = ((at.as_millis().saturating_sub(10)) / window.as_millis()) as usize;
        if widx >= 4 && transition_started == 0 {
            cluster.start_transition(TransitionDirection::ToGClock);
            transition_started = 1;
        }
        if widx >= 10 && transition_started == 1 {
            cluster.start_transition(TransitionDirection::ToGtm);
            transition_started = 2;
        }
        let w = (term as i64 % scale.warehouses) + 1;
        let dist = ((term as i64 / scale.warehouses) % scale.districts_per_warehouse) + 1;
        let cn = term % cluster.db.cns().len();
        let res = txns::new_order(&mut cluster, &st, &mut rng, &scale, cn, at, w, dist, 0.0);
        let done = match res {
            Ok(outcome) => {
                if widx < total_windows {
                    commits_per_window[widx] += 1;
                    modes[widx] = format!("{}", cluster.db.cn_mode(cn));
                }
                outcome.completed_at
            }
            Err(_) => at + SimDuration::from_millis(5),
        };
        // New-Order only keeps the harness simple; mixed kinds would
        // obscure the per-window signal.
        let _ = Datum::Null;
        next_at[term] = done + SimDuration::from_millis(10);
    }

    let rows: Vec<Vec<String>> = commits_per_window
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let note = match i {
                4 => "→ transition to GClock starts",
                10 => "→ transition back to GTM starts",
                _ => "",
            };
            vec![
                format!("{}..{} ms", 10 + i * 500, 10 + (i + 1) * 500),
                format!("{c}"),
                modes[i].clone(),
                note.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation — throughput through online GTM↔GClock transitions",
        &["window", "NewOrder commits", "CN mode at end", "event"],
        &rows,
    );
    let min = commits_per_window.iter().min().unwrap();
    println!(
        "Minimum window: {min} commits — zero-downtime requires every window > 0. \
         Last transition completed: {:?}",
        cluster.db.last_transition_completed()
    );
    assert!(*min > 0, "a window starved during the transition!");
}
