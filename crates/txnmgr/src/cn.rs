//! The per-computing-node transaction manager.
//!
//! A CN plans how each transaction obtains its begin and commit timestamps
//! based on its current mode. The plans tell the cluster layer which
//! network interactions to charge (a GTM round trip vs. a purely local
//! clock read plus wait).

use crate::mode::TmMode;
use gdb_model::Timestamp;
use gdb_simclock::GClock;
use gdb_simnet::{SimDuration, SimTime};

/// How a transaction obtains its begin snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginPlan {
    /// GClock mode: purely local. `snapshot` is the assigned timestamp and
    /// `invocation_wait` the "wait until T_clock > TS" duration (zero for
    /// single-shard transactions, which reuse the node's last committed
    /// timestamp — paper §III).
    Local {
        snapshot: Timestamp,
        invocation_wait: SimDuration,
    },
    /// GTM or DUAL mode: one round trip to the GTM server, whose
    /// [`crate::GtmServer::begin_snapshot`] provides the snapshot.
    ViaGtm,
}

/// How a transaction obtains its commit timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitPlan {
    /// GClock mode: local assignment plus commit wait; the commit
    /// timestamp is piggybacked to the GTM server asynchronously
    /// (no latency charged) via `observe_commit`.
    GClockLocal {
        ts: Timestamp,
        commit_wait: SimDuration,
    },
    /// GTM mode: round trip to the GTM server
    /// ([`crate::GtmServer::commit_gtm`], which may also impose the DUAL
    /// 2×err wait or abort the transaction).
    ViaGtmCounter,
    /// DUAL mode: obtain a GClock timestamp locally, then a round trip to
    /// the GTM server ([`crate::GtmServer::commit_dual`]); afterwards the
    /// CN performs a clock wait until its clock passes the issued
    /// timestamp so later GClock transactions order correctly.
    ViaGtmDual { gclock_ts: Timestamp },
}

/// Per-CN transaction-management state.
#[derive(Debug, Clone)]
pub struct CnTm {
    pub mode: TmMode,
    pub gclock: GClock,
    /// Largest commit timestamp this node has completed (single-shard
    /// begin bypass, and staleness reporting).
    last_committed: Timestamp,
}

impl CnTm {
    pub fn new(mode: TmMode, gclock: GClock) -> Self {
        CnTm {
            mode,
            gclock,
            last_committed: Timestamp::ZERO,
        }
    }

    pub fn last_committed(&self) -> Timestamp {
        self.last_committed
    }

    /// Record a completed commit (updates the single-shard snapshot).
    pub fn finish_commit(&mut self, ts: Timestamp) {
        self.last_committed = self.last_committed.max(ts);
    }

    /// Plan the begin of a transaction at virtual time `now`.
    pub fn plan_begin(&self, now: SimTime, single_shard: bool) -> BeginPlan {
        match self.mode {
            TmMode::Gtm | TmMode::Dual => BeginPlan::ViaGtm,
            TmMode::GClock => {
                if single_shard {
                    BeginPlan::Local {
                        snapshot: self.last_committed.max(self.gclock.t_clock(now)),
                        invocation_wait: SimDuration::ZERO,
                    }
                } else {
                    let ts = self.gclock.assign_timestamp(now);
                    BeginPlan::Local {
                        snapshot: ts,
                        invocation_wait: self.gclock.wait_for(now, ts),
                    }
                }
            }
        }
    }

    /// Plan the commit of a transaction reaching its commit point at `now`.
    pub fn plan_commit(&self, now: SimTime) -> CommitPlan {
        match self.mode {
            TmMode::Gtm => CommitPlan::ViaGtmCounter,
            TmMode::Dual => CommitPlan::ViaGtmDual {
                gclock_ts: self.gclock.assign_timestamp(now),
            },
            TmMode::GClock => {
                let (ts, commit_wait) = self.gclock.commit_timestamp(now);
                CommitPlan::GClockLocal { ts, commit_wait }
            }
        }
    }

    /// The clock wait a DUAL transaction performs after the GTM issues its
    /// timestamp (so subsequent GClock transactions see it ordered).
    pub fn dual_post_wait(&self, now: SimTime, issued: Timestamp) -> SimDuration {
        self.gclock.wait_for(now, issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_simclock::GClockConfig;

    fn cn(mode: TmMode) -> CnTm {
        let mut g = GClock::new(7, 100.0, GClockConfig::default());
        g.sync(SimTime::from_secs(1));
        CnTm::new(mode, g)
    }

    #[test]
    fn gtm_mode_plans_round_trips() {
        let c = cn(TmMode::Gtm);
        assert_eq!(
            c.plan_begin(SimTime::from_secs(1), false),
            BeginPlan::ViaGtm
        );
        assert_eq!(
            c.plan_commit(SimTime::from_secs(1)),
            CommitPlan::ViaGtmCounter
        );
    }

    #[test]
    fn gclock_mode_is_local_with_waits() {
        let c = cn(TmMode::GClock);
        let now = SimTime::from_secs(1) + SimDuration::from_micros(500);
        match c.plan_begin(now, false) {
            BeginPlan::Local {
                snapshot,
                invocation_wait,
            } => {
                assert!(snapshot > Timestamp::ZERO);
                assert!(!invocation_wait.is_zero(), "multi-shard begin waits");
            }
            other => panic!("{other:?}"),
        }
        match c.plan_commit(now) {
            CommitPlan::GClockLocal { ts, commit_wait } => {
                assert!(ts > Timestamp::ZERO);
                assert!(!commit_wait.is_zero());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_shard_begin_bypasses_wait() {
        let mut c = cn(TmMode::GClock);
        c.finish_commit(Timestamp(999_999_999_999));
        let now = SimTime::from_secs(1) + SimDuration::from_micros(10);
        match c.plan_begin(now, true) {
            BeginPlan::Local {
                snapshot,
                invocation_wait,
            } => {
                assert_eq!(snapshot, Timestamp(999_999_999_999));
                assert!(invocation_wait.is_zero());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_shard_snapshot_not_stale_on_idle_node() {
        // With no recent commits, the bypass still uses the clock reading
        // so reads are not arbitrarily old.
        let c = cn(TmMode::GClock);
        let now = SimTime::from_secs(2);
        match c.plan_begin(now, true) {
            BeginPlan::Local { snapshot, .. } => {
                assert!(snapshot >= Timestamp::from_micros(1_900_000));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dual_mode_combines_clock_and_gtm() {
        let c = cn(TmMode::Dual);
        assert_eq!(
            c.plan_begin(SimTime::from_secs(1), false),
            BeginPlan::ViaGtm
        );
        match c.plan_commit(SimTime::from_secs(1) + SimDuration::from_micros(100)) {
            CommitPlan::ViaGtmDual { gclock_ts } => assert!(gclock_ts > Timestamp::ZERO),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finish_commit_is_monotone() {
        let mut c = cn(TmMode::GClock);
        c.finish_commit(Timestamp(100));
        c.finish_commit(Timestamp(50));
        assert_eq!(c.last_committed(), Timestamp(100));
    }
}
