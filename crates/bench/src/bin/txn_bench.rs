//! Wall-clock transaction hot-path benchmark.
//!
//! Drives the identical fixed-seed write script through the live
//! primary→replica pipeline and the frozen pre-pass pipeline (see
//! [`gdb_bench::txnpath`]), asserting byte-identical durable segments
//! and identical committed state before reporting:
//!
//! * **speedup** — committed txns/sec, fast over legacy, gated in CI by
//!   `benchcmp check` as a machine-local *ratio* (never an absolute);
//! * **allocations per committed transaction** — measured by a counting
//!   global allocator; the artifact names the gauge in its
//!   `wall_alloc_metric` config so the gate also enforces the
//!   lower-is-better allocation improvement (floor: 10× fewer).
//!
//! Regenerate the baseline with `scripts/regen_bench.sh` (or directly:
//! `cargo run --release -p gdb-bench --bin txn_bench -- --json
//! BENCH_txn.json`). Knobs: `GDB_TXN_TXNS` (default 60,000),
//! `GDB_TXN_WINDOW` (group-commit/ship window, default 64).

use gdb_bench::txnpath::{
    assert_equivalent, generate_script, run_fast, run_reference, Script, TxnPathResult,
};
use gdb_bench::{json_out_path, print_table};
use gdb_obs::{
    bundle, BenchArtifact, BenchSeries, HistSummary, MetricsRegistry, NetStats,
    WALL_ALLOC_FLOOR_KEY, WALL_ALLOC_METRIC_KEY, WALL_CLOCK_KEY, WALL_FLOOR_KEY,
};
use gdb_simnet::stats::LatencyHistogram;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

// ---- Counting allocator ---------------------------------------------------
// Counts every heap allocation so the gate can enforce the ≥10× reduction
// in allocations per committed transaction (pooled rows + borrowed decode
// vs clones + owned decode). Counts are deterministic per build, making
// this leg far less noisy than the wall-clock leg.

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

const SCRIPT_SEED: u64 = 42;

struct Measured {
    result: TxnPathResult,
    allocs: u64,
    alloc_bytes: u64,
}

fn measure(f: impl Fn() -> TxnPathResult) -> Measured {
    let (a0, b0) = alloc_counts();
    let result = f();
    let (a1, b1) = alloc_counts();
    Measured {
        result,
        allocs: a1 - a0,
        alloc_bytes: b1 - b0,
    }
}

/// Best-of-N wall time: reruns absorb scheduler / cache warmup noise.
/// Allocation counts are kept from the same round as the winning wall
/// time so every series is one self-consistent run.
fn best_of(rounds: u32, f: impl Fn() -> Measured) -> Measured {
    let mut best = f();
    for _ in 1..rounds {
        let r = f();
        if r.result.wall < best.result.wall {
            best = r;
        }
    }
    best
}

fn txn_series(label: &str, m: &Measured) -> BenchSeries {
    let r = &m.result;
    let tps = r.committed as f64 / r.wall.as_secs_f64().max(1e-9);
    let per_txn = m.allocs as f64 / r.committed.max(1) as f64;
    let mut reg = MetricsRegistry::default();
    reg.set_counter("txn.committed", r.committed);
    reg.set_counter("txn.records", r.records);
    reg.set_counter("txn.wall_ms", r.wall.as_millis() as u64);
    reg.set_counter("txn.allocs", m.allocs);
    reg.set_counter("txn.alloc_bytes", m.alloc_bytes);
    reg.set_counter("txn.fsyncs", r.fsyncs);
    reg.set_counter("txn.synced_txns", r.synced_txns);
    reg.set_counter("txn.raw_bytes", r.raw_bytes);
    reg.set_counter("txn.wire_bytes", r.wire_bytes);
    reg.set_counter("txn.segment_bytes", r.segment_len as u64);
    reg.gauge("txn.txn_per_sec", tps);
    reg.gauge("txn.allocs_per_txn", per_txn);
    BenchSeries {
        label: label.into(),
        throughput_txn_s: tps,
        tpmc: 0.0,
        commits: r.committed,
        aborts: 0,
        latency: HistSummary::of(&LatencyHistogram::bounded()),
        phases: Default::default(),
        net: NetStats::default(),
        metrics: reg.snapshot(),
    }
}

fn main() {
    let txns: usize = std::env::var("GDB_TXN_TXNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
        .max(1);
    let window: usize = std::env::var("GDB_TXN_WINDOW")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
        .max(1);

    eprintln!("txn_bench: {txns} txns, ship window {window}, best of 3 rounds");
    let script: Script = generate_script(SCRIPT_SEED, txns);

    // Warmup round each (untimed), then best-of-3 measured.
    run_fast(&script, window);
    run_reference(&script, window);
    let fast = best_of(3, || measure(|| run_fast(&script, window)));
    let legacy = best_of(3, || measure(|| run_reference(&script, window)));

    // Differential gate: both pipelines must have written the identical
    // durable segment and committed the identical state.
    assert_equivalent(&fast.result, &legacy.result);

    let tps = |m: &Measured| m.result.committed as f64 / m.result.wall.as_secs_f64().max(1e-9);
    let speedup = tps(&fast) / tps(&legacy);
    let per_txn = |m: &Measured| m.allocs as f64 / m.result.committed.max(1) as f64;
    let alloc_improvement = per_txn(&legacy) / per_txn(&fast).max(1e-9);

    let mut txn = BenchArtifact::new("txn");
    txn.config_kv(WALL_CLOCK_KEY, "true");
    // Gate floors: ≥1.5× wall-clock speedup, ≥10× fewer allocs/txn —
    // both ratios of in-run series, portable across machines.
    txn.config_kv(WALL_FLOOR_KEY, "1.5");
    txn.config_kv(WALL_ALLOC_METRIC_KEY, "txn.allocs_per_txn");
    txn.config_kv(WALL_ALLOC_FLOOR_KEY, "10");
    txn.config_kv("txns", txns);
    txn.config_kv("window", window);
    txn.config_kv("seed", SCRIPT_SEED);
    txn.config_kv("writes", script.writes());
    txn.series.push(txn_series("fast", &fast));
    txn.series.push(txn_series("legacy", &legacy));

    let ktps = |m: &Measured| format!("{:.0}k", tps(m) / 1e3);
    print_table(
        "txn hot path (wall clock, primary→replica)",
        &["path", "txn/s", "wall ms", "allocs/txn", "fsyncs"],
        &[
            vec![
                "fast (arena+group-commit+zero-copy)".into(),
                ktps(&fast),
                format!("{:.1}", fast.result.wall.as_secs_f64() * 1e3),
                format!("{:.2}", per_txn(&fast)),
                fast.result.fsyncs.to_string(),
            ],
            vec![
                "legacy (clones+per-txn-sync+owned decode)".into(),
                ktps(&legacy),
                format!("{:.1}", legacy.result.wall.as_secs_f64() * 1e3),
                format!("{:.2}", per_txn(&legacy)),
                legacy.result.fsyncs.to_string(),
            ],
        ],
    );
    println!("txn speedup: {speedup:.2}x, alloc improvement: {alloc_improvement:.1}x fewer/txn");

    if let Some(path) = json_out_path() {
        let doc = bundle(&[txn]).to_pretty();
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
