//! Wall-clock engine benchmark: how many simulation events per second
//! does the event engine actually execute on this machine?
//!
//! Every other artifact in the repo measures *virtual* time — perfect for
//! reproducibility, blind to real engine cost. This binary times two
//! things for real:
//!
//! 1. **Event storm** — a fixed-seed, self-replicating storm of
//!    short-delay events runs through the optimized engine (timing
//!    wheel, typed events, handle-based metrics) and, identically,
//!    through the frozen pre-optimization engine
//!    ([`gdb_simnet::reference::HeapSim`]: one `BinaryHeap` of boxed
//!    closures with string-keyed metrics). Both engines execute the
//!    exact same event sequence; the wall-clock ratio is the engine
//!    speedup, re-measured on every machine.
//! 2. **Cluster workload** — a tiny TPC-C run, reporting the end-to-end
//!    events/sec the full simulator sustains (informational).
//!
//! The artifact is marked `wall_clock=true`: the CI gate
//! (`benchcmp check BENCH_engine.json ...`) compares only the *speedup*
//! of `fast` over `legacy` (generous slack + absolute floor), never the
//! machine-local absolute numbers.
//!
//! Regenerate the baseline with `scripts/regen_bench.sh` (or directly:
//! `cargo run --release -p gdb-bench --bin engine_bench -- --json
//! BENCH_engine.json`). Knob: `GDB_ENGINE_EVENTS` (default 2,000,000).

use gdb_bench::{json_out_path, print_table, tpcc_run, BenchParams};
use gdb_obs::{
    bundle, BenchArtifact, BenchSeries, CounterId, HistId, HistSummary, MetricsRegistry, NetStats,
    WALL_CLOCK_KEY,
};
use gdb_simnet::reference::HeapSim;
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{Sim, SimDuration, SimTime, TypedEvent};
use gdb_workloads::driver::RunConfig;
use gdb_workloads::tpcc::{TpccMix, TpccScale};
use globaldb::ClusterConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---- Counting allocator ---------------------------------------------------
// Counts every heap allocation so the artifact records how many the storm
// costs per engine (the wheel's arena reuse vs one box per closure).

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---- The event storm ------------------------------------------------------
// A self-replicating storm: each tick records one counter bump and one
// histogram observation (the hot per-event metrics cost), then schedules
// 1-2 children while the budget lasts. Delays are drawn so the wheel
// exercises all three levels: mostly near-future buckets, some at-cursor
// inserts, a few far-future heap spills. Both engines run the identical
// seed, so they draw the identical delay sequence and execute the
// identical event set.

struct Storm {
    rng: SmallRng,
    /// Events still allowed to be scheduled (budget, counted at
    /// schedule time so both engines stop at the same total).
    budget: u64,
    fired: u64,
    metrics: MetricsRegistry,
    /// Handle-path instruments (fast engine only).
    ticks: CounterId,
    delay_us: HistId,
}

const STORM_TICKS: &str = "engine.storm.ticks";
const STORM_DELAY_US: &str = "engine.storm.delay_us";

impl Storm {
    fn new(seed: u64, budget: u64) -> Self {
        let mut metrics = MetricsRegistry::default();
        let ticks = metrics.register_counter(STORM_TICKS);
        let delay_us = metrics.register_histogram(STORM_DELAY_US);
        Storm {
            rng: SmallRng::seed_from_u64(seed),
            budget,
            fired: 0,
            metrics,
            ticks,
            delay_us,
        }
    }

    /// Draw the children of one tick: up to two delays, mostly short
    /// (near buckets), sometimes sub-slot (cursor heap), rarely beyond
    /// the wheel window (far heap).
    fn child_delays(&mut self, out: &mut [SimDuration; 2]) -> usize {
        let fanout = if self.rng.gen_bool(0.55) { 2 } else { 1 };
        let mut n = 0;
        for slot in out.iter_mut().take(fanout) {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            let roll = self.rng.gen_range(0u32..100);
            let nanos = if roll < 80 {
                // Near future: lands in the wheel's bucket ring.
                self.rng.gen_range(300_000u64..8_000_000)
            } else if roll < 96 {
                // Sub-slot: at/before the cursor slot (fine-order heap).
                self.rng.gen_range(0u64..200_000)
            } else {
                // Beyond the ~134 ms wheel window: far-future heap.
                self.rng.gen_range(150_000_000u64..600_000_000)
            };
            *slot = SimDuration::from_nanos(nanos);
            n += 1;
        }
        n
    }
}

enum StormEvent {
    Tick { delay: SimDuration },
}

impl TypedEvent<Storm> for StormEvent {
    fn fire(self, w: &mut Storm, sim: &mut Sim<Storm, StormEvent>) {
        let StormEvent::Tick { delay } = self;
        w.fired += 1;
        w.metrics.bump(w.ticks);
        w.metrics.record(w.delay_us, delay);
        let mut delays = [SimDuration::ZERO; 2];
        let n = w.child_delays(&mut delays);
        for &d in &delays[..n] {
            sim.schedule_event_after(d, StormEvent::Tick { delay: d });
        }
    }
}

/// The same tick on the frozen engine: boxed closure + string metrics.
fn legacy_tick(w: &mut Storm, sim: &mut HeapSim<Storm>, delay: SimDuration) {
    w.fired += 1;
    w.metrics.count(STORM_TICKS, 1);
    w.metrics.observe(STORM_DELAY_US, delay);
    let mut delays = [SimDuration::ZERO; 2];
    let n = w.child_delays(&mut delays);
    for &d in &delays[..n] {
        sim.schedule_after(d, move |w, sim| legacy_tick(w, sim, d));
    }
}

/// Initial seeding shared by both engines: `SEEDS` staggered root ticks.
const SEEDS: u64 = 64;
const STORM_SEED: u64 = 42;

struct StormResult {
    fired: u64,
    wall: std::time::Duration,
    allocs: u64,
    alloc_bytes: u64,
    final_now: SimTime,
}

fn run_fast_storm(total_events: u64) -> StormResult {
    let mut world = Storm::new(STORM_SEED, total_events - SEEDS);
    let mut sim: Sim<Storm, StormEvent> = Sim::new();
    for i in 0..SEEDS {
        sim.schedule_event_at(
            SimTime::from_micros(i * 37),
            StormEvent::Tick {
                delay: SimDuration::ZERO,
            },
        );
    }
    let (a0, b0) = alloc_counts();
    let start = Instant::now();
    sim.run_to_completion(&mut world, u64::MAX);
    let wall = start.elapsed();
    let (a1, b1) = alloc_counts();
    assert_eq!(world.fired, total_events, "storm budget accounting");
    assert_eq!(sim.events_executed(), total_events);
    let snap = world.metrics.snapshot();
    assert_eq!(snap.counter(STORM_TICKS), Some(total_events));
    StormResult {
        fired: world.fired,
        wall,
        allocs: a1 - a0,
        alloc_bytes: b1 - b0,
        final_now: sim.now(),
    }
}

fn run_legacy_storm(total_events: u64) -> StormResult {
    let mut world = Storm::new(STORM_SEED, total_events - SEEDS);
    let mut sim: HeapSim<Storm> = HeapSim::new();
    for i in 0..SEEDS {
        sim.schedule_at(SimTime::from_micros(i * 37), |w, sim| {
            legacy_tick(w, sim, SimDuration::ZERO)
        });
    }
    let (a0, b0) = alloc_counts();
    let start = Instant::now();
    sim.run_to_completion(&mut world, u64::MAX);
    let wall = start.elapsed();
    let (a1, b1) = alloc_counts();
    assert_eq!(world.fired, total_events, "storm budget accounting");
    let snap = world.metrics.snapshot();
    assert_eq!(snap.counter(STORM_TICKS), Some(total_events));
    StormResult {
        fired: world.fired,
        wall,
        allocs: a1 - a0,
        alloc_bytes: b1 - b0,
        final_now: sim.now(),
    }
}

/// Best-of-N wall time: reruns absorb scheduler / cache warmup noise.
fn best_of<R>(
    rounds: u32,
    mut f: impl FnMut() -> R,
    wall: impl Fn(&R) -> std::time::Duration,
) -> R {
    let mut best = f();
    for _ in 1..rounds {
        let r = f();
        if wall(&r) < wall(&best) {
            best = r;
        }
    }
    best
}

/// One artifact series for a storm run: `throughput_txn_s` holds
/// events/sec (the quantity the speedup gate ratios); the metrics
/// snapshot carries the raw wall-clock and allocation numbers.
fn storm_series(label: &str, r: &StormResult) -> BenchSeries {
    let eps = r.fired as f64 / r.wall.as_secs_f64().max(1e-9);
    let mut m = MetricsRegistry::default();
    m.set_counter("engine.events", r.fired);
    m.set_counter("engine.wall_ms", r.wall.as_millis() as u64);
    m.gauge("engine.events_per_sec", eps);
    m.set_counter("engine.allocs", r.allocs);
    m.set_counter("engine.alloc_bytes", r.alloc_bytes);
    m.set_counter("engine.virtual_ms", r.final_now.as_nanos() / 1_000_000);
    BenchSeries {
        label: label.into(),
        throughput_txn_s: eps,
        tpmc: 0.0,
        commits: r.fired,
        aborts: 0,
        latency: HistSummary::of(&LatencyHistogram::bounded()),
        phases: Default::default(),
        net: NetStats::default(),
        metrics: m.snapshot(),
    }
}

fn main() {
    let total_events: u64 = std::env::var("GDB_ENGINE_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000)
        .max(SEEDS);

    eprintln!("engine_bench: {total_events} events per engine, best of 3 rounds");

    // Warmup round each (untimed), then best-of-3 measured.
    run_fast_storm(total_events);
    run_legacy_storm(total_events);
    let fast = best_of(3, || run_fast_storm(total_events), |r| r.wall);
    let legacy = best_of(3, || run_legacy_storm(total_events), |r| r.wall);
    assert_eq!(
        fast.final_now, legacy.final_now,
        "engines diverged: same seed must replay the same storm"
    );

    let eps = |r: &StormResult| r.fired as f64 / r.wall.as_secs_f64().max(1e-9);
    let speedup = eps(&fast) / eps(&legacy);

    let mut engine = BenchArtifact::new("engine");
    engine.config_kv(WALL_CLOCK_KEY, "true");
    engine.config_kv("events", total_events);
    engine.config_kv("seed", STORM_SEED);
    engine.series.push(storm_series("fast", &fast));
    engine.series.push(storm_series("legacy", &legacy));

    // Cluster leg: a tiny TPC-C run, end-to-end events/sec of the full
    // simulator (informational — no in-run baseline, so never gated).
    let params = BenchParams {
        scale: TpccScale::tiny(),
        scale_name: "tiny",
        run: RunConfig {
            terminals: 8,
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(1),
            think_time: SimDuration::from_millis(10),
        },
        seed: 42,
    };
    let start = Instant::now();
    let (cluster, report) = tpcc_run(
        ClusterConfig::globaldb_three_city(),
        &params,
        TpccMix::standard(),
        |_| {},
    );
    let cluster_wall = start.elapsed();
    let cluster_events = cluster.sim.events_executed();
    let cluster_eps = cluster_events as f64 / cluster_wall.as_secs_f64().max(1e-9);
    let mut cm = MetricsRegistry::default();
    cm.set_counter("engine.events", cluster_events);
    cm.set_counter("engine.wall_ms", cluster_wall.as_millis() as u64);
    cm.gauge("engine.events_per_sec", cluster_eps);
    cm.gauge("workload.txn_s", report.throughput_per_sec());
    let mut engine_cluster = BenchArtifact::new("engine_cluster");
    engine_cluster.config_kv(WALL_CLOCK_KEY, "true");
    engine_cluster.config_kv("scale", "tiny");
    engine_cluster.config_kv("seed", params.seed);
    engine_cluster.series.push(BenchSeries {
        label: "tpcc".into(),
        throughput_txn_s: cluster_eps,
        tpmc: report.tpmc(),
        commits: report.total_commits(),
        aborts: report.total_aborts(),
        latency: HistSummary::of(&LatencyHistogram::bounded()),
        phases: Default::default(),
        net: NetStats::default(),
        metrics: cm.snapshot(),
    });

    let meps = |r: &StormResult| format!("{:.2}M", eps(r) / 1e6);
    let per_event = |r: &StormResult| format!("{:.2}", r.allocs as f64 / r.fired as f64);
    print_table(
        "engine events/sec (wall clock)",
        &["engine", "events/s", "wall ms", "allocs/event"],
        &[
            vec![
                "fast (wheel+typed+handles)".into(),
                meps(&fast),
                format!("{:.1}", fast.wall.as_secs_f64() * 1e3),
                per_event(&fast),
            ],
            vec![
                "legacy (heap+boxed+strings)".into(),
                meps(&legacy),
                format!("{:.1}", legacy.wall.as_secs_f64() * 1e3),
                per_event(&legacy),
            ],
            vec![
                "cluster tpcc (end-to-end)".into(),
                format!("{:.2}M", cluster_eps / 1e6),
                format!("{:.1}", cluster_wall.as_secs_f64() * 1e3),
                "-".into(),
            ],
        ],
    );
    println!("engine speedup: {speedup:.2}x (fast over legacy, same storm)");

    if let Some(path) = json_out_path() {
        let doc = bundle(&[engine, engine_cluster]).to_pretty();
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
