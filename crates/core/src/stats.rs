//! Cluster-level statistics and per-transaction outcomes.

use gdb_model::Timestamp;
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{SimDuration, SimTime};

/// What happened to one transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOutcome {
    /// Commit timestamp (None for pure reads in ROR mode, which carry the
    /// RCP snapshot instead).
    pub commit_ts: Option<Timestamp>,
    /// The snapshot the transaction read at.
    pub snapshot: Timestamp,
    /// Virtual time the client observed completion.
    pub completed_at: SimTime,
    /// End-to-end latency as the client saw it.
    pub latency: SimDuration,
    /// Which shards the transaction wrote.
    pub shards_written: Vec<usize>,
    /// True if any read was served by a replica.
    pub used_replica: bool,
}

/// Aggregate counters for a cluster run.
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub committed: u64,
    pub aborted: u64,
    pub reads_on_replica: u64,
    pub reads_on_primary: u64,
    pub replica_blocked_fallbacks: u64,
    pub ror_rejected_freshness: u64,
    pub ror_rejected_ddl: u64,
    pub lock_waits: u64,
    pub commit_wait_total: SimDuration,
    pub heartbeats_sent: u64,
    pub rcp_rounds: u64,
    pub versions_vacuumed: u64,
    pub latency: LatencyHistogram,
}

impl ClusterStats {
    pub fn record_txn(&mut self, outcome: &TxnOutcome) {
        self.committed += 1;
        self.latency.record(outcome.latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = ClusterStats::default();
        s.record_txn(&TxnOutcome {
            commit_ts: Some(Timestamp(5)),
            snapshot: Timestamp(4),
            completed_at: SimTime::from_millis(10),
            latency: SimDuration::from_millis(10),
            shards_written: vec![0],
            used_replica: false,
        });
        assert_eq!(s.committed, 1);
        assert_eq!(s.latency.len(), 1);
    }
}
