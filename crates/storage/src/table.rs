//! Versioned tables with snapshot visibility.
//!
//! Version chains live in a per-table slab arena: each chain is a
//! newest-first singly linked list of `u32` node indices, with the head
//! stored in the key B-tree. Vacuumed nodes go on a freelist and their
//! row buffers into a bounded pool, so the steady state — install,
//! read, vacuum, repeat — allocates nothing per transaction. The frozen
//! pre-arena implementation is kept verbatim in [`crate::reference`]
//! and the differential property tests there pin the two to identical
//! behavior.

use gdb_model::{GdbError, GdbResult, Row, RowKey, Timestamp};
use gdb_simnet::SimTime;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One committed version of a row.
#[derive(Debug, Clone, PartialEq)]
pub struct Version {
    /// Commit timestamp of the writing transaction.
    pub commit_ts: Timestamp,
    /// Virtual time at which the commit completed (used to model readers
    /// waiting on a commit that is in flight at their read time).
    pub commit_vtime: SimTime,
    /// The row contents; `None` is a deletion tombstone.
    pub row: Option<Row>,
}

/// A visible row returned by a snapshot read.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibleRow<'a> {
    pub key: &'a RowKey,
    pub row: &'a Row,
    pub commit_ts: Timestamp,
    /// If the version's commit completes after the reader's current virtual
    /// time, the reader must wait until this instant (commit in flight).
    pub commit_vtime: SimTime,
}

/// Chain-list terminator.
const NIL: u32 = u32::MAX;

/// Vacuumed row buffers kept for reuse, per table. Bounded so a burst
/// of deletes cannot pin arbitrary memory.
const ROW_POOL_CAP: usize = 4096;

/// One arena slot: a version plus the index of the next-*older* version
/// in its chain.
#[derive(Debug, Clone)]
struct VersionNode {
    version: Version,
    older: u32,
}

/// Slab arena holding every version node of one table, with a freelist
/// fed by vacuum and a bounded pool of recycled row buffers.
#[derive(Debug, Default, Clone)]
struct VersionArena {
    nodes: Vec<VersionNode>,
    free: Vec<u32>,
    row_pool: Vec<Row>,
}

impl VersionArena {
    fn alloc(&mut self, version: Version, older: u32) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = VersionNode { version, older };
                i
            }
            None => {
                self.nodes.push(VersionNode { version, older });
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Return a node to the freelist, salvaging its row buffer.
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        if let Some(mut row) = node.version.row.take() {
            if self.row_pool.len() < ROW_POOL_CAP {
                row.0.clear();
                self.row_pool.push(row);
            }
        }
        self.free.push(idx);
    }

    /// Allocator bytes the arena currently pins, capacity-based (a pure
    /// function of the operation history, so seeded runs report
    /// identical footprints): slab capacity, freelist capacity, pooled
    /// row buffers, and the row buffers held live inside nodes.
    fn resident_bytes(&self) -> usize {
        let node_rows: usize = self
            .nodes
            .iter()
            .map(|n| {
                n.version.row.as_ref().map_or(0, |r| {
                    r.0.capacity() * std::mem::size_of::<gdb_model::Datum>()
                })
            })
            .sum();
        let pooled: usize = self
            .row_pool
            .iter()
            .map(|r| r.0.capacity() * std::mem::size_of::<gdb_model::Datum>())
            .sum();
        self.nodes.capacity() * std::mem::size_of::<VersionNode>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.row_pool.capacity() * std::mem::size_of::<Row>()
            + node_rows
            + pooled
    }

    /// Release memory held for reuse: drop the pooled row buffers and
    /// return slack slab/freelist capacity to the allocator. The
    /// freelist *entries* are kept — they index live slab slots and
    /// dropping them would leak arena nodes. Steady-state allocation
    /// freedom resumes as vacuum refills the pool.
    fn compact(&mut self) {
        self.row_pool.clear();
        self.row_pool.shrink_to_fit();
        self.nodes.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Newest version at or below `snapshot` walking from `head`.
    fn visible_at(&self, mut idx: u32, snapshot: Timestamp) -> Option<&Version> {
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            if node.version.commit_ts <= snapshot {
                return Some(&node.version);
            }
            idx = node.older;
        }
        None
    }
}

/// A versioned table: primary-key ordered chains in a slab arena.
#[derive(Debug, Default, Clone)]
pub struct Table {
    /// Key -> head (newest) version node of its chain.
    rows: BTreeMap<RowKey, u32>,
    arena: VersionArena,
    /// Count of version installs (write amplification metric).
    pub versions_installed: u64,
}

impl Table {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a committed version (insert, update, or tombstone).
    /// `row = None` is a delete. Chains must stay ordered by commit
    /// timestamp — guaranteed by the lock table (a writer waits out the
    /// previous holder whose commit wait, in turn, guarantees a larger
    /// timestamp).
    pub fn install_version(
        &mut self,
        key: RowKey,
        row: Option<Row>,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        use std::collections::btree_map::Entry;
        self.versions_installed += 1;
        let v = Version {
            commit_ts,
            commit_vtime,
            row,
        };
        match self.rows.entry(key) {
            Entry::Occupied(mut o) => {
                let head = *o.get();
                let last = &self.arena.nodes[head as usize].version;
                if v.commit_ts < last.commit_ts {
                    return Err(GdbError::Internal(format!(
                        "version chain order violation at {}: {} (vtime {}) after {} (vtime {})",
                        o.key(),
                        v.commit_ts,
                        v.commit_vtime,
                        last.commit_ts,
                        last.commit_vtime
                    )));
                }
                *o.get_mut() = self.arena.alloc(v, head);
            }
            Entry::Vacant(va) => {
                let idx = self.arena.alloc(v, NIL);
                va.insert(idx);
            }
        }
        Ok(())
    }

    /// [`Table::install_version`] borrowing the key: clones it only when
    /// the key is new to the table, so the steady-state replay path
    /// (existing keys, recycled row buffers) installs with zero
    /// allocations.
    pub fn install_version_at(
        &mut self,
        key: &RowKey,
        row: Option<Row>,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.versions_installed += 1;
        let v = Version {
            commit_ts,
            commit_vtime,
            row,
        };
        if let Some(head_slot) = self.rows.get_mut(key) {
            let head = *head_slot;
            let last = &self.arena.nodes[head as usize].version;
            if v.commit_ts < last.commit_ts {
                return Err(GdbError::Internal(format!(
                    "version chain order violation at {key}: {} (vtime {}) after {} (vtime {})",
                    v.commit_ts, v.commit_vtime, last.commit_ts, last.commit_vtime
                )));
            }
            *head_slot = self.arena.alloc(v, head);
        } else {
            let idx = self.arena.alloc(v, NIL);
            self.rows.insert(key.clone(), idx);
        }
        Ok(())
    }

    /// A cleared row buffer recycled from vacuumed versions (or a fresh
    /// one if the pool is empty). Pass its contents back through
    /// [`Table::install_version`] to keep the steady state allocation-free.
    pub fn recycled_row(&mut self) -> Row {
        self.arena.row_pool.pop().unwrap_or_default()
    }

    /// Point read at a snapshot. Tombstones read as `None`.
    pub fn read(&self, key: &RowKey, snapshot: Timestamp) -> Option<VisibleRow<'_>> {
        let (key, &head) = self.rows.get_key_value(key)?;
        let v = self.arena.visible_at(head, snapshot)?;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    /// The newest committed row regardless of snapshot (read-committed
    /// update path, used after acquiring the row lock).
    pub fn read_newest(&self, key: &RowKey) -> Option<VisibleRow<'_>> {
        let (key, &head) = self.rows.get_key_value(key)?;
        let v = &self.arena.nodes[head as usize].version;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    /// True if any version (even a tombstone) exists for the key.
    pub fn contains_any_version(&self, key: &RowKey) -> bool {
        self.rows.contains_key(key)
    }

    /// True if the key has a live (non-tombstone) newest version.
    pub fn exists_newest(&self, key: &RowKey) -> bool {
        self.read_newest(key).is_some()
    }

    /// Range scan `[lo, hi]` (inclusive bounds; `None` = unbounded) at a
    /// snapshot, in key order.
    pub fn range(
        &self,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        snapshot: Timestamp,
    ) -> Vec<VisibleRow<'_>> {
        let lo_b = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let hi_b = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        self.rows
            .range((lo_b, hi_b))
            .filter_map(|(key, &head)| {
                self.arena.visible_at(head, snapshot).and_then(|v| {
                    v.row.as_ref().map(|row| VisibleRow {
                        key,
                        row,
                        commit_ts: v.commit_ts,
                        commit_vtime: v.commit_vtime,
                    })
                })
            })
            .collect()
    }

    /// Full scan at a snapshot.
    pub fn scan(&self, snapshot: Timestamp) -> Vec<VisibleRow<'_>> {
        self.range(None, None, snapshot)
    }

    /// Number of distinct keys (live or dead).
    pub fn key_count(&self) -> usize {
        self.rows.len()
    }

    /// Allocator bytes pinned by this table's version arena (see
    /// [`VersionArena::resident_bytes`]); key B-tree overhead excluded.
    pub fn resident_bytes(&self) -> usize {
        self.arena.resident_bytes()
    }

    /// Release reusable memory under pressure (pooled row buffers and
    /// slab slack); visible state is untouched.
    pub fn compact(&mut self) {
        self.arena.compact();
    }

    /// Vacuum all chains up to `horizon`; returns versions removed.
    /// Keeps, per chain, the newest version at or below the horizon plus
    /// everything above it; freed nodes go to the arena freelist.
    pub fn vacuum(&mut self, horizon: Timestamp) -> usize {
        let Table { rows, arena, .. } = self;
        let mut removed = 0;
        for head in rows.values_mut() {
            // Find the keeper: newest node with commit_ts <= horizon.
            let mut keeper = *head;
            while keeper != NIL && arena.nodes[keeper as usize].version.commit_ts > horizon {
                keeper = arena.nodes[keeper as usize].older;
            }
            if keeper == NIL {
                continue;
            }
            // Everything older than the keeper is dead.
            let mut cur = arena.nodes[keeper as usize].older;
            arena.nodes[keeper as usize].older = NIL;
            while cur != NIL {
                let next = arena.nodes[cur as usize].older;
                arena.release(cur);
                removed += 1;
                cur = next;
            }
        }
        // Drop keys whose only remaining version is an old tombstone.
        rows.retain(|_, head| {
            let node = &arena.nodes[*head as usize];
            let drop = node.older == NIL
                && node.version.row.is_none()
                && node.version.commit_ts <= horizon;
            if drop {
                arena.release(*head);
            }
            !drop
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::Datum;

    fn k(v: i64) -> RowKey {
        RowKey::single(v)
    }

    fn r(v: i64, s: &str) -> Row {
        Row(vec![Datum::Int(v), Datum::Text(s.into())])
    }

    fn t(ts: u64) -> Timestamp {
        Timestamp(ts)
    }

    #[test]
    fn snapshot_reads_see_correct_version() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "v1")), t(10), SimTime::from_millis(10))
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "v2")), t(20), SimTime::from_millis(20))
            .unwrap();

        assert!(tbl.read(&k(1), t(5)).is_none(), "before first commit");
        assert_eq!(tbl.read(&k(1), t(10)).unwrap().row, &r(1, "v1"));
        assert_eq!(tbl.read(&k(1), t(15)).unwrap().row, &r(1, "v1"));
        assert_eq!(tbl.read(&k(1), t(20)).unwrap().row, &r(1, "v2"));
        assert_eq!(tbl.read(&k(1), t(99)).unwrap().row, &r(1, "v2"));
    }

    #[test]
    fn tombstones_hide_rows() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), None, t(20), SimTime::ZERO)
            .unwrap();
        assert!(tbl.read(&k(1), t(15)).is_some());
        assert!(tbl.read(&k(1), t(20)).is_none());
        assert!(tbl.read(&k(1), t(25)).is_none());
        assert!(!tbl.exists_newest(&k(1)));
        assert!(tbl.contains_any_version(&k(1)));
    }

    #[test]
    fn out_of_order_install_rejected() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "a")), t(20), SimTime::ZERO)
            .unwrap();
        let err = tbl
            .install_version(k(1), Some(r(1, "b")), t(10), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GdbError::Internal(_)));
    }

    #[test]
    fn equal_timestamps_allowed() {
        // Replays of idempotent records may install at the same ts.
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "a")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "b")), t(10), SimTime::ZERO)
            .unwrap();
        assert_eq!(tbl.read(&k(1), t(10)).unwrap().row, &r(1, "b"));
    }

    #[test]
    fn range_scan_is_key_ordered_and_snapshot_filtered() {
        let mut tbl = Table::new();
        for i in [5i64, 1, 3, 2, 4] {
            tbl.install_version(k(i), Some(r(i, "x")), t(10), SimTime::ZERO)
                .unwrap();
        }
        tbl.install_version(k(6), Some(r(6, "late")), t(50), SimTime::ZERO)
            .unwrap();
        let rows = tbl.range(Some(&k(2)), Some(&k(5)), t(20));
        let keys: Vec<i64> = rows.iter().map(|v| v.key.0[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![2, 3, 4, 5]);
        // Row committed at 50 invisible at snapshot 20, visible at 50.
        assert_eq!(tbl.scan(t(20)).len(), 5);
        assert_eq!(tbl.scan(t(50)).len(), 6);
    }

    #[test]
    fn read_newest_ignores_snapshot() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "old")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), Some(r(1, "new")), t(90), SimTime::ZERO)
            .unwrap();
        assert_eq!(tbl.read_newest(&k(1)).unwrap().row, &r(1, "new"));
    }

    #[test]
    fn vacuum_prunes_dead_versions() {
        let mut tbl = Table::new();
        for ts in [10u64, 20, 30, 40] {
            tbl.install_version(k(1), Some(r(1, "v")), t(ts), SimTime::ZERO)
                .unwrap();
        }
        let removed = tbl.vacuum(t(30));
        assert_eq!(removed, 2); // versions at 10 and 20 removed; 30 kept
        assert_eq!(tbl.read(&k(1), t(30)).unwrap().commit_ts, t(30));
        assert_eq!(tbl.read(&k(1), t(99)).unwrap().commit_ts, t(40));
    }

    #[test]
    fn vacuum_drops_old_tombstoned_keys() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::ZERO)
            .unwrap();
        tbl.install_version(k(1), None, t(20), SimTime::ZERO)
            .unwrap();
        tbl.vacuum(t(50));
        assert_eq!(tbl.key_count(), 0);
    }

    #[test]
    fn compact_reclaims_bytes_without_changing_reads() {
        let mut tbl = Table::new();
        for i in 0..200i64 {
            tbl.install_version(k(i), Some(r(i, "payload")), t(10), SimTime::ZERO)
                .unwrap();
            tbl.install_version(k(i), Some(r(i, "payload2")), t(20), SimTime::ZERO)
                .unwrap();
        }
        // Vacuum frees half the versions into the pool/freelist.
        tbl.vacuum(t(20));
        let before = tbl.resident_bytes();
        let visible: Vec<_> = tbl.scan(t(20)).iter().map(|v| v.row.clone()).collect();
        tbl.compact();
        assert!(
            tbl.resident_bytes() < before,
            "compact did not shrink: {} -> {}",
            before,
            tbl.resident_bytes()
        );
        let after: Vec<_> = tbl.scan(t(20)).iter().map(|v| v.row.clone()).collect();
        assert_eq!(visible, after);
        // The arena still works (freelist intact): install more versions.
        for i in 0..200i64 {
            tbl.install_version(k(i), Some(r(i, "v3")), t(30), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(tbl.read(&k(5), t(30)).unwrap().row, &r(5, "v3"));
    }

    #[test]
    fn commit_vtime_propagates_to_reads() {
        let mut tbl = Table::new();
        tbl.install_version(k(1), Some(r(1, "x")), t(10), SimTime::from_millis(77))
            .unwrap();
        assert_eq!(
            tbl.read(&k(1), t(10)).unwrap().commit_vtime,
            SimTime::from_millis(77)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gdb_model::Datum;
    use proptest::prelude::*;

    proptest! {
        /// Visibility is the newest version with commit_ts <= snapshot —
        /// checked against a naive reference model.
        #[test]
        fn visibility_matches_reference(
            writes in proptest::collection::vec((0i64..5, 1u64..100, any::<bool>()), 1..40),
            snapshot in 0u64..120,
        ) {
            let mut sorted = writes.clone();
            // Install in ts order per key to respect chain ordering.
            sorted.sort_by_key(|(_, ts, _)| *ts);
            let mut tbl = Table::new();
            for (key, ts, delete) in &sorted {
                let row = if *delete { None } else {
                    Some(Row(vec![Datum::Int(*key), Datum::Int(*ts as i64)]))
                };
                tbl.install_version(
                    RowKey::single(*key),
                    row,
                    Timestamp(*ts),
                    SimTime::ZERO,
                ).unwrap();
            }
            // Reference: for each key, last write with ts <= snapshot.
            for key in 0i64..5 {
                let expected = sorted
                    .iter().rfind(|(k, ts, _)| *k == key && *ts <= snapshot)
                    .and_then(|(_, ts, delete)| {
                        if *delete { None } else { Some(*ts as i64) }
                    });
                let got = tbl
                    .read(&RowKey::single(key), Timestamp(snapshot))
                    .map(|v| v.row.0[1].as_int().unwrap());
                prop_assert_eq!(got, expected, "key {}", key);
            }
        }

        /// Vacuum never changes what snapshots at/above the horizon see.
        #[test]
        fn vacuum_preserves_visible_state(
            writes in proptest::collection::vec((0i64..3, 1u64..50), 1..30),
            horizon in 1u64..60,
        ) {
            let mut sorted = writes.clone();
            sorted.sort_by_key(|(_, ts)| *ts);
            let mut tbl = Table::new();
            for (key, ts) in &sorted {
                tbl.install_version(
                    RowKey::single(*key),
                    Some(Row(vec![Datum::Int(*ts as i64)])),
                    Timestamp(*ts),
                    SimTime::ZERO,
                ).unwrap();
            }
            let before: Vec<_> = (horizon..62).map(|s| {
                (0i64..3).map(|k| tbl.read(&RowKey::single(k), Timestamp(s)).map(|v| v.row.clone()))
                    .collect::<Vec<_>>()
            }).collect();
            tbl.vacuum(Timestamp(horizon));
            let after: Vec<_> = (horizon..62).map(|s| {
                (0i64..3).map(|k| tbl.read(&RowKey::single(k), Timestamp(s)).map(|v| v.row.clone()))
                    .collect::<Vec<_>>()
            }).collect();
            prop_assert_eq!(before, after);
        }
    }
}
