//! Online shard migration: snapshot copy → redo catch-up → cutover.
//!
//! Moves a shard's primary from its current data node (the *source*) to a
//! freshly provisioned data node (the *target*) without losing
//! availability: the source keeps serving reads and writes through the
//! snapshot and catch-up phases, and the cutover is a brief DUAL-style
//! barrier — seal the source log, drain the remaining redo into the
//! target synchronously, swap ownership, and atomically bump the cluster
//! **routing epoch**. Requests routed with a stale epoch are rejected
//! with the retryable [`GdbError::StaleRoute`] and re-routed on retry.
//!
//! State machine (one migration in flight at a time):
//!
//! ```text
//! Idle → Snapshot → Catchup → Barrier → Cutover
//!            \          \         \
//!             +----------+---------+--→ Abort (rollback to source)
//! ```
//!
//! Every wire interaction is typed on the message plane —
//! [`RpcKind::MigrateSnapshot`] for the storage image,
//! [`RpcKind::MigrateCatchup`] for redo batches,
//! [`RpcKind::MigrateCutover`] for the barrier round trip and the
//! routing-epoch announcement fan-out to the CNs. A crash of the source
//! or target (or a concurrent promotion replacing the source) at any
//! point aborts the migration and leaves routing/ownership exactly at
//! the source — the target applier is private state until cutover, so
//! abort is a pure drop.
//!
//! The whole run is spanned: a `Migration` root whose
//! `MigrationSnapshot` / `MigrationCatchup` / `MigrationCutover`
//! children tile it exactly (aborts tile up to the abort instant).

use crate::cluster::GlobalDb;
use crate::event::CoreSim;
use crate::net::RpcKind;
use crate::shardlog::ShardLog;
use gdb_model::{GdbError, GdbResult, Timestamp};
use gdb_obs::SpanKind;
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simnet::{NetNodeId, NodeKind, RegionId, SimDuration, SimTime};

/// Metric names owned by the migration executor (consumed by
/// `gdb-rebalance`'s hot-shard detector via the metrics registry).
pub mod metrics {
    /// Migrations started (snapshot phase entered).
    pub const MIGRATIONS_STARTED: &str = "rebalance.migrations_started";
    /// Migrations that reached cutover.
    pub const MIGRATIONS_COMPLETED: &str = "rebalance.migrations_completed";
    /// Migrations aborted mid-flight (ownership stayed at the source).
    pub const MIGRATIONS_ABORTED: &str = "rebalance.migrations_aborted";
    /// Current cluster routing epoch (bumped at every cutover).
    pub const ROUTING_EPOCH: &str = "rebalance.routing_epoch";
    /// Per-shard op counter prefix: `rebalance.shard_ops.<shard>`, plus
    /// the per-region split `rebalance.shard_ops.<shard>.r<region>`.
    pub const SHARD_OPS_PREFIX: &str = "rebalance.shard_ops";
    /// Per-shard payload-byte counter prefix: `rebalance.shard_bytes.<shard>`.
    pub const SHARD_BYTES_PREFIX: &str = "rebalance.shard_bytes";
}

/// Nominal on-wire bytes per stored key for the snapshot-copy estimate.
const SNAPSHOT_ROW_BYTES: u64 = 128;

/// Live per-shard load accounting: every data-node operation a
/// transaction routes to a shard is counted here (and mirrored into the
/// metrics registry at snapshot time), giving the hot-shard detector its
/// input signal.
#[derive(Debug, Default, Clone)]
pub struct ShardLoad {
    /// Data-node operations routed to this shard.
    pub ops: u64,
    /// Payload bytes of those operations.
    pub bytes: u64,
    /// Ops attributed to the submitting CN's region (indexed like
    /// [`GlobalDb::regions`]) — the region-affinity policy's signal.
    pub by_region: Vec<u64>,
}

/// Phase of the in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// The storage image is in flight to the target.
    Snapshot,
    /// Redo batches ship each round until the backlog drains.
    Catchup,
    /// The cutover barrier round trip is in flight; the next event seals,
    /// drains, and swaps ownership.
    Barrier,
}

/// The in-flight migration (at most one cluster-wide).
pub struct Migration {
    pub shard: usize,
    pub source: NetNodeId,
    pub target: NetNodeId,
    pub target_region: RegionId,
    pub phase: MigrationPhase,
    pub started: SimTime,
    /// Set when the snapshot arrived and catch-up began.
    pub snapshot_end: Option<SimTime>,
    /// Set when the backlog drained and the barrier began.
    pub catchup_end: Option<SimTime>,
    /// Catch-up rounds shipped so far.
    pub rounds: u32,
    /// Guard for scheduled events: ticks for a finished/aborted
    /// migration carry a stale sequence number and are dropped.
    pub(crate) seq: u64,
    /// The target's building state: a resumed applier over the source
    /// snapshot, following the source redo stream via its own channel.
    pub(crate) applier: ReplicaApplier,
    pub(crate) channel: ShippingChannel,
    /// FIFO stream cursor for catch-up transmission (a saturated link
    /// queues batches, exactly like replica shipping).
    pub(crate) stream_free: SimTime,
}

/// Start migrating `shard_idx` to a freshly provisioned data node on
/// `(to_region, to_host)` at the current virtual time. Fails (without
/// side effects) when a migration is already in flight or the source is
/// down; once started, watch [`GlobalDb::migration`] /
/// `rebalance.migrations_*` for the outcome.
pub fn start_migration(
    db: &mut GlobalDb,
    sim: &mut CoreSim,
    shard_idx: usize,
    to_region: RegionId,
    to_host: u16,
) -> GdbResult<()> {
    let now = sim.now();
    if shard_idx >= db.shards.len() {
        return Err(GdbError::Internal(format!("no shard {shard_idx}")));
    }
    if let Some(m) = &db.migration {
        return Err(GdbError::Execution(format!(
            "migration of shard {} already in flight",
            m.shard
        )));
    }
    let source = db.shards[shard_idx].primary;
    if db.topo.is_node_down(source) {
        return Err(GdbError::NodeUnavailable(format!(
            "shard {shard_idx} source primary is down"
        )));
    }
    // Provision the target DN. `add_node` draws no RNG, so an idle run
    // (no migration scheduled) stays trace-identical.
    let target = db
        .topo
        .add_node(to_region, to_host, NodeKind::DataNodePrimary);

    // Snapshot cut: seal the *entire* staged log so the stream cut
    // aligns with the storage snapshot (same rule as promote/rejoin —
    // the storage already holds effects of records staged with future
    // apply instants).
    db.shards[shard_idx].log.seal_all(now);
    let head = db.shards[shard_idx].log.sealed_head();
    let shard = &db.shards[shard_idx];
    let max_ts = shard
        .replicas
        .iter()
        .map(|r| r.applier.max_commit_ts())
        .max()
        .unwrap_or(Timestamp::ZERO);
    let applier = ReplicaApplier::resumed(shard.storage.clone(), head, max_ts);
    let mut channel = ShippingChannel::new(db.config.codec);
    channel.rewind(head);

    // Ship the storage image: a 1-byte propagation probe plus explicit
    // transmission time, remaining bytes accounted without a second
    // latency draw (the log-shipping cost model).
    let snapshot_bytes =
        (db.shards[shard_idx].storage.total_keys() as u64).max(1) * SNAPSHOT_ROW_BYTES;
    let Some(propagation) =
        db.plane
            .send(&mut db.topo, RpcKind::MigrateSnapshot, source, target, 1)
    else {
        return Err(GdbError::NodeUnavailable(format!(
            "shard {shard_idx} migration target unreachable"
        )));
    };
    let link = db
        .topo
        .link(db.topo.node_region(source), db.topo.node_region(target));
    let tx = SimDuration::from_secs_f64(
        snapshot_bytes as f64 / link.effective_bandwidth().max(1) as f64,
    );
    db.plane.charge_bytes(
        &mut db.topo,
        RpcKind::MigrateSnapshot,
        source,
        target,
        snapshot_bytes.saturating_sub(1),
    );
    let arrive = now + tx + propagation;

    db.migration_seq += 1;
    let seq = db.migration_seq;
    db.migration = Some(Migration {
        shard: shard_idx,
        source,
        target,
        target_region: to_region,
        phase: MigrationPhase::Snapshot,
        started: now,
        snapshot_end: None,
        catchup_end: None,
        rounds: 0,
        seq,
        applier,
        channel,
        stream_free: arrive,
    });
    db.stats.migrations_started += 1;
    sim.schedule_at(arrive, move |w: &mut GlobalDb, sim| {
        migration_tick(w, sim, seq);
    });
    Ok(())
}

/// One step of the migration state machine (snapshot arrival, a catch-up
/// round, or the cutover barrier elapsing).
pub(crate) fn migration_tick(db: &mut GlobalDb, sim: &mut CoreSim, seq: u64) {
    let now = sim.now();
    // Stale tick for a migration that already finished or aborted.
    if db.migration.as_ref().map(|m| m.seq) != Some(seq) {
        return;
    }
    let m = db.migration.as_ref().unwrap();
    // Fault guards: a dead endpoint — or a promotion that replaced the
    // source under us — aborts the migration. Ownership never moved, so
    // abort is a pure drop of the target-side state.
    let reason = if db.topo.is_node_down(m.source) {
        Some("source down")
    } else if db.topo.is_node_down(m.target) {
        Some("target down")
    } else if db.shards[m.shard].primary != m.source {
        Some("source replaced by failover")
    } else {
        None
    };
    if let Some(reason) = reason {
        abort_migration(db, now, reason);
        return;
    }
    match db.migration.as_ref().unwrap().phase {
        MigrationPhase::Snapshot => {
            let m = db.migration.as_mut().unwrap();
            m.phase = MigrationPhase::Catchup;
            m.snapshot_end = Some(now);
            let interval = db.config.flush_interval;
            sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
                migration_tick(w, sim, seq);
            });
        }
        MigrationPhase::Catchup => catchup_round(db, sim, seq, now),
        MigrationPhase::Barrier => cutover(db, sim, now),
    }
}

/// One catch-up round: seal, drain a batch off the source log, ship it
/// to the target, apply on arrival. Catch-up has converged — and the
/// barrier round trip starts — when the backlog is empty *or* the round
/// shipped nothing but idle heartbeats: every shard log receives a
/// heartbeat record each heartbeat interval, so a cross-region stream
/// whose round spacing exceeds that cadence would otherwise chase the
/// heartbeat tail forever. The residue is handled by the cutover's
/// synchronous final drain either way.
fn catchup_round(db: &mut GlobalDb, sim: &mut CoreSim, seq: u64, now: SimTime) {
    // Take the migration out so the shard log and the migration channel
    // can be borrowed together.
    let mut m = db.migration.take().unwrap();
    db.shards[m.shard].log.seal_upto(now);
    let wire = m.channel.drain(db.shards[m.shard].log.sealed());
    match wire {
        Some(wire) => {
            let Some(propagation) =
                db.plane
                    .send(&mut db.topo, RpcKind::MigrateCatchup, m.source, m.target, 1)
            else {
                db.migration = Some(m);
                abort_migration(db, now, "target unreachable during catch-up");
                return;
            };
            let link = db
                .topo
                .link(db.topo.node_region(m.source), db.topo.node_region(m.target));
            let tx = SimDuration::from_secs_f64(
                wire.wire_bytes as f64 / link.effective_bandwidth().max(1) as f64,
            );
            db.plane.charge_bytes(
                &mut db.topo,
                RpcKind::MigrateCatchup,
                m.source,
                m.target,
                (wire.wire_bytes as u64).saturating_sub(1),
            );
            let start = now.max(m.stream_free);
            m.stream_free = start + tx;
            let arrive = m.stream_free + propagation;
            let caught_up = wire
                .batch
                .records
                .iter()
                .all(|r| matches!(r.payload, gdb_wal::RedoPayload::Heartbeat { .. }));
            // The target applies the batch at its arrival instant; the
            // records carry their own commit timestamps, so applying
            // "in the future" is the same contract as replica replay.
            if let Err(e) = m.applier.apply_batch(&wire.batch.records, arrive) {
                panic!("migration catch-up replay failed (shard {}): {e}", m.shard);
            }
            m.rounds += 1;
            db.migration = Some(m);
            if caught_up {
                // Run the barrier after this last batch lands.
                begin_barrier(db, sim, seq, now, arrive);
            } else {
                let interval = db.config.flush_interval;
                let next = arrive.max(now + interval);
                sim.schedule_at(next, move |w: &mut GlobalDb, sim| {
                    migration_tick(w, sim, seq);
                });
            }
        }
        None => {
            db.migration = Some(m);
            begin_barrier(db, sim, seq, now, now);
        }
    }
}

/// Start the cutover barrier: a round trip that stops admission of new
/// source-side redo (writers keep committing on the source; the final
/// drain at the cutover instant catches them). The barrier begins once
/// the last catch-up batch has landed (`from`).
fn begin_barrier(db: &mut GlobalDb, sim: &mut CoreSim, seq: u64, now: SimTime, from: SimTime) {
    let mut m = db.migration.take().unwrap();
    let Some(rtt) = db
        .plane
        .rtt(&mut db.topo, RpcKind::MigrateCutover, m.source, m.target)
    else {
        db.migration = Some(m);
        abort_migration(db, now, "barrier round trip failed");
        return;
    };
    m.phase = MigrationPhase::Barrier;
    m.catchup_end = Some(now);
    db.migration = Some(m);
    sim.schedule_at(from.max(now) + rtt, move |w: &mut GlobalDb, sim| {
        migration_tick(w, sim, seq);
    });
}

/// The cutover instant: seal the source log, drain the remaining redo
/// into the target synchronously, swap ownership, bump the routing
/// epoch, and announce the new route table to the CNs.
fn cutover(db: &mut GlobalDb, sim: &mut CoreSim, now: SimTime) {
    let mut m = db.migration.take().unwrap();
    // Final drain: everything the source accepted before this instant —
    // including records staged with future apply instants (their commit
    // processing already ran synchronously) — moves to the target.
    db.shards[m.shard].log.seal_all(now);
    while let Some(wire) = m.channel.drain(db.shards[m.shard].log.sealed()) {
        db.plane.charge_bytes(
            &mut db.topo,
            RpcKind::MigrateCutover,
            m.source,
            m.target,
            wire.wire_bytes as u64,
        );
        if let Err(e) = m.applier.apply_batch(&wire.batch.records, now) {
            panic!("migration cutover replay failed (shard {}): {e}", m.shard);
        }
    }

    db.stats.migrations_completed += 1;
    db.last_migration_completed = Some(m.shard);
    record_migration_spans(db, &m, now);

    let codec = db.config.codec;
    let Migration {
        shard: shard_idx,
        target,
        target_region,
        applier,
        ..
    } = m;
    let shard = &mut db.shards[shard_idx];
    // The source's row locks outlive the cutover for the same reason
    // they outlive a promotion: drained records can carry apply instants
    // (and commit timestamps) later than the cutover instant, and only
    // the lock release times make the next writer of such a key wait
    // them out.
    let old_locks = std::mem::take(&mut shard.storage.locks);
    shard.primary = target;
    shard.region = target_region;
    shard.storage = applier.into_storage();
    shard.storage.locks = old_locks;
    shard.log = ShardLog::new();
    // Replicas full-resync from the new primary: fresh applier over a
    // snapshot of its state, fresh channel on the new (empty) redo
    // stream, new incarnation (orphans in-flight deliveries).
    for replica in &mut shard.replicas {
        replica.applier = ReplicaApplier::new(shard.storage.clone());
        replica.channel = ShippingChannel::new(codec);
        replica.busy_until = now;
        replica.stream_free = now;
        replica.last_arrival = now;
        replica.epoch += 1;
    }

    // The atomic routing-epoch bump: this instant is the serialization
    // point between old-route and new-route requests.
    db.routing_epoch += 1;
    let epoch = db.routing_epoch;
    db.shards[shard_idx].owner_epoch = epoch;
    db.rebuild_rcp_groups();

    // Announce the new route table to every CN (real latency; an
    // unreachable CN learns the epoch from its first stale-route
    // reject instead).
    for cn in 0..db.cns.len() {
        let to = db.cns[cn].node;
        if let Some(delay) = db
            .plane
            .send(&mut db.topo, RpcKind::MigrateCutover, target, to, 128)
        {
            sim.schedule_after(delay, move |w: &mut GlobalDb, _sim| {
                let e = &mut w.cns[cn].route_epoch;
                *e = (*e).max(epoch);
            });
        }
    }
}

/// Abort the in-flight migration: drop the target-side state. The
/// source kept ownership throughout, so no shard/routing state changes.
pub(crate) fn abort_migration(db: &mut GlobalDb, now: SimTime, reason: &str) {
    let Some(m) = db.migration.take() else {
        return;
    };
    db.stats.migrations_aborted += 1;
    db.last_migration_aborted = Some((m.shard, reason.to_string()));
    record_migration_spans(db, &m, now);
}

/// Record the migration's span tree: a `Migration` root whose phase
/// children tile `[started, completed]` exactly (aborts tile up to the
/// abort instant).
fn record_migration_spans(db: &mut GlobalDb, m: &Migration, completed: SimTime) {
    let label = m.shard as u64;
    let tracer = &mut db.obs.tracer;
    let root = tracer.record(SpanKind::Migration, label, m.started, completed);
    let snap_end = m.snapshot_end.unwrap_or(completed).min(completed);
    tracer.record_child(
        root,
        SpanKind::MigrationSnapshot,
        label,
        m.started,
        snap_end,
    );
    if m.snapshot_end.is_some() {
        let catch_end = m.catchup_end.unwrap_or(completed).min(completed);
        tracer.record_child(root, SpanKind::MigrationCatchup, label, snap_end, catch_end);
        if m.catchup_end.is_some() {
            tracer.record_child(
                root,
                SpanKind::MigrationCutover,
                label,
                catch_end,
                completed,
            );
        }
    }
}
