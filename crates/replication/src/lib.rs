//! Redo-log replication (paper §II-B, §IV-A, §V-A).
//!
//! Primary data nodes continuously transmit redo records to replica data
//! nodes. This crate implements:
//!
//! * [`ReplicationMode`] — asynchronous (GlobalDB's geo configuration),
//!   synchronous same-city quorum, or synchronous remote quorum (the
//!   baseline that protects against regional disasters at heavy latency
//!   cost — Fig. 6a's baseline).
//! * [`ShippingChannel`] — the per-(primary → replica) sender: batches
//!   pending records, optionally LZ4-compresses them (paper §V-A), and
//!   reports wire sizes for the network cost model.
//! * [`ReplicaApplier`] — the replica-side applier: buffers each
//!   transaction's writes until its COMMIT/ABORT record replays, honours
//!   `PENDING_COMMIT` tuple locks (readers of a locked tuple block until
//!   the outcome replays — the paper's §IV-A safeguard against
//!   out-of-timestamp-order commit records), handles 2PC prepared
//!   transactions, applies DDL, and tracks the max applied commit
//!   timestamp that feeds the RCP calculation.
//! * [`ReplayCostModel`] — parallel-replay timing (the paper replays redo
//!   in parallel to keep replicas fresh).

pub mod channel;
pub mod metrics;
pub mod mode;
pub mod replay;
pub mod replica;

pub use channel::ShippingChannel;
pub use mode::{quorum_wait, ReplicationMode};
pub use replay::ReplayCostModel;
pub use replica::{ReplicaApplier, ReplicaReadResult};
