//! The chaos integration suite: TPC-C under every canned fault plan and
//! a batch of random nemesis schedules, all checked by the invariant
//! oracle; plus determinism (same seed → identical trace) and the
//! collector-crash-mid-RCP-round recovery path.

use gdb_chaos::plan::canned;
use gdb_chaos::{run_nemesis, run_plan, ChaosConfig, PROBE_LATENCY_US};
use globaldb::{Cluster, ReplicationMode, SimDuration};

fn assert_clean(report: &gdb_chaos::ChaosReport) {
    assert!(
        report.ok(),
        "plan {} violated invariants:\n{}",
        report.plan_name,
        report.render()
    );
    assert!(
        report.txns_committed > 0,
        "plan {} made no progress",
        report.plan_name
    );
    assert!(
        report.probe_writes > 0 && report.probe_reads > 0,
        "plan {} ran no probes",
        report.plan_name
    );
}

#[test]
fn tpcc_survives_primary_failover_plan() {
    let report = run_plan(canned::primary_failover(), &ChaosConfig::quick(101));
    assert_clean(&report);
    // The plan both promotes a replica and rejoins the old primary.
    assert!(report.trace.iter().any(|l| l.contains("promote")));
    assert!(report.trace.iter().any(|l| l.contains("rejoin")));
}

#[test]
fn tpcc_survives_partition_and_delay_plan() {
    let report = run_plan(canned::partition_and_delay(), &ChaosConfig::quick(102));
    assert_clean(&report);
    assert!(report.trace.iter().any(|l| l.contains("partition")));
}

#[test]
fn tpcc_survives_gtm_and_collector_plan() {
    let report = run_plan(canned::gtm_and_collector(), &ChaosConfig::quick(103));
    assert_clean(&report);
    assert!(report.trace.iter().any(|l| l.contains("crash-gtm")));
    // Killing a collector CN forces a collector failover at a later round.
    assert!(report.collector_failovers >= 1, "{}", report.render());
}

#[test]
fn tpcc_survives_overlapping_faults_plan() {
    let report = run_plan(canned::overlapping_faults(), &ChaosConfig::quick(104));
    assert_clean(&report);
    // The partition, the delay spike, and the CN crash overlap in time.
    assert!(report.trace.iter().any(|l| l.contains("partition")));
    assert!(report.trace.iter().any(|l| l.contains("delay")));
    assert!(report.trace.iter().any(|l| l.contains("crash-cn")));
}

#[test]
fn tpcc_survives_heavy_overlap_plan() {
    let report = run_plan(canned::heavy_overlap(), &ChaosConfig::quick(105));
    assert_clean(&report);
    // A primary crash, a GTM crash, and a region partition are all
    // outstanding at once, and the heals are interleaved.
    assert!(report.trace.iter().any(|l| l.contains("crash-primary")));
    assert!(report.trace.iter().any(|l| l.contains("crash-gtm")));
    assert!(report.trace.iter().any(|l| l.contains("partition")));
    assert!(report.trace.iter().any(|l| l.contains("promote")));
    // The oracle's probe latencies flow into the metrics snapshot.
    let probes = report
        .metrics
        .histogram(PROBE_LATENCY_US)
        .expect("probe latency histogram missing from report metrics");
    assert!(probes.count > 0, "probe latency histogram is empty");
}

/// Online shard migrations under fire: the first migration's target dies
/// mid-copy (the executor aborts back to the source), a second migration
/// races a delay spike and a primary crash to its cutover — and every
/// oracle invariant (external consistency, RCP monotonicity, strict
/// durability) holds across the routing-epoch bump.
#[test]
fn tpcc_survives_migrate_under_fire_plan() {
    let report = run_plan(canned::migrate_under_fire(), &ChaosConfig::quick(107));
    assert_clean(&report);
    assert!(report.trace.iter().any(|l| l.contains("start-migration")));
    assert!(report
        .trace
        .iter()
        .any(|l| l.contains("crash-migration-target")));
    let c = |n: &str| report.metrics.counter(n).unwrap_or(0);
    assert!(
        c("rebalance.migrations_aborted") >= 1,
        "target crash must abort the first migration:\n{}",
        report.render()
    );
    assert!(
        c("rebalance.migrations_completed") >= 1,
        "second migration must reach its cutover:\n{}",
        report.render()
    );
    assert!(
        c("rebalance.routing_epoch") >= 1,
        "a completed cutover must bump the routing epoch"
    );
}

/// Elastic membership under fire: scale-out, a host drain whose source
/// crashes mid-flight (the member aborts, plan-mates still cut over),
/// and a re-issued drain that empties and retires the host — with a
/// delay spike, an unrelated migration, and a GTM failover in the mix.
#[test]
fn tpcc_survives_elastic_under_fire_plan() {
    let report = run_plan(canned::elastic_under_fire(), &ChaosConfig::quick(108));
    assert_clean(&report);
    assert!(report.trace.iter().any(|l| l.contains("add-node")));
    assert!(report.trace.iter().any(|l| l.contains("remove-node")));
    assert!(report
        .trace
        .iter()
        .any(|l| l.contains("crash-migration-source")));
    let c = |n: &str| report.metrics.counter(n).unwrap_or(0);
    assert!(
        c("rebalance.migrations_aborted") >= 1,
        "the source crash must abort its drain member:\n{}",
        report.render()
    );
    assert!(
        c("rebalance.migrations_completed") >= 2,
        "plan-mates and the re-issued drain must cut over:\n{}",
        report.render()
    );
    assert!(
        c("rebalance.routing_epoch") >= 1,
        "drain cutovers must bump the routing epoch"
    );
}

/// The nemesis's elastic family: seeded random schedules where node
/// adds, host drains, and mid-drain source crashes interleave with
/// every other fault family.
#[test]
fn tpcc_survives_nemesis_seeds_with_elastic() {
    let mut drains = 0usize;
    let mut adds = 0usize;
    for seed in 51..=60u64 {
        let mut cfg = ChaosConfig::quick(seed);
        cfg.duration = SimDuration::from_secs(2);
        cfg.elastic = true;
        let report = run_nemesis(seed, &cfg);
        assert_clean(&report);
        adds += report
            .trace
            .iter()
            .filter(|l| l.contains("fault add-node"))
            .count();
        drains += report
            .trace
            .iter()
            .filter(|l| l.contains("fault remove-node"))
            .count();
    }
    assert!(
        adds > 0 && drains > 0,
        "ten elastic seeds never exercised membership changes (adds={adds}, drains={drains})"
    );
}

/// The nemesis's migration family: seeded random schedules where online
/// shard migrations (and mid-copy target crashes) interleave with every
/// other fault family.
#[test]
fn tpcc_survives_nemesis_seeds_with_migrations() {
    let mut migrations_started = 0u64;
    for seed in 1..=10u64 {
        let mut cfg = ChaosConfig::quick(seed);
        cfg.duration = SimDuration::from_secs(2);
        cfg.migrations = true;
        let report = run_nemesis(seed, &cfg);
        assert_clean(&report);
        migrations_started += report
            .metrics
            .counter("rebalance.migrations_started")
            .unwrap_or(0);
    }
    assert!(
        migrations_started > 0,
        "ten seeds with the migration family never started a migration"
    );
}

/// The heavy-overlap seed sweep: random schedules where GTM crashes and
/// region partitions may land inside another fault's outage window.
#[test]
fn tpcc_survives_heavy_overlap_nemesis_seeds() {
    for seed in 31..=35u64 {
        let mut cfg = ChaosConfig::quick(seed);
        cfg.duration = SimDuration::from_secs(2);
        cfg.overlap = true;
        let report = run_nemesis(seed, &cfg);
        assert_clean(&report);
    }
}

/// Async replication with a primary failover: acknowledged writes may
/// lose at most the shipping-window tail, and the oracle's bounded-loss
/// durability check (rather than the strict one) enforces exactly that.
#[test]
fn async_failover_durability_is_bounded_loss() {
    let mut cfg = ChaosConfig::quick(106);
    cfg.replication = ReplicationMode::Async;
    let report = run_plan(canned::primary_failover(), &cfg);
    assert_clean(&report);
    assert!(report.trace.iter().any(|l| l.contains("promote")));
}

#[test]
fn tpcc_survives_overlapping_nemesis_schedule() {
    let mut cfg = ChaosConfig::quick(23);
    cfg.duration = SimDuration::from_secs(2);
    cfg.overlap = true;
    let report = run_nemesis(23, &cfg);
    assert_clean(&report);
}

#[test]
fn tpcc_survives_ten_random_nemesis_seeds() {
    for seed in 1..=10u64 {
        let mut cfg = ChaosConfig::quick(seed);
        cfg.duration = SimDuration::from_secs(2);
        let report = run_nemesis(seed, &cfg);
        assert_clean(&report);
        assert!(
            report.trace.iter().any(|l| l.contains("fault")),
            "seed {seed} injected nothing:\n{}",
            report.render()
        );
    }
}

#[test]
fn same_seed_replays_identical_trace() {
    let mut cfg = ChaosConfig::quick(42);
    cfg.duration = SimDuration::from_secs(2);
    let a = run_nemesis(42, &cfg);
    let b = run_nemesis(42, &cfg);
    assert_eq!(a.trace, b.trace, "seed 42 did not replay bit-for-bit");
    assert_eq!(a.txns_committed, b.txns_committed);
    assert_eq!(a.probe_writes, b.probe_writes);
    assert_eq!(a.violations, b.violations);

    let mut cfg3 = ChaosConfig::quick(43);
    cfg3.duration = SimDuration::from_secs(2);
    let c = run_nemesis(43, &cfg3);
    assert_ne!(a.trace, c.trace, "different seeds produced the same trace");
}

/// A collector CN dying between the gather and distribute phases of an
/// RCP round: the round is abandoned (counted, RCP untouched) and the
/// next round elects a new collector and completes.
#[test]
fn collector_crash_mid_rcp_round_abandons_then_fails_over() {
    let cfg = ChaosConfig::quick(7);
    let mut cluster = Cluster::new(cfg.cluster_config());
    // Give replicas some applied state so rounds report real timestamps.
    cluster
        .ddl("CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)")
        .unwrap();
    let ins = cluster.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
    for k in 0..8 {
        let at = cluster.now();
        cluster
            .run_transaction(0, at, false, true, |t| {
                t.execute(&ins, &[globaldb::Datum::Int(k), globaldb::Datum::Int(k)])
            })
            .unwrap();
    }
    // Let replication and a few background RCP rounds land.
    let now = cluster.now();
    cluster.run_until(now + SimDuration::from_millis(500));

    let db = &mut cluster.db;
    let rounds_before = db.stats().rcp_rounds;
    let abandoned_before = db.stats().rcp_rounds_abandoned;
    let rcps_before: Vec<_> = db.cns().iter().map(|c| c.rcp).collect();

    // Phase 1 gathers on the collector, which then dies mid-round.
    let now = cluster.sim.now();
    let collector = db.rcp_collect(0, now).expect("region 0 has a collector");
    db.crash_cn(collector);
    db.rcp_finish(0, collector, now);

    assert_eq!(db.stats().rcp_rounds_abandoned, abandoned_before + 1);
    assert_eq!(
        db.stats().rcp_rounds,
        rounds_before,
        "abandoned round counted as complete"
    );
    for (i, cn) in db.cns().iter().enumerate() {
        assert!(
            cn.rcp >= rcps_before[i],
            "RCP moved backwards on CN {i} across an abandoned round"
        );
    }

    // The next round elects a fresh collector and completes.
    let failovers_before = db.stats().collector_failovers;
    let new_collector = db.rcp_collect(0, now).expect("a standby CN takes over");
    assert_ne!(new_collector, collector, "dead collector re-elected");
    db.rcp_finish(0, new_collector, now);
    assert!(db.stats().collector_failovers > failovers_before);
    assert_eq!(db.stats().rcp_rounds, rounds_before + 1);
    for (i, cn) in db.cns().iter().enumerate() {
        assert!(cn.rcp >= rcps_before[i]);
    }
}
