//! End-to-end rebalancing: a skewed workload makes the detector propose
//! a migration, the migration completes without losing availability,
//! and the post-cutover load spread strictly improves. Plus the abort
//! path: a target crash mid-migration leaves routing and ownership
//! exactly at the source.

use gdb_rebalance::{drain_host, HotShardDetector, LegacyController, RebalanceController};
use gdb_simnet::RegionId;
use globaldb::{Cluster, ClusterConfig, Datum, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// One-region cluster with a hash table and the keys grouped by shard.
fn setup() -> (Cluster, Vec<Vec<i64>>) {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..120i64)
            .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Int(0)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(t(300));
    let schema = c.db.catalog().table(table).unwrap().clone();
    let shard_count = c.db.shards().len();
    let mut by_shard = vec![Vec::new(); shard_count];
    for k in 0..120i64 {
        let s = schema
            .shard_of_pk(&gdb_model::RowKey::single(k), shard_count as u16)
            .0 as usize;
        by_shard[s].push(k);
    }
    (c, by_shard)
}

/// Run `n` single-shard point reads of `keys` (cycled), round-robin over
/// the CNs, starting at `at` with 1ms spacing. Returns the next free
/// instant.
fn read_window(c: &mut Cluster, keys: &[i64], n: usize, mut at: SimTime) -> SimTime {
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    for i in 0..n {
        let key = keys[i % keys.len()];
        let cn = i % 3;
        at = at.max(c.now()) + gdb_simnet::SimDuration::from_millis(1);
        c.run_transaction(cn, at, true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(key)]).map(|_| ())
        })
        .unwrap();
    }
    at
}

#[test]
fn skewed_load_triggers_migration_and_improves_spread() {
    let (mut c, by_shard) = setup();
    // Heat shard 0 and (less) its co-hosted shard 3, so moving shard 0
    // off their shared host strictly lowers the hottest host's load.
    let host_of = |c: &Cluster, s: usize| c.db.topo().node_host(c.db.shards()[s].primary);
    assert_eq!(
        host_of(&c, 0),
        host_of(&c, 3),
        "layout: shards 0 and 3 co-hosted"
    );
    let source_host = host_of(&c, 0);

    let mut probe = HotShardDetector::new();
    probe.observe(&mut c.db); // baseline: discard startup traffic

    let at = read_window(&mut c, &by_shard[0].clone(), 200, t(310));
    let at = read_window(&mut c, &by_shard[3].clone(), 80, at);
    let skewed_view = probe.observe(&mut c.db);
    let spread_before = skewed_view.spread();
    assert!(
        spread_before > 1.5,
        "window must look imbalanced, got {spread_before}"
    );

    // The controller sees the same counters and starts a migration of
    // the hot shard.
    let mut controller = RebalanceController::new();
    let batch = controller.tick(&mut c);
    assert!(!batch.is_empty(), "skew must trigger a migration");
    let proposal = batch[0].clone();
    assert_eq!(
        proposal.shard, 0,
        "hot shard is the one proposed: {}",
        proposal.reason
    );
    assert!(
        proposal.cost_after < proposal.cost_before,
        "accepted moves strictly reduce cost"
    );
    assert_ne!(proposal.to.host, source_host, "must leave the hot host");
    assert!(c.migration_in_flight().is_some());
    // A second tick while the plan is in flight must not start another.
    assert!(controller.tick(&mut c).is_empty());

    // Keep writing the hot keys while the migration runs: the source
    // stays available through snapshot/catch-up, and any post-cutover
    // stale-epoch reject is retryable (never a hard failure).
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let hot = by_shard[0].clone();
    let mut at = at;
    let mut stale_retries = 0u32;
    for i in 0..200 {
        let key = hot[i % hot.len()];
        at = at.max(c.now()) + gdb_simnet::SimDuration::from_millis(2);
        let run = |c: &mut Cluster, at: SimTime| {
            c.run_transaction(0, at, false, true, |txn| {
                txn.execute(&upd, &[Datum::Int(i as i64), Datum::Int(key)])
                    .map(|_| ())
            })
        };
        match run(&mut c, at) {
            Ok(_) => {}
            Err(e) if e.is_retryable() => {
                stale_retries += 1;
                let retry_at = at + gdb_simnet::SimDuration::from_millis(1);
                run(&mut c, retry_at).expect("retry after re-route must succeed");
            }
            Err(e) => panic!("non-retryable failure during migration: {e}"),
        }
        if c.db.last_migration_completed().is_some() {
            break;
        }
    }
    c.run_until(c.now() + gdb_simnet::SimDuration::from_secs(2));
    assert_eq!(
        c.db.last_migration_completed(),
        Some(0),
        "migration must complete"
    );
    assert!(c.migration_in_flight().is_none());
    assert_eq!(c.db.routing_epoch(), 1);
    assert_eq!(c.db.shards()[0].owner_epoch, 1);
    assert_eq!(
        host_of(&c, 0),
        proposal.to.host,
        "primary landed on the target"
    );
    assert_eq!(c.db.stats().migrations_completed, 1);
    assert_eq!(c.db.stats().migrations_aborted, 0);
    let _ = stale_retries; // informational: may be 0 if no write hit the announce window

    // Read-your-writes across the cutover: the migrated primary serves
    // the latest committed value.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let key = hot[0];
    let at2 = c.now() + gdb_simnet::SimDuration::from_millis(5);
    let ((), _) = c
        .run_transaction(0, at2, true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(key)])?;
            assert!(!out.rows().is_empty(), "migrated shard must serve the row");
            Ok(())
        })
        .unwrap();

    // Same skewed window against the new placement: the spread strictly
    // improves because the hot shard no longer shares a host with the
    // warm one.
    probe.observe(&mut c.db); // reset the window past the migration traffic
    let start = c.now() + gdb_simnet::SimDuration::from_millis(1);
    let at3 = read_window(&mut c, &by_shard[0].clone(), 200, start);
    read_window(&mut c, &by_shard[3].clone(), 80, at3);
    let spread_after = probe.observe(&mut c.db).spread();
    assert!(
        spread_after < spread_before,
        "post-cutover spread must strictly improve: {spread_after} !< {spread_before}"
    );
}

#[test]
fn target_crash_mid_migration_aborts_and_leaves_source_owner() {
    let (mut c, by_shard) = setup();
    let source = c.db.shards()[0].primary;
    let source_host = c.db.topo().node_host(source);
    let to_host = (source_host + 1) % 3;
    c.start_migration(0, RegionId(0), to_host).unwrap();
    let target = c.db.migration().unwrap().target;

    // Keep writing the shard so catch-up always has sealed redo to
    // drain (the migration can't reach the barrier), then kill the
    // target mid-catch-up.
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let keys = by_shard[0].clone();
    let mut at = c.now();
    for i in 0..10i64 {
        let key = keys[i as usize % keys.len()];
        at = at.max(c.now()) + gdb_simnet::SimDuration::from_millis(1);
        c.run_transaction(0, at, false, true, |txn| {
            txn.execute(&upd, &[Datum::Int(i), Datum::Int(key)])
                .map(|_| ())
        })
        .unwrap();
    }
    assert!(c.migration_in_flight().is_some(), "must still be migrating");
    c.db.topo_mut().set_node_down(target, true);
    c.run_until(at + gdb_simnet::SimDuration::from_secs(1));

    let (shard, reason) =
        c.db.last_migration_aborted()
            .expect("migration must abort")
            .clone();
    assert_eq!(shard, 0);
    assert!(
        reason.contains("target"),
        "abort reason names the target: {reason}"
    );
    assert!(c.migration_in_flight().is_none());
    // Ownership and routing are exactly as before the migration.
    assert_eq!(c.db.shards()[0].primary, source);
    assert_eq!(c.db.shards()[0].owner_epoch, 0);
    assert_eq!(c.db.routing_epoch(), 0);
    assert_eq!(c.db.stats().migrations_aborted, 1);
    assert_eq!(c.db.stats().migrations_completed, 0);

    // The source keeps serving reads and writes.
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let key = by_shard[0][0];
    let at2 = c.now() + gdb_simnet::SimDuration::from_millis(5);
    c.run_transaction(0, at2, false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(7), Datum::Int(key)])
            .map(|_| ())
    })
    .expect("source must keep accepting writes after an abort");
}

#[test]
fn balanced_load_keeps_the_controller_idle() {
    let (mut c, _) = setup();
    let mut controller = RebalanceController::new();
    // Uniform traffic over every key: nothing to do.
    let keys: Vec<i64> = (0..120).collect();
    read_window(&mut c, &keys, 240, t(310));
    assert!(controller.tick(&mut c).is_empty());
    assert_eq!(c.db.stats().migrations_started, 0);
    assert_eq!(c.db.routing_epoch(), 0);
}

/// The frozen PR 4 chain still drives a migration end-to-end on the
/// same skewed window the cost model acts on — the differential
/// reference stays executable, not just compilable.
#[test]
fn legacy_chain_still_drives_migration() {
    let (mut c, by_shard) = setup();
    let mut legacy = LegacyController::new();
    legacy.detector.observe(&mut c.db); // discard startup traffic
    let at = read_window(&mut c, &by_shard[0].clone(), 200, t(310));
    read_window(&mut c, &by_shard[3].clone(), 80, at);
    let proposal = legacy.tick(&mut c).expect("legacy chain must propose");
    assert_eq!(proposal.shard, 0);
    assert!(c.migration_in_flight().is_some());
    c.run_until(c.now() + gdb_simnet::SimDuration::from_secs(2));
    assert_eq!(c.db.last_migration_completed(), Some(0));
    assert_eq!(legacy.history.len(), 1);
}

/// Elastic scale-in: drain a host onto the rest of the cluster (plus a
/// freshly joined spare), watch its data nodes retire, and verify every
/// shard keeps serving.
#[test]
fn drain_host_empties_and_retires_it() {
    let (mut c, by_shard) = setup();
    let epoch_before = c.db.routing_epoch();
    c.db.join_data_node(RegionId(0), 3);
    let (primaries, replicas) = c.db.host_placements(RegionId(0), 2);
    let expected_moves = primaries.len() + replicas.len();
    assert!(expected_moves > 0, "host 2 must start populated");

    let started = drain_host(&mut c.db, &mut c.sim, RegionId(0), 2).unwrap();
    assert_eq!(started, expected_moves, "one drain plan moves everything");
    c.run_until(c.now() + gdb_simnet::SimDuration::from_secs(3));

    // The host emptied, its data nodes retired, and the drain list is
    // clean again.
    let (p_after, r_after) = c.db.host_placements(RegionId(0), 2);
    assert!(
        p_after.is_empty() && r_after.is_empty(),
        "host 2 must empty"
    );
    assert!(c.db.draining_hosts().is_empty());
    assert_eq!(c.db.last_host_retired(), Some((RegionId(0), 2)));
    assert_eq!(c.db.retired_hosts(), &[(RegionId(0), 2)]);
    // One batched plan, one routing-epoch bump (it moved >= 1 primary).
    assert_eq!(c.db.routing_epoch(), epoch_before + 1);
    assert_eq!(c.db.stats().migrations_completed as usize, expected_moves);
    assert_eq!(c.db.stats().migrations_aborted, 0);

    // Every shard still serves its keys after the shuffle.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let mut at = c.now() + gdb_simnet::SimDuration::from_millis(5);
    for keys in &by_shard {
        let key = keys[0];
        at = at.max(c.now()) + gdb_simnet::SimDuration::from_millis(1);
        c.run_transaction(0, at, true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(key)])?;
            assert!(!out.rows().is_empty(), "drained shard must serve key {key}");
            Ok(())
        })
        .unwrap();
    }

    // A second drain of the same (now empty, retired) host is a no-op.
    let again = drain_host(&mut c.db, &mut c.sim, RegionId(0), 2).unwrap();
    assert_eq!(again, 0);
}
