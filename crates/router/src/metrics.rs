//! Metric names owned by the read-on-replica router.

/// Reads served by a replica.
pub const READS_ON_REPLICA: &str = "router.reads_on_replica";
/// Reads served by the primary.
pub const READS_ON_PRIMARY: &str = "router.reads_on_primary";
/// ROR reads that fell back to the primary because the chosen replica
/// was blocked on a PENDING_COMMIT lock.
pub const REPLICA_BLOCKED_FALLBACKS: &str = "router.replica_blocked_fallbacks";
/// Skyline evaluations (one per routed read).
pub const SKYLINE_SELECTIONS: &str = "router.skyline.selections";
/// Skyline evaluations whose pick differed from the previous pick for
/// the same (CN, shard) — each of these is also recorded as a
/// `skyline_reselect` trace span.
pub const SKYLINE_RESELECTIONS: &str = "router.skyline.reselections";
/// Requests rejected because the submitting CN's cached route table
/// carried a stale routing epoch (the shard migrated under it). The
/// reject is retryable; the retry re-routes at the fresh epoch.
pub const STALE_ROUTE_REJECTS: &str = "router.stale_route_rejects";

use gdb_obs::{CounterId, MetricsRegistry};

/// Pre-registered handles for the per-routed-read hot path (one skyline
/// evaluation per replica-eligible read; the remaining router counters
/// are mirrored from `ClusterStats` at snapshot time).
#[derive(Debug, Clone, Copy)]
pub struct RouterHandles {
    pub skyline_selections: CounterId,
    pub skyline_reselections: CounterId,
}

impl RouterHandles {
    pub fn register(m: &mut MetricsRegistry) -> Self {
        RouterHandles {
            skyline_selections: m.register_counter(SKYLINE_SELECTIONS),
            skyline_reselections: m.register_counter(SKYLINE_RESELECTIONS),
        }
    }
}
