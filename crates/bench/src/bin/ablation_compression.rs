//! Ablation — LZ4 redo-log compression (paper §V-A).
//!
//! GlobalDB compresses redo batches before shipping them across regions.
//! This ablation compares cross-region shipped bytes, replica freshness,
//! and TPC-C throughput with the codec on and off, on the Three-City
//! cluster with reduced WAN bandwidth (where shipping is the bottleneck).
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_compression`

use gdb_bench::{print_table, rcp_lag_ms, tpcc_run, BenchParams};
use gdb_workloads::tpcc::TpccMix;
use globaldb::{ClusterConfig, Codec, Geometry};

fn main() {
    let params = BenchParams::from_env();
    let mut rows = Vec::new();
    for (label, codec) in [("no compression", Codec::None), ("LZ4", Codec::Lz4)] {
        let config = ClusterConfig {
            codec,
            geometry: Geometry::ThreeCity {
                tuned: true,
                bandwidth_mbps: 2, // constrained WAN: raw shipping saturates
            },
            ..ClusterConfig::globaldb_three_city()
        };
        let (cluster, report) = tpcc_run(config, &params, TpccMix::standard(), |wl| {
            wl.set_all_local();
        });
        let shipped: u64 = cluster
            .db
            .shards()
            .iter()
            .flat_map(|s| s.replicas.iter())
            .map(|r| r.channel.stats.wire_bytes)
            .sum();
        let ratio: f64 = {
            let (raw, wire) = cluster
                .db
                .shards()
                .iter()
                .flat_map(|s| s.replicas.iter())
                .fold((0u64, 0u64), |(r, w), rep| {
                    (
                        r + rep.channel.stats.raw_bytes,
                        w + rep.channel.stats.wire_bytes,
                    )
                });
            if wire == 0 {
                1.0
            } else {
                raw as f64 / wire as f64
            }
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", report.tpmc()),
            format!("{:.1} MB", shipped as f64 / 1e6),
            format!("{ratio:.2}x"),
            format!("{:.1} ms", rcp_lag_ms(&cluster)),
        ]);
    }
    print_table(
        "Ablation — redo log compression on constrained WAN (2 Mb/s)",
        &[
            "codec",
            "tpmC (sim)",
            "cross-region bytes",
            "compression",
            "RCP lag",
        ],
        &rows,
    );
    println!("Expected: LZ4 cuts shipped bytes multiple-fold and keeps replicas fresher.");
}
