//! The per-primary redo append buffer, shipping batches, and the
//! group-commit segment writer.
//!
//! A primary appends [`RedoRecord`]s to its [`RedoBuffer`]; the replication
//! sender drains pending records into [`LogBatch`]es (the unit shipped over
//! the network). The buffer retains all records so a newly attached or
//! recovering replica can be caught up from any LSN. Durability is modelled
//! by [`GroupCommitWal`]: framed records accumulate in a segment, and a
//! *sync* (the fsync-equivalent) re-checksums the partial tail page plus
//! everything not yet durable — so syncing per transaction pays the
//! page-rewrite cost per transaction, while a group-commit window
//! amortizes one sync across the whole batch.

use crate::crc::crc32;
use crate::record::{
    encode_record_into, encode_record_parts, EncodeScratch, Lsn, RedoPayload, RedoPayloadRef,
    RedoRecord,
};
use gdb_model::TxnId;

/// A contiguous run of redo records drained for shipping.
#[derive(Debug, Clone, PartialEq)]
pub struct LogBatch {
    /// LSN of the first record in the batch.
    pub first_lsn: Lsn,
    /// The records, in LSN order.
    pub records: Vec<RedoRecord>,
}

impl LogBatch {
    /// Encode the whole batch to wire bytes (framed records, CRC each).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.records.len() * 48);
        let mut scratch = EncodeScratch::default();
        self.encode_into(&mut scratch, &mut out);
        out
    }

    /// [`LogBatch::encode`] into caller-owned buffers: `out` receives the
    /// framed records (appended), `scratch` stages record bodies. With
    /// reused buffers the encode is allocation-free at steady state.
    pub fn encode_into(&self, scratch: &mut EncodeScratch, out: &mut Vec<u8>) {
        for r in &self.records {
            encode_record_into(scratch, out, r);
        }
    }

    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map(|r| r.lsn).unwrap_or(self.first_lsn)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Append buffer for one primary data node's redo stream.
///
/// Records below `base` have been trimmed ([`RedoBuffer::trim_to`]): every
/// durable consumer (replica appliers, in-flight migration catch-ups) had
/// already advanced past them, so they can never be re-requested. LSNs are
/// stable — trimming shifts storage, never numbering.
#[derive(Debug, Default)]
pub struct RedoBuffer {
    records: Vec<RedoRecord>,
    next_lsn: u64,
    /// LSN of `records[0]`; everything below was trimmed.
    base: u64,
}

impl RedoBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a payload, assigning the next LSN. Returns the record's LSN.
    pub fn append(&mut self, txn: TxnId, payload: RedoPayload) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        self.records.push(RedoRecord { lsn, txn, payload });
        lsn
    }

    /// Total records ever appended (trimmed records still count).
    pub fn len(&self) -> usize {
        self.base as usize + self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.base == 0 && self.records.is_empty()
    }

    /// The LSN the next append will receive.
    pub fn head_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// Lowest LSN still resident (everything below was trimmed).
    pub fn base_lsn(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Records still resident (not trimmed).
    pub fn resident_len(&self) -> usize {
        self.records.len()
    }

    /// Records in `[from, from + max)` as a shipping batch; empty batch if
    /// `from` is at the head. Requesting below the trim floor is a caller
    /// bug (the floor is the min over all consumer cursors).
    pub fn batch_from(&self, from: Lsn, max: usize) -> LogBatch {
        debug_assert!(
            from.0 >= self.base,
            "batch_from({from:?}) below trim floor {}",
            self.base
        );
        let records = match from.0.checked_sub(self.base) {
            Some(off) if (off as usize) < self.records.len() => {
                let start = off as usize;
                let end = (start + max).min(self.records.len());
                self.records[start..end].to_vec()
            }
            _ => Vec::new(),
        };
        LogBatch {
            first_lsn: from,
            records,
        }
    }

    /// Read a single record (testing / recovery). `None` if unappended
    /// *or* already trimmed.
    pub fn get(&self, lsn: Lsn) -> Option<&RedoRecord> {
        let off = lsn.0.checked_sub(self.base)?;
        self.records.get(off as usize)
    }

    /// Iterate over all resident records (in LSN order).
    pub fn iter(&self) -> impl Iterator<Item = &RedoRecord> {
        self.records.iter()
    }

    /// Drop every record below `floor` (exclusive), reclaiming memory.
    /// The caller must guarantee no consumer will ever request an LSN
    /// below `floor` again — in the cluster this is the min resume point
    /// over all replica appliers and in-flight migrations. Returns the
    /// number of records dropped.
    pub fn trim_to(&mut self, floor: Lsn) -> usize {
        let cut = floor
            .0
            .saturating_sub(self.base)
            .min(self.records.len() as u64) as usize;
        if cut == 0 {
            return 0;
        }
        self.records.drain(..cut);
        self.base += cut as u64;
        cut
    }
}

/// Durable-page granularity of the modelled WAL device: a sync rewrites
/// the partial tail page it lands in (torn-page protection), so small
/// per-transaction syncs pay up to this much write amplification.
pub const SYNC_PAGE: usize = 4096;

/// Group-commit segment writer: the WAL flush path's durability model.
///
/// Records are framed (`encode_record` layout, one CRC per record) into
/// an in-memory segment standing in for the WAL file. [`Self::commit`]
/// marks a transaction boundary; once `window` transactions are pending
/// — or [`Self::sync`] is called explicitly — the fsync-equivalent runs:
/// every byte since the last durable page boundary is re-checksummed and
/// the durable watermark advances to the segment head.
///
/// The cost model is deliberately honest about *why* group commit wins:
/// a sync's work is `segment_head - page_floor(durable)` bytes, so N
/// transactions synced individually each re-walk the partial tail page
/// (up to [`SYNC_PAGE`] bytes), while one window-of-N sync walks the
/// batch once. The durable bytes are exactly the concatenation of the
/// single-record frames — batching changes *when* the sync happens,
/// never the bytes — which is what the framing property tests pin down.
#[derive(Debug)]
pub struct GroupCommitWal {
    segment: Vec<u8>,
    synced_len: usize,
    scratch: EncodeScratch,
    window: usize,
    pending_txns: usize,
    tail_crc: u32,
    /// Fsync-equivalents performed.
    pub fsyncs: u64,
    /// Transaction boundaries made durable.
    pub synced_txns: u64,
}

impl GroupCommitWal {
    /// A writer that syncs after every transaction boundary — the
    /// frozen pre-group-commit behavior.
    pub fn per_txn() -> Self {
        Self::with_window(1)
    }

    /// A writer that syncs once per `window` transaction boundaries
    /// (`usize::MAX` = only explicit [`Self::sync`] calls).
    pub fn with_window(window: usize) -> Self {
        GroupCommitWal {
            segment: Vec::new(),
            synced_len: 0,
            scratch: EncodeScratch::default(),
            window: window.max(1),
            pending_txns: 0,
            tail_crc: 0,
            fsyncs: 0,
            synced_txns: 0,
        }
    }

    /// Frame `rec` into the segment (not yet durable).
    pub fn append(&mut self, rec: &RedoRecord) {
        encode_record_into(&mut self.scratch, &mut self.segment, rec);
    }

    /// Frame a record from borrowed parts (the zero-copy write path).
    pub fn append_parts(&mut self, lsn: Lsn, txn: TxnId, payload: RedoPayloadRef<'_>) {
        encode_record_parts(&mut self.scratch, &mut self.segment, lsn, txn, payload);
    }

    /// Mark a transaction boundary; syncs when the window fills.
    /// Returns true if this boundary triggered a sync.
    pub fn commit(&mut self) -> bool {
        self.pending_txns += 1;
        if self.pending_txns >= self.window {
            self.sync();
            true
        } else {
            false
        }
    }

    /// The fsync-equivalent: re-checksum from the last durable page
    /// boundary through the segment head and advance the watermark.
    pub fn sync(&mut self) {
        if self.pending_txns == 0 && self.synced_len == self.segment.len() {
            return;
        }
        self.fsyncs += 1;
        self.synced_txns += self.pending_txns as u64;
        self.pending_txns = 0;
        let page_floor = self.synced_len - (self.synced_len % SYNC_PAGE);
        self.tail_crc = crc32(&self.segment[page_floor..]);
        self.synced_len = self.segment.len();
    }

    /// All framed bytes, durable or not.
    pub fn segment(&self) -> &[u8] {
        &self.segment
    }

    /// The durable prefix of the segment.
    pub fn durable(&self) -> &[u8] {
        &self.segment[..self.synced_len]
    }

    /// Bytes appended but not yet covered by a sync.
    pub fn unsynced_bytes(&self) -> usize {
        self.segment.len() - self.synced_len
    }

    /// Checksum written by the last sync (recovery would use it to
    /// detect a torn tail page).
    pub fn tail_crc(&self) -> u32 {
        self.tail_crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode_all, encode_record};
    use gdb_model::Timestamp;

    fn commit(ts: u64) -> RedoPayload {
        RedoPayload::Commit {
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn appends_assign_sequential_lsns() {
        let mut buf = RedoBuffer::new();
        assert_eq!(buf.append(TxnId(1), RedoPayload::PendingCommit), Lsn(0));
        assert_eq!(buf.append(TxnId(1), commit(10)), Lsn(1));
        assert_eq!(buf.append(TxnId(2), commit(11)), Lsn(2));
        assert_eq!(buf.head_lsn(), Lsn(3));
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn batches_are_contiguous_and_bounded() {
        let mut buf = RedoBuffer::new();
        for i in 0..10 {
            buf.append(TxnId(i), commit(i));
        }
        let b1 = buf.batch_from(Lsn(0), 4);
        assert_eq!(b1.first_lsn, Lsn(0));
        assert_eq!(b1.len(), 4);
        assert_eq!(b1.last_lsn(), Lsn(3));
        let b2 = buf.batch_from(Lsn(4), 100);
        assert_eq!(b2.len(), 6);
        assert_eq!(b2.last_lsn(), Lsn(9));
        let empty = buf.batch_from(Lsn(10), 5);
        assert!(empty.is_empty());
        assert_eq!(empty.last_lsn(), Lsn(10));
    }

    #[test]
    fn batch_encode_decode_roundtrip() {
        let mut buf = RedoBuffer::new();
        for i in 0..5 {
            buf.append(TxnId(i), commit(100 + i));
        }
        let batch = buf.batch_from(Lsn(0), 5);
        let wire = batch.encode();
        let decoded = decode_all(&wire).unwrap();
        assert_eq!(decoded, batch.records);
    }

    #[test]
    fn get_by_lsn() {
        let mut buf = RedoBuffer::new();
        buf.append(TxnId(9), RedoPayload::Abort);
        assert_eq!(buf.get(Lsn(0)).unwrap().txn, TxnId(9));
        assert!(buf.get(Lsn(1)).is_none());
    }

    #[test]
    fn trim_preserves_lsns_and_totals() {
        let mut buf = RedoBuffer::new();
        for i in 0..10 {
            buf.append(TxnId(i), commit(i));
        }
        assert_eq!(buf.trim_to(Lsn(4)), 4);
        // LSN numbering and "total ever appended" are unchanged.
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.resident_len(), 6);
        assert_eq!(buf.base_lsn(), Lsn(4));
        assert_eq!(buf.head_lsn(), Lsn(10));
        assert!(buf.get(Lsn(3)).is_none());
        assert_eq!(buf.get(Lsn(4)).unwrap().lsn, Lsn(4));
        // Batches above the floor are identical to the untrimmed view.
        let b = buf.batch_from(Lsn(6), 3);
        assert_eq!(b.first_lsn, Lsn(6));
        assert_eq!(b.last_lsn(), Lsn(8));
        // Appends keep numbering from the head.
        assert_eq!(buf.append(TxnId(99), commit(99)), Lsn(10));
        // Re-trimming below the floor is a no-op.
        assert_eq!(buf.trim_to(Lsn(2)), 0);
        assert_eq!(buf.trim_to(Lsn(4)), 0);
        // Trimming past the head clamps to resident records.
        assert_eq!(buf.trim_to(Lsn(1000)), 7);
        assert!(buf.batch_from(Lsn(11), 5).is_empty());
    }

    fn sample_records(n: u64) -> Vec<RedoRecord> {
        use gdb_model::{Datum, Row, RowKey, TableId};
        (0..n)
            .map(|i| RedoRecord {
                lsn: Lsn(i),
                txn: TxnId(i / 3),
                payload: match i % 3 {
                    0 => RedoPayload::Insert {
                        table: TableId(1),
                        key: RowKey::single(i as i64),
                        row: Row(vec![Datum::Int(i as i64), Datum::Text(format!("r{i}"))]),
                    },
                    1 => RedoPayload::PendingCommit,
                    _ => RedoPayload::Commit {
                        commit_ts: Timestamp(100 + i),
                    },
                },
            })
            .collect()
    }

    #[test]
    fn group_window_bytes_equal_singles() {
        // One window of N transactions must lay down exactly the bytes
        // N individually-synced transactions would: batching moves the
        // sync, never the data.
        let recs = sample_records(30);
        let mut grouped = GroupCommitWal::with_window(10);
        let mut singles = GroupCommitWal::per_txn();
        let mut concat = Vec::new();
        for r in &recs {
            grouped.append(r);
            singles.append(r);
            encode_record(&mut concat, r);
            if matches!(r.payload, RedoPayload::Commit { .. }) {
                grouped.commit();
                singles.commit();
            }
        }
        grouped.sync();
        singles.sync();
        assert_eq!(grouped.segment(), singles.segment());
        assert_eq!(grouped.segment(), &concat[..]);
        assert_eq!(decode_all(grouped.segment()).unwrap(), recs);
        // 10 txn boundaries: 1 grouped sync vs 10 per-txn syncs.
        assert_eq!(grouped.fsyncs, 1);
        assert_eq!(singles.fsyncs, 10);
        assert_eq!(grouped.synced_txns, 10);
        assert_eq!(singles.synced_txns, 10);
    }

    #[test]
    fn append_parts_matches_owned_append() {
        let recs = sample_records(12);
        let mut owned = GroupCommitWal::with_window(4);
        let mut parts = GroupCommitWal::with_window(4);
        for r in &recs {
            owned.append(r);
            parts.append_parts(r.lsn, r.txn, r.payload.as_view());
        }
        owned.sync();
        parts.sync();
        assert_eq!(owned.segment(), parts.segment());
    }

    #[test]
    fn sync_accounting_and_tail_crc() {
        let recs = sample_records(6);
        let mut wal = GroupCommitWal::with_window(2);
        for r in &recs[..3] {
            wal.append(r);
        }
        assert_eq!(wal.fsyncs, 0);
        assert_eq!(wal.unsynced_bytes(), wal.segment().len());
        assert!(!wal.commit(), "first boundary below window");
        assert!(wal.commit(), "second boundary fills the window");
        assert_eq!(wal.fsyncs, 1);
        assert_eq!(wal.unsynced_bytes(), 0);
        assert_eq!(wal.durable(), wal.segment());
        let crc_after_first = wal.tail_crc();
        // A no-op sync neither counts nor re-checksums.
        wal.sync();
        assert_eq!(wal.fsyncs, 1);
        for r in &recs[3..] {
            wal.append(r);
        }
        wal.sync();
        assert_eq!(wal.fsyncs, 2);
        assert_ne!(wal.tail_crc(), crc_after_first);
        assert_eq!(decode_all(wal.durable()).unwrap(), recs);
    }

    #[test]
    fn torn_tail_is_detected() {
        // Chop the segment at every byte offset: a cut inside a frame
        // must fail decode (frame length or CRC), and a bit flip in an
        // otherwise whole tail must fail CRC.
        let recs = sample_records(5);
        let mut wal = GroupCommitWal::with_window(5);
        for r in &recs {
            wal.append(r);
        }
        wal.sync();
        let seg = wal.segment().to_vec();
        let mut frame_ends = Vec::new();
        {
            let mut pos = 0;
            for r in &recs {
                let mut f = Vec::new();
                encode_record(&mut f, r);
                pos += f.len();
                frame_ends.push(pos);
            }
        }
        for cut in 1..seg.len() {
            let decoded = decode_all(&seg[..cut]);
            if frame_ends.contains(&cut) {
                assert!(
                    decoded.is_ok(),
                    "cut at frame boundary {cut} is a short log"
                );
            } else {
                assert!(decoded.is_err(), "torn frame at {cut} must fail");
            }
        }
        for i in 0..seg.len() {
            let mut torn = seg.clone();
            torn[i] ^= 0x40;
            assert!(decode_all(&torn).is_err(), "bit flip at {i} undetected");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::record::{decode_all, encode_record};
    use gdb_model::{Datum, Row, RowKey, TableId, Timestamp};
    use proptest::prelude::*;

    fn arb_payload() -> impl Strategy<Value = RedoPayload> {
        prop_oneof![
            (
                any::<u16>(),
                proptest::collection::vec(any::<i64>().prop_map(Datum::Int), 1..3),
                "[a-z]{0,16}",
            )
                .prop_map(|(t, k, s)| RedoPayload::Insert {
                    table: TableId(t as u32),
                    key: RowKey(k),
                    row: Row(vec![Datum::Text(s), Datum::Bool(true)]),
                }),
            (
                any::<u16>(),
                proptest::collection::vec(any::<i64>().prop_map(Datum::Int), 1..3)
            )
                .prop_map(|(t, k)| RedoPayload::Delete {
                    table: TableId(t as u32),
                    key: RowKey(k),
                }),
            Just(RedoPayload::PendingCommit),
            any::<u64>().prop_map(|ts| RedoPayload::Commit {
                commit_ts: Timestamp(ts)
            }),
        ]
    }

    proptest! {
        /// Framing invariance: for any record sequence and any window
        /// size, the group-committed segment is byte-identical to the
        /// concatenation of individually framed records, and decodes
        /// back to the original sequence.
        #[test]
        fn group_commit_framing_matches_singles(
            payloads in proptest::collection::vec(arb_payload(), 1..40),
            window in 1usize..12,
        ) {
            let recs: Vec<RedoRecord> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, payload)| RedoRecord {
                    lsn: Lsn(i as u64),
                    txn: TxnId((i / 4) as u64),
                    payload,
                })
                .collect();
            let mut wal = GroupCommitWal::with_window(window);
            let mut concat = Vec::new();
            for r in &recs {
                wal.append(r);
                encode_record(&mut concat, r);
                wal.commit();
            }
            wal.sync();
            prop_assert_eq!(wal.segment(), &concat[..]);
            prop_assert_eq!(wal.durable(), &concat[..]);
            prop_assert_eq!(decode_all(wal.segment()).unwrap(), recs);
            // Every boundary became durable exactly once.
            prop_assert_eq!(wal.synced_txns, recs.len() as u64);
        }

        /// A torn batch tail (truncation inside the last frame) never
        /// decodes cleanly: either the frame is short or its CRC fails.
        #[test]
        fn torn_batch_tail_never_decodes(
            payloads in proptest::collection::vec(arb_payload(), 1..10),
            cut_back in 1usize..20,
        ) {
            let recs: Vec<RedoRecord> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, payload)| RedoRecord {
                    lsn: Lsn(i as u64),
                    txn: TxnId(7),
                    payload,
                })
                .collect();
            let mut wal = GroupCommitWal::with_window(usize::MAX);
            for r in &recs {
                wal.append(r);
            }
            let seg = wal.segment();
            // Position of the last frame's start.
            let mut last_frame = Vec::new();
            encode_record(&mut last_frame, recs.last().unwrap());
            let tail_start = seg.len() - last_frame.len();
            let cut = seg.len() - cut_back.min(last_frame.len() - 1).max(1);
            let decoded = decode_all(&seg[..cut]);
            prop_assert!(decoded.is_err() || cut <= tail_start,
                "cut {cut} inside last frame (starts {tail_start}) decoded OK");
        }
    }
}
