//! SQL layer of the GaussDB-Global reproduction.
//!
//! Computing nodes parse queries, generate plans, and coordinate execution
//! on the data nodes (paper §II-A). This crate implements the SQL subset
//! the evaluation workloads (full TPC-C and Sysbench OLTP) require:
//!
//! * `CREATE TABLE` (primary key, `DISTRIBUTE BY HASH/RANGE/REPLICATION`),
//!   `DROP TABLE`, `CREATE INDEX`, `DROP INDEX`
//! * `INSERT`, `UPDATE`, `DELETE`, `SELECT` with `?` parameters (prepared
//!   statements), two-table joins, `BETWEEN`, `IN`, `ORDER BY`, `LIMIT`,
//!   `FOR UPDATE`, and the aggregates `COUNT(*)/COUNT(DISTINCT)/SUM/MIN/
//!   MAX/AVG`
//!
//! Execution is written against the [`access::DataAccess`] trait so the
//! same plans run on a single node (tests) or the distributed cluster
//! (the `globaldb` crate implements `DataAccess` with sharding, network
//! latency accounting, and MVCC snapshots).

pub mod access;
pub mod ast;
pub mod binder;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use access::DataAccess;
pub use ast::Statement;
pub use binder::bind_statement;
pub use exec::{execute, ExecOutput};
pub use parser::parse;
pub use plan::BoundStatement;

use gdb_model::GdbResult;
use gdb_storage::Catalog;

/// A prepared statement: parsed and bound once, executed many times with
/// different parameters (how the TPC-C driver runs, and how real clients
/// avoid per-call parse cost).
#[derive(Debug, Clone)]
pub struct Prepared {
    pub bound: BoundStatement,
    pub sql: String,
}

/// Parse and bind `sql` against `catalog`.
pub fn prepare(sql: &str, catalog: &Catalog) -> GdbResult<Prepared> {
    let stmt = parse(sql)?;
    let bound = bind_statement(&stmt, catalog)?;
    Ok(Prepared {
        bound,
        sql: sql.to_owned(),
    })
}
