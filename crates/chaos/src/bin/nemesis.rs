//! Replayable chaos runs from the command line:
//!
//! ```text
//! cargo run -p gdb-chaos --bin nemesis -- --seed 7 --duration 10s
//! cargo run -p gdb-chaos --bin nemesis -- --plan primary-failover
//! ```
//!
//! The same `--seed` always produces the identical fault schedule, event
//! interleaving, and trace. Exits non-zero if any invariant was violated.

use gdb_chaos::plan::canned;
use gdb_chaos::{run_nemesis, run_plan, ChaosConfig};
use gdb_simnet::SimDuration;
use std::process::ExitCode;

fn parse_duration(s: &str) -> Option<SimDuration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(SimDuration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.parse::<u64>().ok().map(SimDuration::from_secs);
    }
    s.parse::<u64>().ok().map(SimDuration::from_secs)
}

fn usage() -> ! {
    eprintln!(
        "usage: nemesis [--seed N] [--duration 60s|500ms] [--plan NAME]\n\
         plans: {}",
        canned::all()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut seed: u64 = 1;
    let mut duration = SimDuration::from_secs(3);
    let mut plan_name: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--duration" => {
                i += 1;
                duration = args
                    .get(i)
                    .and_then(|v| parse_duration(v))
                    .unwrap_or_else(|| usage());
            }
            "--plan" => {
                i += 1;
                plan_name = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut cfg = ChaosConfig::quick(seed);
    cfg.duration = duration;

    let report = match plan_name {
        Some(name) => match canned::by_name(&name) {
            Some(plan) => run_plan(plan, &cfg),
            None => usage(),
        },
        None => run_nemesis(seed, &cfg),
    };

    print!("{}", report.render());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
