//! Scale-tier routing gate: epoch-checked routing stays exact while a
//! batched migration rewires primaries under a 256-shard cluster.
//!
//! The contract (DESIGN.md "Scale tier"): during a cutover every
//! submitted operation either lands on the *current* owner or is
//! rejected with exactly one retryable [`GdbError::StaleRoute`] — a
//! stale CN is never silently served by the wrong shard. The values
//! read back prove it: each key carries a value derived from the key,
//! so a wrong-shard read would surface as a missing/mismatched row.

use globaldb::{Cluster, ClusterConfig, Datum, GdbError, SimDuration};

const SHARDS: usize = 256;
const REGIONS: usize = 5;
/// Primaries moved by the batched plan.
const MOVES: usize = 16;

#[test]
fn routing_stays_exact_under_batched_migration_at_256_shards() {
    let mut c = Cluster::new(ClusterConfig::globaldb_scale(REGIONS, SHARDS).with_seed(3));
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    let keys: Vec<i64> = (0..2_000i64).collect();
    c.bulk_load(
        table,
        keys.iter()
            .map(|&k| gdb_model::Row(vec![Datum::Int(k), Datum::Int(k * 10)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(c.now() + SimDuration::from_secs(1));

    // Pick one probe key per migrated shard (they see the cutover) plus
    // a spread of others (they must be untouched by it).
    let schema = c.db.catalog().table(table).unwrap().clone();
    let shard_of = |k: i64| {
        schema
            .shard_of_pk(&gdb_model::RowKey::single(k), SHARDS as u16)
            .0 as usize
    };
    let mut probes: Vec<i64> = Vec::new();
    for s in 0..MOVES {
        if let Some(&k) = keys.iter().find(|&&k| shard_of(k) == s) {
            probes.push(k);
        }
    }
    assert!(probes.len() >= MOVES / 2, "hash spread too narrow");
    probes.extend(keys.iter().step_by(97).copied());

    // One batched plan: move the first MOVES primaries one host over.
    let specs: Vec<globaldb::MigrationSpec> = (0..MOVES)
        .map(|s| {
            let host = c.db.topo().node_host(c.db.shards()[s].primary) as usize;
            globaldb::MigrationSpec {
                shard: s,
                kind: globaldb::MigrationKind::Primary,
                to_region: c.db.regions()[(host + 1) % REGIONS],
                to_host: ((host + 1) % REGIONS) as u16,
            }
        })
        .collect();
    c.start_plan(specs).unwrap();
    assert_eq!(c.db.stats().migrations_started, MOVES as u64);

    // Interleave probing with the migration's progress: every step,
    // every probe key is read from a rotating CN. A StaleRoute must be
    // retryable, must refresh the CN, and the single retry must land.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let cn_count = c.db.cns().len();
    let mut stale_seen = 0u64;
    for step in 0..24 {
        c.run_until(c.now() + SimDuration::from_millis(250));
        for (i, &k) in probes.iter().enumerate() {
            let cn = (step + i) % cn_count;
            let read = |c: &mut Cluster| {
                let at = c.now() + SimDuration::from_millis(1);
                let mut got: Option<i64> = None;
                c.run_transaction(cn, at, true, false, |txn| {
                    let out = txn.execute(&sel, &[Datum::Int(k)])?;
                    got = match out.rows().first().and_then(|r| r.0.first()) {
                        Some(Datum::Int(v)) => Some(*v),
                        _ => None,
                    };
                    Ok(())
                })
                .map(|_| got)
            };
            let v = match read(&mut c) {
                Ok(v) => v,
                Err(e) => {
                    assert!(
                        matches!(e, GdbError::StaleRoute(_)),
                        "only StaleRoute may surface mid-cutover, got {e}"
                    );
                    assert!(e.is_retryable());
                    stale_seen += 1;
                    // Exactly one retry: the reject refreshed the CN.
                    read(&mut c).expect("retry at the refreshed epoch must land")
                }
            };
            assert_eq!(
                v,
                Some(k * 10),
                "key {k} (shard {}) read a wrong/missing value mid-migration",
                shard_of(k)
            );
        }
    }
    assert_eq!(c.db.stats().stale_route_rejects, stale_seen);

    // The batch finished under exactly one epoch bump, and the table-
    // backed router agrees with the authoritative placement everywhere.
    c.run_until(c.now() + SimDuration::from_secs(30));

    // Force the stale path deterministically: a CN that missed the
    // announcement gets exactly one retryable reject, then lands.
    c.db.cns_mut()[0].route_epoch = 0;
    let k = probes[0];
    let at = c.now() + SimDuration::from_millis(1);
    let before = c.db.stats().stale_route_rejects;
    let err = c
        .run_transaction(0, at, true, false, |txn| {
            txn.execute(&sel, &[Datum::Int(k)]).map(|_| ())
        })
        .expect_err("stale CN must be rejected");
    assert!(matches!(err, GdbError::StaleRoute(_)), "got {err}");
    assert!(err.is_retryable());
    assert_eq!(c.db.stats().stale_route_rejects, before + 1);
    assert_eq!(c.db.cns()[0].route_epoch, c.db.routing_epoch());
    let at = c.now() + SimDuration::from_millis(1);
    c.run_transaction(0, at, true, false, |txn| {
        txn.execute(&sel, &[Datum::Int(k)]).map(|_| ())
    })
    .expect("single retry after refresh must succeed");
    assert_eq!(
        c.db.stats().stale_route_rejects,
        before + 1,
        "no second reject"
    );
    assert_eq!(c.db.stats().migrations_completed, MOVES as u64);
    assert_eq!(c.db.routing_epoch(), 1, "one bump for the whole batch");
    for (s, shard) in c.db.shards().iter().enumerate() {
        assert_eq!(c.db.routes().primary(s), shard.primary);
        assert_eq!(c.db.routes().owner_epoch(s), shard.owner_epoch);
    }
    // And the moved shards still serve their rows from every CN.
    for &k in &probes {
        let at = c.now() + SimDuration::from_millis(1);
        let mut got = None;
        c.run_transaction(0, at, true, false, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(k)])?;
            got = out.rows().first().map(|r| r.0.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(got, Some(vec![Datum::Int(k * 10)]));
    }
}
