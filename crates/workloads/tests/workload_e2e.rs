//! End-to-end workload runs: full TPC-C and Sysbench through the SQL
//! layer on simulated clusters.

use gdb_simnet::SimDuration;
use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::sysbench::{SysbenchMode, SysbenchScale, SysbenchWorkload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use globaldb::{Cluster, ClusterConfig, SimTime};

fn small_run() -> RunConfig {
    RunConfig {
        terminals: 8,
        duration: SimDuration::from_secs(3),
        warmup: SimDuration::from_millis(500),
        think_time: SimDuration::from_millis(20),
    }
}

#[test]
fn tpcc_full_mix_runs_and_preserves_invariants() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_one_region());
    let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), 11);
    wl.setup(&mut cluster).unwrap();
    let report = run_workload(&mut cluster, &mut wl, small_run());

    assert!(
        *report.commits.get("new_order").unwrap_or(&0) > 20,
        "expected NewOrder throughput, got {:?}",
        report.commits
    );
    assert!(report.commits.contains_key("payment"));
    assert!(report.tpmc() > 0.0);

    // Full TPC-C consistency conditions C1–C4 after quiescing.
    let now = cluster.now() + SimDuration::from_secs(1);
    cluster.run_until(now);
    let checked =
        gdb_workloads::tpcc::consistency::verify(&mut cluster, &TpccScale::tiny()).unwrap();
    assert!(checked > 4, "consistency checks ran: {checked}");
}

#[test]
fn tpcc_read_only_mix_uses_replicas_under_ror() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::read_only(), 13);
    wl.multi_shard_read_fraction = 0.5;
    wl.setup(&mut cluster).unwrap();
    let report = run_workload(&mut cluster, &mut wl, small_run());
    assert!(report.total_commits() > 30, "{}", report.summary());
    assert!(
        report.reads_on_replica > 0,
        "ROR must serve reads from replicas: {}",
        report.summary()
    );
    // Read-only mix writes nothing.
    assert_eq!(*report.commits.get("new_order").unwrap_or(&0), 0);
}

#[test]
fn tpcc_remote_transactions_cost_more_on_wan() {
    let run = |remote: f64| {
        let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
        let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), 17);
        wl.remote_cn_fraction = remote;
        wl.setup(&mut cluster).unwrap();
        let mut report = run_workload(&mut cluster, &mut wl, small_run());
        report.p99_latency("new_order")
    };
    let local = run(0.0);
    let remote = run(1.0);
    assert!(
        remote.as_micros() > local.as_micros(),
        "remote txns must pay WAN latency: local {local} vs remote {remote}"
    );
}

#[test]
fn sysbench_point_select_runs() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    let mut wl = SysbenchWorkload::new(SysbenchScale::tiny(), SysbenchMode::PointSelect, 23);
    wl.setup(&mut cluster).unwrap();
    let report = run_workload(&mut cluster, &mut wl, small_run());
    assert!(
        *report.commits.get("point_select").unwrap_or(&0) > 50,
        "{}",
        report.summary()
    );
    assert_eq!(report.total_aborts(), 0);
}

#[test]
fn sysbench_updates_replicate() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_one_region());
    let mut wl = SysbenchWorkload::new(SysbenchScale::tiny(), SysbenchMode::UpdateIndex, 29);
    wl.setup(&mut cluster).unwrap();
    let report = run_workload(&mut cluster, &mut wl, small_run());
    assert!(*report.commits.get("update_index").unwrap_or(&0) > 20);
    // Replicas converge after the run.
    let end = cluster.now() + SimDuration::from_secs(1);
    cluster.run_until(end);
    let table = cluster.db.catalog().table_by_name("sbtest0").unwrap().id;
    for shard in cluster.db.shards() {
        let primary_ts = shard
            .storage
            .table(table)
            .map(|t| t.versions_installed)
            .unwrap_or(0);
        for replica in &shard.replicas {
            let replica_ts = replica
                .applier
                .storage
                .table(table)
                .map(|t| t.versions_installed)
                .unwrap_or(0);
            assert!(
                replica_ts >= primary_ts,
                "replica behind after quiesce: {replica_ts} < {primary_ts}"
            );
        }
    }
}

#[test]
fn deterministic_reports_for_same_seed() {
    let run = || {
        let mut cluster = Cluster::new(ClusterConfig::globaldb_one_region());
        let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), 31);
        wl.setup(&mut cluster).unwrap();
        let report = run_workload(
            &mut cluster,
            &mut wl,
            RunConfig {
                terminals: 4,
                duration: SimDuration::from_secs(2),
                warmup: SimDuration::from_millis(200),
                think_time: SimDuration::from_millis(15),
            },
        );
        (report.total_commits(), report.total_aborts())
    };
    assert_eq!(run(), run());
}

#[test]
fn tpcc_runs_during_mode_transition_without_downtime() {
    use globaldb::{TmMode, TransitionDirection};
    let mut cfg = ClusterConfig::globaldb_one_region();
    cfg.tm_mode = TmMode::Gtm;
    let mut cluster = Cluster::new(cfg);
    let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), 37);
    wl.setup(&mut cluster).unwrap();

    // Kick off the transition, then immediately run the workload on top.
    cluster.start_transition(TransitionDirection::ToGClock);
    let report = run_workload(&mut cluster, &mut wl, small_run());
    assert!(
        report.total_commits() > 50,
        "cluster must stay online during the transition: {}",
        report.summary()
    );
    assert_eq!(
        cluster.db.last_transition_completed(),
        Some(TransitionDirection::ToGClock)
    );
    assert_eq!(cluster.db.cn_mode(0), TmMode::GClock);
    let _ = SimTime::ZERO;
}

/// Heavier soak: medium-scale TPC-C on the Three-City cluster with the
/// consistency conditions checked at the end. Run with
/// `cargo test -p gdb-workloads -- --ignored`.
#[test]
#[ignore = "heavier soak test (~1 min)"]
fn tpcc_medium_scale_soak() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    let mut wl = TpccWorkload::new(TpccScale::medium(), TpccMix::standard(), 99);
    wl.setup(&mut cluster).unwrap();
    let report = run_workload(
        &mut cluster,
        &mut wl,
        RunConfig {
            terminals: 48,
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(2),
            think_time: SimDuration::from_millis(10),
        },
    );
    assert!(report.tpmc() > 1000.0, "{}", report.summary());
    let end = cluster.now() + SimDuration::from_secs(2);
    cluster.run_until(end);
    let checked =
        gdb_workloads::tpcc::consistency::verify(&mut cluster, &TpccScale::medium()).unwrap();
    assert!(checked > 100);
}
