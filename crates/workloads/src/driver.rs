//! The closed-loop, multi-terminal workload driver.
//!
//! Terminals are simulated clients: each issues a transaction, waits for
//! completion (in virtual time), thinks, and repeats. A binary heap orders
//! terminals by their next start instant so the whole run is a single
//! deterministic interleaving of client work with the cluster's background
//! activity (replication, RCP rounds, heartbeats).

use crate::report::WorkloadReport;
use gdb_model::GdbResult;
use globaldb::{Cluster, SimDuration, SimTime, TxnOutcome};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a workload samples keys from `1..=n`. The hot set's identity is
/// fixed (low keys), so a run's skew is a pure function of the workload
/// seed and the whole benchmark replays deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// YCSB-style Zipfian: rank `r` drawn with probability ∝ `1/r^theta`
    /// and mapped to key `r`, so key 1 is the hottest. `theta` in
    /// `(0, 1)`; 0.99 is the YCSB default.
    Zipfian { theta: f64 },
    /// Sysbench's hot-spot shape: the first `hot_fraction` of the
    /// keyspace receives `hot_prob` of all accesses.
    Hotspot { hot_fraction: f64, hot_prob: f64 },
}

/// A key sampler with the Zipfian normalization constants precomputed
/// (building them is `O(n)`; drawing is `O(1)`).
#[derive(Debug, Clone)]
pub struct KeySampler {
    dist: KeyDistribution,
    n: i64,
    alpha: f64,
    eta: f64,
    zetan: f64,
}

fn zeta(n: i64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// Process-wide cache of the Zipfian normalization constants
/// `(alpha, eta, zetan)` keyed by `(n, theta)`. Computing them is the
/// `O(n)` part of building a sampler — at 10⁶ keys that is a million
/// `powf` calls — and every terminal of a run uses the same `(n, theta)`,
/// so pay it once per distinct pair per process. `f64` summation here is
/// deterministic (fixed iteration order), so a cache hit is bit-identical
/// to a recompute: draws are unchanged for existing seeds (asserted by
/// `zipf_cache_is_draw_identical`).
fn zipf_constants(n: i64, theta: f64) -> (f64, f64, f64) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type ConstMap = HashMap<(i64, u64), (f64, f64, f64)>;
    static CACHE: OnceLock<Mutex<ConstMap>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (n, theta.to_bits());
    if let Some(&hit) = cache.lock().unwrap().get(&key) {
        return hit;
    }
    let zetan = zeta(n, theta);
    let zeta2 = zeta(n.min(2), theta);
    let alpha = 1.0 / (1.0 - theta);
    let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
    let computed = (alpha, eta, zetan);
    cache.lock().unwrap().insert(key, computed);
    computed
}

impl KeySampler {
    pub fn new(dist: KeyDistribution, n: i64) -> Self {
        let n = n.max(1);
        let (alpha, eta, zetan) = match dist {
            KeyDistribution::Zipfian { theta } => zipf_constants(n, theta),
            _ => (0.0, 0.0, 0.0),
        };
        KeySampler {
            dist,
            n,
            alpha,
            eta,
            zetan,
        }
    }

    pub fn distribution(&self) -> KeyDistribution {
        self.dist
    }

    /// Draw one key in `1..=n`. `Uniform` makes exactly one
    /// `gen_range(1..=n)` call, so swapping a workload's inline uniform
    /// pick for a sampler leaves its draw sequence bit-identical.
    pub fn sample(&self, rng: &mut impl Rng) -> i64 {
        match self.dist {
            KeyDistribution::Uniform => rng.gen_range(1..=self.n),
            KeyDistribution::Zipfian { theta } => {
                // Gray et al.'s quick Zipf approximation (as in YCSB).
                let u: f64 = rng.gen_range(0.0..1.0);
                let uz = u * self.zetan;
                if uz < 1.0 {
                    1
                } else if uz < 1.0 + 0.5f64.powf(theta) {
                    2
                } else {
                    let r = 1.0 + self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
                    (r as i64).clamp(1, self.n)
                }
            }
            KeyDistribution::Hotspot {
                hot_fraction,
                hot_prob,
            } => {
                let hot = ((self.n as f64 * hot_fraction) as i64).clamp(1, self.n);
                if hot < self.n && !rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                    rng.gen_range(hot + 1..=self.n)
                } else {
                    rng.gen_range(1..=hot)
                }
            }
        }
    }
}

/// A benchmark workload: setup (schema + load) plus a per-terminal
/// transaction generator.
pub trait Workload {
    /// Create schema and load initial data.
    fn setup(&mut self, cluster: &mut Cluster) -> GdbResult<()>;

    /// Run one transaction for `terminal` starting at `at`. Returns the
    /// transaction kind label and its outcome.
    fn run_one(
        &mut self,
        cluster: &mut Cluster,
        terminal: usize,
        at: SimTime,
    ) -> (&'static str, GdbResult<TxnOutcome>);
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    pub terminals: usize,
    /// Measured virtual duration (after warmup).
    pub duration: SimDuration,
    /// Unmeasured warmup.
    pub warmup: SimDuration,
    /// Think time between a completion and the next request.
    pub think_time: SimDuration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            terminals: 60,
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(1),
            think_time: SimDuration::from_millis(10),
        }
    }
}

/// Run `workload` against `cluster` (setup must already have happened).
pub fn run_workload(
    cluster: &mut Cluster,
    workload: &mut dyn Workload,
    config: RunConfig,
) -> WorkloadReport {
    let t0 = cluster.now();
    let measure_from = t0 + config.warmup;
    let t_end = measure_from + config.duration;

    let replica_reads_before = cluster.db.stats().reads_on_replica;
    let primary_reads_before = cluster.db.stats().reads_on_primary;

    let mut report = WorkloadReport {
        duration: config.duration,
        ..Default::default()
    };

    // Stagger terminal starts to avoid a thundering herd at t0.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..config.terminals)
        .map(|i| Reverse((t0 + SimDuration::from_micros(1 + i as u64 * 137), i)))
        .collect();

    while let Some(Reverse((at, terminal))) = heap.pop() {
        if at >= t_end {
            break;
        }
        let (kind, result) = workload.run_one(cluster, terminal, at);
        let next = match result {
            Ok(outcome) => {
                if at >= measure_from {
                    report.record_commit(kind, outcome.latency);
                }
                outcome.completed_at + config.think_time
            }
            Err(e) if e.is_retryable() => {
                if at >= measure_from {
                    report.record_abort(kind);
                }
                at + config.think_time
            }
            Err(e) => panic!("workload error ({kind}): {e}"),
        };
        heap.push(Reverse((next, terminal)));
    }
    // Drain background work to the end of the window so replica/RCP state
    // is consistent for whoever inspects the cluster next.
    cluster.run_until(t_end);

    report.reads_on_replica = cluster.db.stats().reads_on_replica - replica_reads_before;
    report.reads_on_primary = cluster.db.stats().reads_on_primary - primary_reads_before;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sampler_matches_the_inline_draw() {
        let sampler = KeySampler::new(KeyDistribution::Uniform, 500);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert_eq!(sampler.sample(&mut a), b.gen_range(1..=500i64));
        }
    }

    #[test]
    fn zipfian_concentrates_on_low_keys() {
        let sampler = KeySampler::new(KeyDistribution::Zipfian { theta: 0.99 }, 1_000);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut top10 = 0;
        for _ in 0..10_000 {
            let k = sampler.sample(&mut rng);
            assert!((1..=1_000).contains(&k));
            if k <= 10 {
                top10 += 1;
            }
        }
        // Uniform would put ~100 draws in the top 10 keys; zipf(0.99)
        // puts roughly 4 000 there.
        assert!(top10 > 2_000, "only {top10}/10000 draws hit the top 10");
    }

    /// The shared-constants cache must be invisible to draws: a cached
    /// sampler's constants and its whole draw sequence are bit-identical
    /// to an uncached inline recompute of the published formulas.
    #[test]
    fn zipf_cache_is_draw_identical() {
        let (n, theta) = (5_000i64, 0.99f64);
        // Build twice: the second construction is guaranteed a cache hit.
        let first = KeySampler::new(KeyDistribution::Zipfian { theta }, n);
        let cached = KeySampler::new(KeyDistribution::Zipfian { theta }, n);
        // Inline reference (the pre-cache construction path).
        let zetan = zeta(n, theta);
        let zeta2 = zeta(n.min(2), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        for s in [&first, &cached] {
            assert_eq!(s.alpha.to_bits(), alpha.to_bits());
            assert_eq!(s.eta.to_bits(), eta.to_bits());
            assert_eq!(s.zetan.to_bits(), zetan.to_bits());
        }
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..5_000 {
            assert_eq!(first.sample(&mut a), cached.sample(&mut b));
        }
    }

    #[test]
    fn hotspot_honors_the_configured_mass() {
        let sampler = KeySampler::new(
            KeyDistribution::Hotspot {
                hot_fraction: 0.1,
                hot_prob: 0.9,
            },
            1_000,
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hot = 0;
        for _ in 0..10_000 {
            let k = sampler.sample(&mut rng);
            assert!((1..=1_000).contains(&k));
            if k <= 100 {
                hot += 1;
            }
        }
        assert!(
            (8_500..=9_500).contains(&hot),
            "hot set took {hot}/10000 draws, expected ~9000"
        );
    }
}
