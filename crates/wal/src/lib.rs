//! Redo (write-ahead) log for the GaussDB-Global reproduction.
//!
//! Primary data nodes describe every change as physical redo records, which
//! are shipped (asynchronously or synchronously) to replica data nodes and
//! replayed there (paper §II-A, §IV-A). This crate defines:
//!
//! * [`RedoRecord`] / [`RedoPayload`] — the record vocabulary, including the
//!   consistency-critical control records the paper calls out:
//!   `PENDING_COMMIT` (written *before* a transaction obtains its
//!   invocation timestamp, locking its tuples on replicas), `COMMIT` with
//!   the commit timestamp, and the 2PC records `PREPARE` /
//!   `COMMIT_PREPARED` / `ABORT_PREPARED` whose replay gates visibility of
//!   prepared transactions on replicas.
//! * A compact binary encoding with varints and a CRC32 per record —
//!   [`record::encode_record`] / [`record::decode_record`].
//! * [`segment::RedoBuffer`] — the per-primary append buffer from which the
//!   replication sender drains framed batches.

pub mod codec;
pub mod crc;
pub mod record;
pub mod segment;

pub use record::{
    DdlKind, EncodeScratch, Lsn, RedoPayload, RedoPayloadRef, RedoRecord, ReplayDecoder,
    ReplayStep, WalError,
};
pub use segment::{GroupCommitWal, LogBatch, RedoBuffer, SYNC_PAGE};
