//! The SQL lexer.

use gdb_model::{GdbError, GdbResult};

/// SQL tokens. Keywords are recognized case-insensitively and surfaced as
/// upper-cased `Keyword`s; identifiers keep their original (lower-cased)
/// spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Param, // `?`
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Semicolon,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "DROP",
    "TABLE",
    "INDEX",
    "ON",
    "PRIMARY",
    "KEY",
    "DISTRIBUTE",
    "BY",
    "HASH",
    "RANGE",
    "REPLICATION",
    "INT",
    "BIGINT",
    "DECIMAL",
    "TEXT",
    "VARCHAR",
    "CHAR",
    "BOOLEAN",
    "BOOL",
    "NULL",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "FOR",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "DISTINCT",
    "BETWEEN",
    "IN",
    "AS",
    "TRUE",
    "FALSE",
    "IS",
    "SPLIT",
    "AT",
    "NOT",
    "UNIQUE",
];

/// Tokenize a SQL string.
pub fn lex(sql: &str) -> GdbResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Line comment `--`.
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(GdbError::Parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Lte);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Gte);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(GdbError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_float))
                {
                    // Only treat '.' as part of the number if a digit follows.
                    if bytes[i] == b'.' {
                        if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| GdbError::Parse(format!("bad number {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| GdbError::Parse(format!("bad number {text}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_ascii_lowercase()));
                }
            }
            other => {
                return Err(GdbError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select FROM Where").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        let toks = lex("C_FIRST warehouse_1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("c_first".into()),
                Token::Ident("warehouse_1".into())
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("42 3.25 'it''s'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Str("it's".into())
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("= != <> < <= > >= ? , ( ) . * + - /").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Lte,
                Token::Gt,
                Token::Gte,
                Token::Param,
                Token::Comma,
                Token::LParen,
                Token::RParen,
                Token::Dot,
                Token::Star,
                Token::Plus,
                Token::Minus,
                Token::Slash,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("select -- a comment\n 1").unwrap();
        assert_eq!(toks, vec![Token::Keyword("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn errors_surface() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("se#lect").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn trailing_dot_not_part_of_number() {
        // "1." followed by non-digit: Int then Dot.
        let toks = lex("1.x").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }
}
