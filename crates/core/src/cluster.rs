//! The GlobalDB cluster coordinator: state ownership and the public API.
//!
//! [`GlobalDb`] owns the subsystems — topology + message plane, GTM,
//! per-CN transaction managers, shards with their replication state,
//! catalog, RCP calculators, stats, observability — and the sibling
//! modules drive them through narrow `pub(crate)` seams:
//!
//! * [`crate::txn`] — the transaction pipeline (begin → execute →
//!   prepare → commit-point → commit-wait → replicate-ack);
//! * [`crate::repl_driver`] — redo log shipping and replica replay;
//! * [`crate::rcp_driver`] — RCP rounds, heartbeats, vacuum;
//! * [`crate::lifecycle`] — crash/restore/promote/rejoin fault surface;
//! * [`crate::frontend`] — SQL/DDL/bulk-load entry points;
//! * [`crate::transition`] — the online GTM↔GClock transition.
//!
//! Fields are `pub(crate)`: external crates go through the accessor
//! methods (or the typed APIs above), so cross-layer mutation stays
//! inside this crate.

use crate::config::{ClusterConfig, Placement, RoutingPolicy};
use crate::event::{CoreEvent, CoreSim};
use crate::net::MessagePlane;
use crate::rcp_driver::GtmRate;
use crate::repl_driver::{Replica, Shard};
use crate::ror::RorService;
use crate::shardlog::ShardLog;
use crate::stats::{ClusterStats, TxnOutcome};
use crate::transition::TransitionTrace;
use crate::txn::TxnHandle;
use gdb_consistency::{CollectorElection, DdlTracker, RcpCalculator};
use gdb_model::{GdbResult, TableId, TableSchema, Timestamp, TxnId};
use gdb_obs::{MetricsReport, Obs};
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simclock::GClock;
use gdb_simnet::{NetNodeId, RegionId, Sim, SimTime, Topology};
use gdb_storage::{Catalog, DataNodeStorage};
use gdb_txnmgr::{CnTm, GtmServer, TmMode, TransitionOrchestrator};

/// One computing node.
pub struct Cn {
    pub node: NetNodeId,
    pub region: RegionId,
    pub tm: CnTm,
    /// The RCP value distributed to this CN by its region's collector.
    pub rcp: Timestamp,
    /// The routing-epoch this CN's cached route table was refreshed at.
    /// Refreshed by the cutover announcement (or a stale-route reject).
    pub route_epoch: u64,
}

/// The full cluster state (the "world" of the event simulation).
pub struct GlobalDb {
    pub(crate) config: ClusterConfig,
    pub(crate) topo: Topology,
    /// The typed RPC chokepoint: all per-message latency/byte charges.
    pub(crate) plane: MessagePlane,
    pub(crate) regions: Vec<RegionId>,
    pub(crate) gtm: GtmServer,
    pub(crate) gtm_node: NetNodeId,
    pub(crate) orchestrator: TransitionOrchestrator,
    pub(crate) cns: Vec<Cn>,
    pub(crate) shards: Vec<Shard>,
    /// Authoritative catalog (CNs are stateless and share it).
    pub(crate) catalog: Catalog,
    pub(crate) ddl: DdlTracker,
    /// Per-region RCP calculators (collector-CN state).
    pub(crate) rcp: Vec<RcpCalculator>,
    /// Per-region collector elections.
    pub(crate) collectors: Vec<CollectorElection>,
    pub(crate) gtm_rate: GtmRate,
    /// Per-table replication-mode overrides (the paper's future-work item:
    /// synchronous replicated tables co-existing with asynchronous ones,
    /// trading update latency for maximal freshness on selected tables).
    pub(crate) table_replication:
        std::collections::HashMap<TableId, gdb_replication::ReplicationMode>,
    pub(crate) stats: ClusterStats,
    /// Observability: trace spans (off by default) + metrics registry.
    pub(crate) obs: Obs,
    /// Pre-registered metric handles for the hot record sites.
    pub(crate) hot: crate::hot::HotMetrics,
    /// Flat O(1) routing table: shard → (primary, owner epoch) plus the
    /// per-CN nearest-shard index. Rebuilt *only* when placement changes
    /// (batched cutover, replica promotion) — every route between
    /// rebuilds is a plain `Vec` load. See [`GlobalDb::rebuild_routes`].
    pub(crate) routes: gdb_router::RouteTable,
    /// Last skyline pick per (CN, shard), flat-indexed
    /// `cn * shard_count + shard` — a change is a re-selection (counted,
    /// and spanned when tracing is on).
    pub(crate) last_skyline_pick: Vec<Option<crate::ror::ReadTarget>>,
    /// Per-CN flag: `true` while the CN's clock-sync daemon is cut off
    /// from its regional time device (fault injection). While blocked the
    /// clock keeps drifting and its error bound grows until sync resumes.
    pub(crate) clock_sync_blocked: Vec<bool>,
    pub(crate) txn_seq: u64,
    /// Set when an online transition completes (observed by tests/benches).
    pub(crate) last_transition_completed: Option<gdb_txnmgr::TransitionDirection>,
    /// Phase boundaries of the in-flight DUAL transition (span source).
    pub(crate) transition_trace: Option<TransitionTrace>,
    /// Current cluster routing epoch: bumped atomically at every batched
    /// migration-plan cutover that moves at least one primary.
    pub(crate) routing_epoch: u64,
    /// In-flight shard migrations (members of batched plans; at most one
    /// per shard).
    pub(crate) migrations: Vec<crate::migrate::Migration>,
    /// Monotone migration id guarding scheduled migration events.
    pub(crate) migration_seq: u64,
    /// Monotone batched-plan id.
    pub(crate) plan_seq: u64,
    /// Hosts being drained for retirement (elastic scale-in), as
    /// `(region, host)` slots.
    pub(crate) draining: Vec<(RegionId, u16)>,
    /// Slot of the last host whose data nodes were retired.
    pub(crate) last_host_retired: Option<(RegionId, u16)>,
    /// Every host slot ever decommissioned — excluded from placement.
    pub(crate) retired_hosts: Vec<(RegionId, u16)>,
    /// Per-shard live load counters (hot-shard detection input).
    pub(crate) shard_load: Vec<crate::migrate::ShardLoad>,
    /// Shard of the last completed migration (observed by tests/benches).
    pub(crate) last_migration_completed: Option<usize>,
    /// Shard + reason of the last aborted migration.
    pub(crate) last_migration_aborted: Option<(usize, String)>,
}

impl GlobalDb {
    // ---- Read accessors (the public view of the coordinator state) ----

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (chaos heal-all and topology-level tests).
    pub fn topo_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// The message plane's per-RpcKind traffic accounting.
    pub fn plane(&self) -> &MessagePlane {
        &self.plane
    }

    /// Swap the message plane's delivery backend (see
    /// [`crate::net::Transport`]). The default is the simulated path;
    /// `gdb-realnet` installs thread-channel or loopback-TCP backends.
    pub fn set_transport(&mut self, transport: Box<dyn crate::net::Transport>) {
        self.plane.set_transport(transport);
    }

    /// The active transport's name ("sim", "thread", "tcp").
    pub fn transport_name(&self) -> &'static str {
        self.plane.transport_name()
    }

    /// Gracefully shut the active transport down (join node threads,
    /// close sockets; no-op for the simulated path).
    pub fn shutdown_transport(&mut self) {
        self.plane.shutdown_transport();
    }

    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    pub fn gtm(&self) -> &GtmServer {
        &self.gtm
    }

    pub fn gtm_node(&self) -> NetNodeId {
        self.gtm_node
    }

    pub fn cns(&self) -> &[Cn] {
        &self.cns
    }

    /// Mutable CN access (tests flip clock health / TM state directly).
    pub fn cns_mut(&mut self) -> &mut [Cn] {
        &mut self.cns
    }

    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Mutable shard access (tests adjust replica state directly).
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Per-region RCP calculators, indexed like [`GlobalDb::regions`].
    pub fn rcp_calculators(&self) -> &[RcpCalculator] {
        &self.rcp
    }

    pub fn last_transition_completed(&self) -> Option<gdb_txnmgr::TransitionDirection> {
        self.last_transition_completed
    }

    /// Current cluster routing epoch (bumped at every migration cutover).
    pub fn routing_epoch(&self) -> u64 {
        self.routing_epoch
    }

    /// The earliest-started in-flight migration, if any.
    pub fn migration(&self) -> Option<&crate::migrate::Migration> {
        self.migrations.first()
    }

    /// All in-flight migrations, in start order.
    pub fn migrations(&self) -> &[crate::migrate::Migration] {
        &self.migrations
    }

    /// Shards with a migration in flight, in start order.
    pub fn migrating_shards(&self) -> Vec<usize> {
        self.migrations.iter().map(|m| m.shard).collect()
    }

    /// Hosts currently draining toward retirement.
    pub fn draining_hosts(&self) -> &[(RegionId, u16)] {
        &self.draining
    }

    /// Slot of the last host whose data nodes were retired.
    pub fn last_host_retired(&self) -> Option<(RegionId, u16)> {
        self.last_host_retired
    }

    /// Host slots decommissioned by a drain: the rebalancer must never
    /// place anything on them again.
    pub fn retired_hosts(&self) -> &[(RegionId, u16)] {
        &self.retired_hosts
    }

    /// Per-shard live load counters, indexed like [`GlobalDb::shards`].
    pub fn shard_load(&self) -> &[crate::migrate::ShardLoad] {
        &self.shard_load
    }

    /// Shard of the last completed migration.
    pub fn last_migration_completed(&self) -> Option<usize> {
        self.last_migration_completed
    }

    /// Shard and reason of the last aborted migration.
    pub fn last_migration_aborted(&self) -> Option<&(usize, String)> {
        self.last_migration_aborted.as_ref()
    }

    // ---- Small shared helpers -----------------------------------------

    /// Next cluster-unique transaction id originating at `cn`.
    pub(crate) fn next_txn_id(&mut self, cn: usize) -> TxnId {
        self.txn_seq += 1;
        TxnId::compose(cn as u16, self.txn_seq)
    }

    /// Lazily synchronize a CN's clock with its regional time device
    /// (the paper syncs every 1 ms; we fast-forward to the latest
    /// boundary instead of simulating every round).
    pub(crate) fn sync_cn_clock(&mut self, cn: usize, now: SimTime) {
        let interval = self.config.gclock.sync_interval;
        if interval.is_zero() || self.clock_sync_blocked.get(cn).copied().unwrap_or(false) {
            return;
        }
        let aligned =
            SimTime::from_nanos((now.as_nanos() / interval.as_nanos()) * interval.as_nanos());
        let g: &mut GClock = &mut self.cns[cn].tm.gclock;
        if g.clock().last_sync() < aligned {
            g.sync(aligned);
        }
    }

    /// The shard index owning `key` of `table`.
    pub(crate) fn shard_of(&self, schema: &TableSchema, key: &gdb_model::RowKey) -> usize {
        schema.shard_of_pk(key, self.shards.len() as u16).0 as usize
    }

    /// Index of a CN's region in [`GlobalDb::regions`].
    pub(crate) fn region_idx_of_cn(&self, cn: usize) -> usize {
        let region = self.cns[cn].region;
        self.regions.iter().position(|&r| r == region).unwrap_or(0)
    }

    /// Nearest shard to a CN (for reads of replicated tables). O(1):
    /// reads the cached per-CN index in the routing table. The cache is
    /// decision-identical to the old per-call `min_by_key` RTT scan
    /// because `nominal_rtt` only changes relative order when a primary
    /// *moves* — exactly when [`GlobalDb::rebuild_routes`] runs.
    pub(crate) fn nearest_shard(&self, cn: usize) -> usize {
        debug_assert_eq!(self.routes.nearest(cn), {
            let cn_node = self.cns[cn].node;
            (0..self.shards.len())
                .min_by_key(|&s| self.topo.nominal_rtt(cn_node, self.shards[s].primary))
                .unwrap_or(0)
        });
        self.routes.nearest(cn)
    }

    /// Rebuild the flat routing table from the current placement. Must
    /// be called at every point a shard primary can change: cluster
    /// construction, batched-plan cutover, and replica promotion. Cheap
    /// relative to the events that trigger it (O(shards × CNs), and
    /// those events are rare by design).
    pub(crate) fn rebuild_routes(&mut self) {
        let placement: Vec<(NetNodeId, u64)> = self
            .shards
            .iter()
            .map(|s| (s.primary, s.owner_epoch))
            .collect();
        let cn_nodes: Vec<NetNodeId> = self.cns.iter().map(|c| c.node).collect();
        let topo = &self.topo;
        self.routes =
            gdb_router::RouteTable::build(self.routing_epoch, &placement, &cn_nodes, |a, b| {
                topo.nominal_rtt(a, b)
            });
    }

    /// The flat routing table (read-only diagnostics / benches).
    pub fn routes(&self) -> &gdb_router::RouteTable {
        &self.routes
    }

    /// Current RCP visible at a CN.
    pub fn cn_rcp(&self, cn: usize) -> Timestamp {
        self.cns[cn].rcp
    }

    pub fn cn_mode(&self, cn: usize) -> TmMode {
        self.cns[cn].tm.mode
    }

    // The RoutingPolicy is re-checked per query; nothing cluster-global
    // changes when it flips, so tests can toggle it live.
    pub fn set_routing(&mut self, routing: RoutingPolicy) {
        self.config.routing = routing;
    }

    /// Run a closed transaction at virtual time `at` directly against the
    /// world state — the entry point for logic running *inside* a
    /// scheduled event (fault-plan probes), where the [`Cluster`] wrapper
    /// (which would re-enter the scheduler) is not available.
    pub fn run_transaction_at<R>(
        &mut self,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
        f: impl FnOnce(&mut TxnHandle) -> GdbResult<R>,
    ) -> GdbResult<(R, TxnOutcome)> {
        let mut handle = TxnHandle::begin(self, cn, at, read_only, single_shard)?;
        match f(&mut handle) {
            Ok(value) => match handle.commit() {
                Ok(outcome) => {
                    self.stats.record_txn(&outcome);
                    self.obs
                        .metrics
                        .record(self.hot.txn.latency_us, outcome.latency);
                    Ok((value, outcome))
                }
                Err(e) => {
                    // Commit-time failure: the handle already rolled back.
                    self.stats.aborted += 1;
                    Err(e)
                }
            },
            Err(e) => {
                let outcome = handle.abort();
                self.stats.record_txn(&outcome);
                Err(e)
            }
        }
    }

    /// Mirror externally maintained totals (cluster stats, topology
    /// traffic, message-plane RPC accounting) into the registry, then
    /// freeze it. The report is a pure function of the run: identical
    /// seeds produce identical reports.
    pub fn metrics_snapshot(&mut self) -> MetricsReport {
        self.sync_derived_metrics();
        self.obs.metrics.snapshot()
    }

    /// Refresh the per-replica freshness gauges against virtual time
    /// `now`: RCP lag (how far each replica's replayed commit timestamp
    /// trails the present) and log-ship backlog (sealed redo records the
    /// shipping channel has not yet drained). These are the live values
    /// a DBA inspects before redirecting read-only traffic (paper §IV);
    /// [`Cluster::metrics_snapshot`] calls this automatically.
    pub fn sync_replica_lag_metrics(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        let m = &mut self.obs.metrics;
        for (s, shard) in self.shards.iter().enumerate() {
            for (r, replica) in shard.replicas.iter().enumerate() {
                let lag = now_us.saturating_sub(replica.applier.max_commit_ts().as_micros());
                let backlog = replica.channel.backlog(shard.log.sealed());
                m.gauge(
                    gdb_replication::metrics::replica_rcp_lag_gauge(s, r),
                    lag as f64,
                );
                m.gauge(
                    gdb_replication::metrics::replica_backlog_gauge(s, r),
                    backlog as f64,
                );
            }
        }
    }

    fn sync_derived_metrics(&mut self) {
        let m = &mut self.obs.metrics;
        m.set_counter(gdb_txnmgr::metrics::COMMITTED, self.stats.committed);
        m.set_counter(gdb_txnmgr::metrics::ABORTED, self.stats.aborted);
        m.set_counter(gdb_txnmgr::metrics::LOCK_WAITS, self.stats.lock_waits);
        m.set_counter(
            gdb_txnmgr::metrics::COMMIT_WAIT_TOTAL_US,
            self.stats.commit_wait_total.as_micros(),
        );
        m.set_counter(
            gdb_router::metrics::READS_ON_REPLICA,
            self.stats.reads_on_replica,
        );
        m.set_counter(
            gdb_router::metrics::READS_ON_PRIMARY,
            self.stats.reads_on_primary,
        );
        m.set_counter(
            gdb_router::metrics::REPLICA_BLOCKED_FALLBACKS,
            self.stats.replica_blocked_fallbacks,
        );
        m.set_counter(gdb_consistency::metrics::RCP_ROUNDS, self.stats.rcp_rounds);
        m.set_counter(
            gdb_consistency::metrics::RCP_ROUNDS_ABANDONED,
            self.stats.rcp_rounds_abandoned,
        );
        m.set_counter(
            gdb_consistency::metrics::COLLECTOR_FAILOVERS,
            self.stats.collector_failovers,
        );
        m.set_counter(
            gdb_consistency::metrics::HEARTBEATS_SENT,
            self.stats.heartbeats_sent,
        );
        m.set_counter(
            gdb_consistency::metrics::VERSIONS_VACUUMED,
            self.stats.versions_vacuumed,
        );
        m.set_counter(
            gdb_router::metrics::STALE_ROUTE_REJECTS,
            self.stats.stale_route_rejects,
        );
        m.set_counter(
            crate::migrate::metrics::MIGRATIONS_STARTED,
            self.stats.migrations_started,
        );
        m.set_counter(
            crate::migrate::metrics::MIGRATIONS_COMPLETED,
            self.stats.migrations_completed,
        );
        m.set_counter(
            crate::migrate::metrics::MIGRATIONS_ABORTED,
            self.stats.migrations_aborted,
        );
        m.set_counter(crate::migrate::metrics::ROUTING_EPOCH, self.routing_epoch);
        for (s, load) in self.shard_load.iter().enumerate() {
            m.set_counter(
                format!("{}.{s}", crate::migrate::metrics::SHARD_OPS_PREFIX),
                load.ops,
            );
            m.set_counter(
                format!("{}.{s}", crate::migrate::metrics::SHARD_BYTES_PREFIX),
                load.bytes,
            );
            for (r, &ops) in load.by_region.iter().enumerate() {
                m.set_counter(
                    format!("{}.{s}.r{r}", crate::migrate::metrics::SHARD_OPS_PREFIX),
                    ops,
                );
            }
        }
        for (s, shard) in self.shards.iter().enumerate() {
            m.gauge(
                gdb_storage::metrics::arena_resident_bytes_gauge(s),
                shard.storage.resident_bytes() as f64,
            );
        }
        let total = self.topo.total_stats();
        m.set_counter(gdb_simnet::metrics::MSGS, total.messages);
        m.set_counter(gdb_simnet::metrics::BYTES, total.bytes);
        let cross = self.topo.cross_region_totals();
        m.set_counter(gdb_simnet::metrics::CROSS_REGION_MSGS, cross.messages);
        m.set_counter(gdb_simnet::metrics::CROSS_REGION_BYTES, cross.bytes);
        self.plane.mirror_metrics(&self.topo, &mut self.obs.metrics);
    }
}

/// The cluster plus its event engine — the object users interact with.
pub struct Cluster {
    pub db: GlobalDb,
    pub sim: CoreSim,
}

impl Cluster {
    /// Build a cluster and start its background activities.
    pub fn new(config: ClusterConfig) -> Self {
        let (topo, placement) = config.build_topology();
        let Placement {
            regions,
            cn_nodes,
            gtm_node,
            shards: shard_placement,
        } = placement;

        let mut cns = Vec::new();
        for (i, (node, region)) in cn_nodes.iter().enumerate() {
            let mut gclock = GClock::new(
                config.seed.wrapping_add(i as u64 * 7919),
                // Deterministic per-CN drift within ±(bound/2).
                ((i as f64 * 37.0) % config.gclock.max_drift_ppm)
                    - config.gclock.max_drift_ppm / 2.0,
                config.gclock,
            );
            gclock.sync(SimTime::ZERO);
            cns.push(Cn {
                node: *node,
                region: *region,
                tm: CnTm::new(config.tm_mode, gclock),
                rcp: Timestamp::ZERO,
                route_epoch: 0,
            });
        }

        let shards: Vec<Shard> = shard_placement
            .into_iter()
            .map(|sp| Shard {
                primary: sp.primary,
                region: sp.primary_region,
                storage: DataNodeStorage::new(),
                log: ShardLog::new(),
                replicas: sp
                    .replicas
                    .into_iter()
                    .map(|(node, region)| Replica {
                        node,
                        region,
                        applier: ReplicaApplier::new(DataNodeStorage::new()),
                        channel: ShippingChannel::new(config.codec),
                        busy_until: SimTime::ZERO,
                        stream_free: SimTime::ZERO,
                        last_arrival: SimTime::ZERO,
                        epoch: 0,
                    })
                    .collect(),
                owner_epoch: 0,
            })
            .collect();

        // Per-region RCP: expected slots are the replicas in that region.
        let mut rcp = Vec::new();
        let mut collectors = Vec::new();
        for &region in &regions {
            let mut expected = Vec::new();
            let mut slot = 0u32;
            for shard in &shards {
                for replica in &shard.replicas {
                    if replica.region == region {
                        expected.push(slot);
                    }
                    slot += 1;
                }
            }
            rcp.push(RcpCalculator::new(expected));
            let cn_count_in_region = cns.iter().filter(|c| c.region == region).count();
            collectors.push(CollectorElection::new(cn_count_in_region.max(1)));
        }

        let cn_count = cns.len();
        let shard_count = shards.len();
        let region_count = regions.len();
        let plane = MessagePlane::new(regions[0]);
        let mut obs = Obs::new();
        let hot = crate::hot::HotMetrics::register(&mut obs.metrics);
        let mut db = GlobalDb {
            config,
            topo,
            plane,
            regions,
            gtm: GtmServer::new(),
            gtm_node,
            orchestrator: TransitionOrchestrator::new(cn_count),
            cns,
            shards,
            catalog: Catalog::new(),
            ddl: DdlTracker::new(),
            rcp,
            collectors,
            gtm_rate: GtmRate::default(),
            table_replication: std::collections::HashMap::new(),
            stats: ClusterStats::default(),
            obs,
            hot,
            routes: gdb_router::RouteTable::default(),
            last_skyline_pick: vec![None; cn_count * shard_count],
            clock_sync_blocked: vec![false; cn_count],
            txn_seq: 0,
            last_transition_completed: None,
            transition_trace: None,
            routing_epoch: 0,
            migrations: Vec::new(),
            migration_seq: 0,
            plan_seq: 0,
            draining: Vec::new(),
            last_host_retired: None,
            retired_hosts: Vec::new(),
            shard_load: vec![
                crate::migrate::ShardLoad {
                    ops: 0,
                    bytes: 0,
                    by_region: vec![0; region_count],
                };
                shard_count
            ],
            last_migration_completed: None,
            last_migration_aborted: None,
        };
        db.gtm.set_mode(db.config.tm_mode);
        db.rebuild_routes();

        let mut sim: CoreSim = Sim::new();
        // Schedule the recurring background activities (typed events —
        // stored inline in the queue, no per-event allocation).
        for s in 0..db.shards.len() {
            let interval = db.config.flush_interval;
            sim.schedule_event_at(SimTime::ZERO + interval, CoreEvent::FlushShard { shard: s });
        }
        for r in 0..db.regions.len() {
            let interval = db.config.rcp_interval;
            sim.schedule_event_at(SimTime::ZERO + interval, CoreEvent::RcpRound { region: r });
        }
        let hb = db.config.heartbeat_interval;
        sim.schedule_event_at(SimTime::ZERO + hb, CoreEvent::Heartbeat);
        if let Some(interval) = db.config.vacuum_interval {
            sim.schedule_event_at(SimTime::ZERO + interval, CoreEvent::Vacuum);
        }

        Cluster { db, sim }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Advance virtual time, processing background activity.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(&mut self.db, t);
    }

    /// After bulk loading, fast-forward the replication cursors and RCP so
    /// replicas are "caught up" with the loaded state.
    pub fn finish_load(&mut self) {
        let now = self.sim.now();
        self.db.heartbeat(now);
        self.sync_replicas_now();
        for r in 0..self.db.regions.len() {
            self.db.rcp_round(r, now);
        }
    }

    /// Run a closed transaction at virtual time `at` from `cn`.
    ///
    /// `read_only` marks the transaction ROR-eligible (it will read at the
    /// RCP snapshot from replicas when the routing policy allows);
    /// `single_shard` engages the paper's single-shard begin bypass in
    /// GClock mode.
    pub fn run_transaction<R>(
        &mut self,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
        f: impl FnOnce(&mut TxnHandle) -> GdbResult<R>,
    ) -> GdbResult<(R, TxnOutcome)> {
        let at = at.max(self.sim.now());
        self.sim.run_until(&mut self.db, at);
        self.db
            .run_transaction_at(cn, at, read_only, single_shard, f)
    }

    /// Kick off an online TM-mode transition (Figs. 2–3). The cluster
    /// stays fully available; watch
    /// [`GlobalDb::last_transition_completed`] for completion.
    pub fn start_transition(&mut self, direction: gdb_txnmgr::TransitionDirection) {
        crate::transition::start_transition(&mut self.db, &mut self.sim, direction);
    }

    /// Start migrating `shard` to a freshly provisioned data node on
    /// `(to_region, to_host)`: snapshot copy → redo catch-up → cutover
    /// barrier with an atomic routing-epoch bump. The shard stays fully
    /// available throughout; watch [`GlobalDb::last_migration_completed`]
    /// / [`GlobalDb::last_migration_aborted`] for the outcome.
    pub fn start_migration(
        &mut self,
        shard: usize,
        to_region: gdb_simnet::RegionId,
        to_host: u16,
    ) -> GdbResult<()> {
        crate::migrate::start_migration(&mut self.db, &mut self.sim, shard, to_region, to_host)
    }

    /// Start a batched migration plan: k distinct shards (primary or
    /// replica moves) copied concurrently and cut over together under
    /// one routing-epoch bump. Returns the plan id.
    pub fn start_plan(&mut self, specs: Vec<crate::migrate::MigrationSpec>) -> GdbResult<u64> {
        crate::migrate::start_plan(&mut self.db, &mut self.sim, specs)
    }

    /// The shard of the earliest-started in-flight migration, if any.
    pub fn migration_in_flight(&self) -> Option<usize> {
        self.db.migrations.first().map(|m| m.shard)
    }

    /// Run a vacuum pass at the current virtual time.
    pub fn vacuum(&mut self) -> usize {
        self.db.vacuum()
    }

    /// Metrics snapshot with the time-derived per-replica freshness
    /// gauges refreshed at the engine's current virtual time. Prefer
    /// this over [`GlobalDb::metrics_snapshot`] whenever the engine is
    /// at hand.
    pub fn metrics_snapshot(&mut self) -> MetricsReport {
        let now = self.sim.now();
        self.db.sync_replica_lag_metrics(now);
        self.db.metrics_snapshot()
    }

    /// Crash a shard's primary data node (paper §IV: replicas keep serving
    /// read-only queries until the primary recovers or a replica is
    /// promoted). Writes to the shard fail until promotion.
    ///
    /// Thin shim over the fault-injection API ([`GlobalDb::crash_primary`]).
    pub fn fail_primary(&mut self, shard_idx: usize) {
        self.db.crash_primary(shard_idx);
    }

    /// Promote one of a shard's replicas to primary (paper §IV).
    ///
    /// Durability follows the replication mode exactly:
    /// * under synchronous quorum replication every acknowledged commit
    ///   was already durable on the replicas, so the outstanding redo is
    ///   force-delivered to the chosen replica before the switch — no
    ///   acknowledged commit is lost;
    /// * under asynchronous replication the replica only has what reached
    ///   it — the unreplicated tail of acknowledged commits is lost, the
    ///   trade-off the paper accepts for WAN performance.
    ///
    /// The remaining replicas full-resync from the new primary and the
    /// shard starts a fresh redo stream.
    pub fn promote_replica(&mut self, shard_idx: usize, replica_idx: usize) -> GdbResult<()> {
        let now = self.sim.now();
        self.db.promote_replica_at(shard_idx, replica_idx, now)
    }

    /// Re-admit a recovered node as a replica of `shard` (paper §IV: a
    /// failed primary "recovers" — here it returns in the replica role).
    /// The node full-resyncs from the current primary snapshot and then
    /// follows the redo stream from the current sealed head.
    pub fn rejoin_as_replica(&mut self, shard_idx: usize, node: NetNodeId) -> GdbResult<()> {
        let now = self.sim.now();
        self.db.rejoin_as_replica_at(shard_idx, node, now)
    }

    /// Access the ROR service view (for diagnostics / tests).
    pub fn ror_service(&mut self) -> RorService<'_> {
        RorService { db: &mut self.db }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `Send + Sync` audit behind the realnet backends: a real
    /// harness hands `GlobalDb` (with its boxed transport, socket
    /// handles and all) across threads. Note `Cluster` is deliberately
    /// *not* audited — the sim engine holds `Rc`-capturing scheduled
    /// closures (chaos oracles), which are confined to the driver thread.
    #[test]
    fn globaldb_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GlobalDb>();
    }
}
