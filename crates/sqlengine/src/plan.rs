//! Bound statements and access paths (the logical/physical plan).

use gdb_model::{ColumnDef, Datum, DistributionKind, IndexId, TableId};

/// A bound (name-resolved) expression. Column references carry a *slot*
/// (position in the FROM list — 0 = outer, 1 = inner join table) and the
/// column index within that table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Datum),
    Param(usize),
    ColRef {
        slot: usize,
        idx: usize,
    },
    Bin(Box<Expr>, crate::ast::BinOp, Box<Expr>),
    Not(Box<Expr>),
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// True if the expression references any column of `slot`.
    pub fn references_slot(&self, slot: usize) -> bool {
        match self {
            Expr::Lit(_) | Expr::Param(_) => false,
            Expr::ColRef { slot: s, .. } => *s == slot,
            Expr::Bin(l, _, r) => l.references_slot(slot) || r.references_slot(slot),
            Expr::Not(e) => e.references_slot(slot),
            Expr::Between { expr, lo, hi } => {
                expr.references_slot(slot) || lo.references_slot(slot) || hi.references_slot(slot)
            }
            Expr::InList { expr, list } => {
                expr.references_slot(slot) || list.iter().any(|e| e.references_slot(slot))
            }
            Expr::IsNull { expr, .. } => expr.references_slot(slot),
        }
    }

    /// Highest slot referenced, if any.
    pub fn max_slot(&self) -> Option<usize> {
        match self {
            Expr::Lit(_) | Expr::Param(_) => None,
            Expr::ColRef { slot, .. } => Some(*slot),
            Expr::Bin(l, _, r) => opt_max(l.max_slot(), r.max_slot()),
            Expr::Not(e) => e.max_slot(),
            Expr::Between { expr, lo, hi } => {
                opt_max(opt_max(expr.max_slot(), lo.max_slot()), hi.max_slot())
            }
            Expr::InList { expr, list } => list
                .iter()
                .map(|e| e.max_slot())
                .fold(expr.max_slot(), opt_max),
            Expr::IsNull { expr, .. } => expr.max_slot(),
        }
    }
}

fn opt_max(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// How to fetch rows of one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full primary-key equality: a single-row lookup.
    PointLookup { key: Vec<Expr> },
    /// Primary-key prefix equality plus an optional inclusive range on the
    /// next key column. Strict bounds stay in the residual filter.
    PkRange {
        prefix: Vec<Expr>,
        low: Option<Expr>,
        high: Option<Expr>,
    },
    /// Secondary-index prefix-equality lookup.
    IndexPrefix { index: IndexId, prefix: Vec<Expr> },
    /// Scan everything (last resort).
    FullScan,
}

impl AccessPath {
    /// True if this path touches a single row at most.
    pub fn is_point(&self) -> bool {
        matches!(self, AccessPath::PointLookup { .. })
    }
}

/// The inner side of a two-table join: fetched once per outer row; its key
/// expressions may reference slot 0.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    pub table: TableId,
    pub access: AccessPath,
    pub residual: Option<Expr>,
}

/// An aggregate in the projection.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: crate::ast::AggFunc,
    /// `None` = `COUNT(*)`.
    pub arg: Option<Expr>,
    pub distinct: bool,
}

/// The output of a SELECT: plain expressions or aggregates (mixing is not
/// supported — TPC-C never mixes them).
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Columns(Vec<Expr>),
    Aggregates(Vec<AggSpec>),
}

/// A bound SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Tables by slot (1 or 2 entries).
    pub tables: Vec<TableId>,
    pub outer_access: AccessPath,
    pub outer_residual: Option<Expr>,
    pub join: Option<JoinPlan>,
    pub projection: Projection,
    /// `(slot, column, descending)`.
    pub order_by: Option<(usize, usize, bool)>,
    pub limit: Option<usize>,
    pub for_update: bool,
}

/// Bound DDL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundDdl {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Vec<usize>,
        distribution_key: Vec<usize>,
        distribution: DistributionKind,
    },
    DropTable(TableId),
    CreateIndex {
        table: TableId,
        name: String,
        columns: Vec<usize>,
    },
    DropIndex {
        name: String,
        table: TableId,
    },
}

/// A fully bound statement, ready to execute (repeatedly, with params).
#[allow(clippy::large_enum_variant)] // statements are prepared once, not stored in bulk
#[derive(Debug, Clone, PartialEq)]
pub enum BoundStatement {
    Ddl(BoundDdl),
    Insert {
        table: TableId,
        /// Each row is full-width, in schema column order.
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: TableId,
        /// `(column index, new-value expression)`; the expression may
        /// reference the current row via slot 0.
        sets: Vec<(usize, Expr)>,
        access: AccessPath,
        residual: Option<Expr>,
    },
    Delete {
        table: TableId,
        access: AccessPath,
        residual: Option<Expr>,
    },
    Select(SelectPlan),
}

impl BoundStatement {
    /// Tables this statement touches (for DDL-visibility checks and shard
    /// routing).
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            BoundStatement::Ddl(d) => match d {
                BoundDdl::DropTable(t)
                | BoundDdl::CreateIndex { table: t, .. }
                | BoundDdl::DropIndex { table: t, .. } => vec![*t],
                BoundDdl::CreateTable { .. } => vec![],
            },
            BoundStatement::Insert { table, .. }
            | BoundStatement::Update { table, .. }
            | BoundStatement::Delete { table, .. } => vec![*table],
            BoundStatement::Select(s) => s.tables.clone(),
        }
    }

    /// True for read-only statements (ROR-eligible).
    pub fn is_read_only(&self) -> bool {
        matches!(self, BoundStatement::Select(s) if !s.for_update)
    }
}
