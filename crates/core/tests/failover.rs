//! Primary-failure and promotion tests (paper §IV): replicas keep serving
//! reads while the primary is down; promotion restores writes; durability
//! of acknowledged commits follows the replication mode.

use globaldb::{Cluster, ClusterConfig, Datum, ReplicationMode, SimDuration, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

struct Setup {
    cluster: Cluster,
    shard: usize,
    /// An id that hashes to `shard`.
    id: i64,
    /// A CN co-located with that shard's primary region.
    cn: usize,
}

fn setup(config: ClusterConfig) -> Setup {
    let mut cluster = Cluster::new(config);
    cluster
        .ddl(
            "CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) \
             DISTRIBUTE BY HASH(k)",
        )
        .unwrap();
    let table = cluster.db.catalog().table_by_name("kv").unwrap().id;
    cluster
        .bulk_load(
            table,
            (0..200i64)
                .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Int(0)]))
                .collect(),
        )
        .unwrap();
    cluster.finish_load();
    let schema = cluster.db.catalog().table(table).unwrap().clone();
    let shard = 0usize;
    let id = (0..200i64)
        .find(|&i| {
            schema
                .shard_of_pk(
                    &gdb_model::RowKey::single(i),
                    cluster.db.shards().len() as u16,
                )
                .0 as usize
                == shard
        })
        .expect("some id on shard 0");
    let region = cluster.db.shards()[shard].region;
    let cn = (0..cluster.db.cns().len())
        .find(|&i| cluster.db.cns()[i].region == region)
        .unwrap_or(0);
    Setup {
        cluster,
        shard,
        id,
        cn,
    }
}

#[test]
fn reads_survive_primary_failure_writes_fail_until_promotion() {
    let mut s = setup(ClusterConfig::globaldb_one_region());
    let c = &mut s.cluster;
    // Commit a value and let replication settle.
    c.execute_sql(
        s.cn,
        t(10),
        "UPDATE kv SET v = 7 WHERE k = ?",
        &[Datum::Int(s.id)],
    )
    .unwrap();
    c.run_until(t(500));

    c.fail_primary(s.shard);

    // Read-only queries keep working via ROR.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let ((), o) = c
        .run_transaction(s.cn, t(510), true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(s.id)])?;
            let _: () = assert_eq!(out.rows()[0].0[0], Datum::Int(7));
            Ok(())
        })
        .unwrap();
    assert!(o.used_replica, "read must come from a replica");

    // Writes to the failed shard error.
    let res = c.execute_sql(
        s.cn,
        t(520),
        "UPDATE kv SET v = 8 WHERE k = ?",
        &[Datum::Int(s.id)],
    );
    assert!(res.is_err(), "writes must fail while the primary is down");

    // Promote a replica: writes recover, committed state intact.
    c.promote_replica(s.shard, 0).unwrap();
    let (_, o) = c
        .execute_sql(
            s.cn,
            t(600),
            "UPDATE kv SET v = 9 WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert!(o.commit_ts.is_some());
    let (out, _) = c
        .execute_sql(
            s.cn,
            t(700),
            "SELECT v FROM kv WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert_eq!(out.rows()[0].0[0], Datum::Int(9));
}

#[test]
fn sync_quorum_promotion_loses_nothing() {
    let mut config = ClusterConfig::globaldb_three_city();
    config.replication = ReplicationMode::SyncRemoteQuorum { quorum: 2 };
    let mut s = setup(config);
    let c = &mut s.cluster;

    // Commit, then crash the primary at the exact instant the client
    // received the acknowledgment.
    let (_, o) = c
        .execute_sql(
            s.cn,
            t(10),
            "UPDATE kv SET v = 42 WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert!(o.commit_ts.is_some());
    c.run_until(o.completed_at);
    c.fail_primary(s.shard);
    c.promote_replica(s.shard, 0).unwrap();

    // The acknowledged commit survives: it was quorum-durable.
    let (out, _) = c
        .execute_sql(
            s.cn,
            t(50),
            "SELECT v FROM kv WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert_eq!(
        out.rows()[0].0[0],
        Datum::Int(42),
        "sync-replicated commit must survive failover"
    );
}

#[test]
fn async_promotion_may_lose_the_unreplicated_tail() {
    let mut s = setup(ClusterConfig::globaldb_one_region()); // Async mode
    let c = &mut s.cluster;

    // Commit and crash before any flush interval elapses.
    let (_, o) = c
        .execute_sql(
            s.cn,
            t(10),
            "UPDATE kv SET v = 42 WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert!(o.commit_ts.is_some(), "async commit acknowledged");
    c.fail_primary(s.shard);
    c.promote_replica(s.shard, 0).unwrap();

    // The tail never shipped: the acknowledged value is gone (the paper's
    // async durability trade-off), and the row is back at its loaded state.
    let (out, _) = c
        .execute_sql(
            s.cn,
            t(50),
            "SELECT v FROM kv WHERE k = ?",
            &[Datum::Int(s.id)],
        )
        .unwrap();
    assert_eq!(
        out.rows()[0].0[0],
        Datum::Int(0),
        "async tail is lost on immediate failover"
    );
}

#[test]
fn cluster_keeps_running_after_promotion() {
    let mut s = setup(ClusterConfig::globaldb_one_region());
    let c = &mut s.cluster;
    c.run_until(t(100));
    c.fail_primary(s.shard);
    c.promote_replica(s.shard, 1).unwrap();

    // Sustained writes across ALL shards after the promotion.
    let upd = c.prepare("UPDATE kv SET v = v + 1 WHERE k = ?").unwrap();
    for i in 0..60u64 {
        let ((), _) = c
            .run_transaction(
                (i % 3) as usize,
                t(110) + SimDuration::from_millis(i * 3),
                false,
                true,
                |txn| {
                    txn.execute(&upd, &[Datum::Int((i % 200) as i64)])
                        .map(|_| ())
                },
            )
            .unwrap();
    }
    // Replication to the resynced replicas and the RCP still work.
    c.run_until(t(1500));
    let sel = c.prepare("SELECT COUNT(*) FROM kv").unwrap();
    let ((), o) = c
        .run_transaction(1, t(1510), true, true, |txn| {
            let out = txn.execute(&sel, &[])?;
            let _: () = assert_eq!(out.rows()[0].0[0], Datum::Int(200));
            Ok(())
        })
        .unwrap();
    let _ = o;
    // Heartbeats still advance the RCP past the promotion point.
    assert!(c.db.cn_rcp(0).as_micros() > 1_000_000);
}

#[test]
fn failed_primary_rejoins_as_replica_and_catches_up() {
    let mut s = setup(ClusterConfig::globaldb_one_region());
    let c = &mut s.cluster;
    c.run_until(t(100));
    let old_primary = c.db.shards()[s.shard].primary;
    c.fail_primary(s.shard);
    c.promote_replica(s.shard, 0).unwrap();
    let replicas_before = c.db.shards()[s.shard].replicas.len();

    // The recovered node rejoins in the replica role.
    c.rejoin_as_replica(s.shard, old_primary).unwrap();
    assert_eq!(c.db.shards()[s.shard].replicas.len(), replicas_before + 1);

    // New writes flow to it through the fresh redo stream.
    for i in 0..20u64 {
        c.execute_sql(
            s.cn,
            t(200) + SimDuration::from_millis(i * 5),
            "UPDATE kv SET v = ? WHERE k = ?",
            &[Datum::Int(i as i64), Datum::Int(s.id)],
        )
        .unwrap();
    }
    c.run_until(t(2000));
    let rejoined = c.db.shards()[s.shard]
        .replicas
        .iter()
        .find(|r| r.node == old_primary)
        .expect("rejoined replica present");
    // It has replayed the post-rejoin stream and reports a fresh
    // max-commit timestamp (so it participates in the RCP again).
    assert!(rejoined.applier.records_applied > 0, "stream followed");
    assert!(rejoined.applier.max_commit_ts().as_micros() > 200_000);
    // And its data matches the primary.
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    let key = gdb_model::RowKey::single(s.id);
    let snap = globaldb::Timestamp::MAX;
    let primary_val = c.db.shards()[s.shard]
        .storage
        .table(table)
        .unwrap()
        .read(&key, snap)
        .unwrap()
        .row
        .clone();
    let replica_val = c.db.shards()[s.shard]
        .replicas
        .iter()
        .find(|r| r.node == old_primary)
        .unwrap()
        .applier
        .storage
        .table(table)
        .unwrap()
        .read(&key, snap)
        .unwrap()
        .row
        .clone();
    assert_eq!(primary_val, replica_val);
}
