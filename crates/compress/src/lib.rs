//! LZ4-block-format-style compression, implemented from scratch.
//!
//! GaussDB-Global compresses redo logs with LZ4 before shipping them across
//! regions (paper §V-A). This crate provides a compatible-in-spirit LZ77
//! codec using the LZ4 block layout (token byte, literal run, little-endian
//! 16-bit match offset, extension bytes), tuned for the highly repetitive
//! byte patterns of physical redo logs.
//!
//! The format produced here is *self-contained*, not interoperable with
//! reference LZ4 (we prepend the decompressed length as a varint so the
//! decoder can pre-allocate); everything else follows the block spec:
//!
//! ```text
//! [uncompressed-len varint] then sequences of:
//!   token: (literal_len:4 | match_len-4:4)
//!   [literal_len 255-extension bytes]*  literals
//!   offset: u16 LE (1..=65535)          — absent in the final sequence
//!   [match_len 255-extension bytes]*
//! ```

pub mod lz;

pub use lz::{compress, compress_into, decompress, decompress_into, CompressError, MatchTable};

/// Which codec a replication channel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Ship raw bytes.
    #[default]
    None,
    /// LZ4-style compression (paper's configuration).
    Lz4,
}

impl Codec {
    /// Encode `data`, returning the wire bytes.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Lz4 => compress(data),
        }
    }

    /// [`Codec::encode`] into a caller-owned buffer (cleared first),
    /// reusing `table` for the compressor's match state. Byte-identical
    /// output; allocation-free once the buffers are warm — the shape the
    /// per-batch log-ship path wants.
    pub fn encode_into(&self, data: &[u8], table: &mut MatchTable, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Codec::None => out.extend_from_slice(data),
            Codec::Lz4 => compress_into(data, table, out),
        }
    }

    /// Decode wire bytes produced by [`Codec::encode`].
    pub fn decode(&self, wire: &[u8]) -> Result<Vec<u8>, CompressError> {
        match self {
            Codec::None => Ok(wire.to_vec()),
            Codec::Lz4 => decompress(wire),
        }
    }

    /// [`Codec::decode`] into a caller-owned buffer (cleared first).
    pub fn decode_into(&self, wire: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        match self {
            Codec::None => {
                out.clear();
                out.extend_from_slice(wire);
                Ok(())
            }
            Codec::Lz4 => decompress_into(wire, out),
        }
    }

    /// The on-wire size of `data` under this codec (for network cost
    /// modelling without materializing the encoding twice).
    pub fn wire_size(&self, data: &[u8]) -> usize {
        match self {
            Codec::None => data.len(),
            Codec::Lz4 => compress(data).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_none_is_identity() {
        let data = b"hello world".to_vec();
        let wire = Codec::None.encode(&data);
        assert_eq!(wire, data);
        assert_eq!(Codec::None.decode(&wire).unwrap(), data);
    }

    #[test]
    fn codec_lz4_roundtrip_and_shrinks_redundancy() {
        let data: Vec<u8> = b"redo-record:".iter().cycle().take(4096).copied().collect();
        let wire = Codec::Lz4.encode(&data);
        assert!(
            wire.len() < data.len() / 4,
            "got {} of {}",
            wire.len(),
            data.len()
        );
        assert_eq!(Codec::Lz4.decode(&wire).unwrap(), data);
        assert_eq!(Codec::Lz4.wire_size(&data), wire.len());
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let data: Vec<u8> = b"redo-record:".iter().cycle().take(4096).copied().collect();
        let mut table = MatchTable::default();
        let mut wire = Vec::new();
        let mut plain = Vec::new();
        for codec in [Codec::None, Codec::Lz4] {
            // Dirty the buffers to prove reuse clears them.
            wire.extend_from_slice(b"stale");
            plain.extend_from_slice(b"stale");
            codec.encode_into(&data, &mut table, &mut wire);
            assert_eq!(wire, codec.encode(&data), "{codec:?} encode differs");
            codec.decode_into(&wire, &mut plain).unwrap();
            assert_eq!(plain, data, "{codec:?} decode differs");
        }
        // Back-to-back blocks through one table stay byte-identical
        // (the match state must not leak across blocks).
        let other: Vec<u8> = (0u32..1000).flat_map(|i| i.to_le_bytes()).collect();
        let mut second = Vec::new();
        Codec::Lz4.encode_into(&other, &mut table, &mut second);
        assert_eq!(second, Codec::Lz4.encode(&other));
    }
}
