//! The LZ77 codec using the LZ4 block layout.

use std::fmt;

/// Errors surfaced while decoding a compressed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The wire bytes ended mid-sequence.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset { offset: usize, produced: usize },
    /// Decoded length does not match the header.
    LengthMismatch { expected: usize, actual: usize },
    /// The varint length header is malformed.
    BadHeader,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed block truncated"),
            CompressError::BadOffset { offset, produced } => {
                write!(f, "match offset {offset} exceeds produced bytes {produced}")
            }
            CompressError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header said {expected}")
            }
            CompressError::BadHeader => write!(f, "malformed length header"),
        }
    }
}

impl std::error::Error for CompressError {}

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
/// The last bytes of the input are always emitted as literals (mirrors the
/// LZ4 end-of-block conditions and keeps the hot loop bound-check friendly).
const TAIL_LITERALS: usize = 12;
const HASH_LOG: u32 = 16;

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - HASH_LOG)) as usize
}

#[inline]
fn read_u32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]])
}

fn write_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let mut v: usize = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CompressError::BadHeader)?;
        *pos += 1;
        v |= ((b & 0x7f) as usize) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 42 {
            return Err(CompressError::BadHeader);
        }
    }
}

fn write_len_nibble(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn emit_sequence(
    out: &mut Vec<u8>,
    literals: &[u8],
    match_offset: Option<(usize, usize)>, // (offset, match_len)
) {
    let lit_len = literals.len();
    let lit_nibble = lit_len.min(15) as u8;
    let match_nibble = match match_offset {
        Some((_, ml)) => (ml - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push((lit_nibble << 4) | match_nibble);
    if lit_len >= 15 {
        write_len_nibble(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, ml)) = match_offset {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if ml - MIN_MATCH >= 15 {
            write_len_nibble(out, ml - MIN_MATCH - 15);
        }
    }
}

/// Compress `data` into a self-contained block.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table = MatchTable::default();
    compress_into(data, &mut table, &mut out);
    out
}

/// Reusable hash table for [`compress_into`]. Each call re-clears it
/// (a 256 KiB memset, far cheaper than the allocation-plus-zeroing a
/// fresh `vec!` per block costs on the per-batch ship path).
#[derive(Debug)]
pub struct MatchTable(Vec<u32>);

impl Default for MatchTable {
    fn default() -> Self {
        MatchTable(vec![0u32; 1 << HASH_LOG])
    }
}

/// [`compress`] appending to a caller-owned buffer — byte-identical
/// output, no allocations once `out` and `table` have warmed up.
pub fn compress_into(data: &[u8], table: &mut MatchTable, out: &mut Vec<u8>) {
    write_varint(out, data.len());
    let n = data.len();
    if n < MIN_MATCH + TAIL_LITERALS {
        if n > 0 {
            emit_sequence(out, data, None);
        }
        return;
    }

    table.0.iter_mut().for_each(|s| *s = 0);
    let table = &mut table.0; // stores position + 1
    let match_limit = n - TAIL_LITERALS;
    let mut i = 0usize;
    let mut anchor = 0usize;

    while i < match_limit {
        let h = hash4(read_u32(data, i));
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let pos = cand - 1;
            if i - pos <= MAX_OFFSET && read_u32(data, pos) == read_u32(data, i) {
                // Extend the match forward.
                let mut ml = MIN_MATCH;
                while i + ml < match_limit && data[pos + ml] == data[i + ml] {
                    ml += 1;
                }
                emit_sequence(out, &data[anchor..i], Some((i - pos, ml)));
                i += ml;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit_sequence(out, &data[anchor..], None);
}

/// Decompress a block produced by [`compress`].
pub fn decompress(wire: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::new();
    decompress_into(wire, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer (cleared first, capacity
/// reused across calls on the replay path).
pub fn decompress_into(wire: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
    out.clear();
    let mut pos = 0usize;
    let expected = read_varint(wire, &mut pos)?;
    // Cap the pre-allocation: a corrupt header must not abort the process.
    out.reserve(expected.min(1 << 20));
    if expected == 0 {
        return if pos == wire.len() {
            Ok(())
        } else {
            Err(CompressError::LengthMismatch {
                expected,
                actual: wire.len() - pos,
            })
        };
    }

    let read_extended = |pos: &mut usize, nibble: usize| -> Result<usize, CompressError> {
        let mut len = nibble;
        if nibble == 15 {
            loop {
                let b = *wire.get(*pos).ok_or(CompressError::Truncated)?;
                *pos += 1;
                len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        Ok(len)
    };

    while pos < wire.len() {
        let token = wire[pos];
        pos += 1;
        let lit_len = read_extended(&mut pos, (token >> 4) as usize)?;
        if pos + lit_len > wire.len() {
            return Err(CompressError::Truncated);
        }
        if out.len() + lit_len > expected {
            return Err(CompressError::LengthMismatch {
                expected,
                actual: out.len() + lit_len,
            });
        }
        out.extend_from_slice(&wire[pos..pos + lit_len]);
        pos += lit_len;
        if pos == wire.len() {
            break; // final literal-only sequence
        }
        if pos + 2 > wire.len() {
            return Err(CompressError::Truncated);
        }
        let offset = u16::from_le_bytes([wire[pos], wire[pos + 1]]) as usize;
        pos += 2;
        let match_len = MIN_MATCH + read_extended(&mut pos, (token & 0x0f) as usize)?;
        if out.len() + match_len > expected {
            return Err(CompressError::LengthMismatch {
                expected,
                actual: out.len() + match_len,
            });
        }
        if offset == 0 || offset > out.len() {
            return Err(CompressError::BadOffset {
                offset,
                produced: out.len(),
            });
        }
        // Byte-by-byte copy: offsets smaller than the match length overlap
        // (RLE-style), which is the whole point of LZ77.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }

    if out.len() != expected {
        return Err(CompressError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "roundtrip failed");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcdefghijklmno"); // below MIN_MATCH + TAIL_LITERALS
    }

    #[test]
    fn incompressible_random_bytes_roundtrip() {
        // A fixed pseudo-random buffer (xorshift) with no repeats.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Expansion overhead stays small (< 1%).
        assert!(c.len() < data.len() + data.len() / 100 + 16);
    }

    #[test]
    fn highly_repetitive_compresses_hard() {
        let data = vec![0xAB; 100_000];
        let c = compress(&data);
        assert!(c.len() < 1_000, "RLE case: got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_copy() {
        // "abcabcabc..." exercises offset < match_len copies.
        let data: Vec<u8> = b"abc".iter().cycle().take(5_000).copied().collect();
        roundtrip(&data);
    }

    #[test]
    fn redo_log_like_payload_ratio() {
        // Synthetic redo records: repeating structure with varying ids —
        // the realistic case for log shipping.
        let mut data = Vec::new();
        for i in 0u32..2_000 {
            data.extend_from_slice(b"INSERT:warehouse=");
            data.extend_from_slice(&(i % 600).to_le_bytes());
            data.extend_from_slice(b":district=");
            data.extend_from_slice(&(i % 10).to_le_bytes());
            data.extend_from_slice(b":payload=");
            data.extend_from_slice(&[b'x'; 64]);
        }
        let c = compress(&data);
        assert!(
            c.len() * 3 < data.len(),
            "expected ≥3x on log-like data, got {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        // 300 distinct bytes (no matches) forces lit_len > 15 + 255.
        let data: Vec<u8> = (0..300u32).flat_map(|i| i.to_le_bytes()).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_wire_is_an_error() {
        let c = compress(&vec![7u8; 1000]);
        for cut in [1, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_offset_is_an_error() {
        // Hand-craft: header len=8, token with 0 literals + match, offset 9
        // pointing before the start.
        let mut wire = Vec::new();
        wire.push(8); // varint length 8
        wire.push(0x04); // 0 literals, match_len = 4 + 4
        wire.extend_from_slice(&9u16.to_le_bytes());
        match decompress(&wire) {
            Err(CompressError::BadOffset { .. }) => {}
            other => panic!("expected BadOffset, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let mut c = compress(b"hello world hello world hello world");
        // Tamper with the declared length.
        c[0] = c[0].wrapping_add(1);
        assert!(matches!(
            decompress(&c),
            Err(CompressError::LengthMismatch { .. }) | Err(CompressError::Truncated)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn roundtrip_structured(
            seed in any::<u8>(),
            reps in 1usize..200,
            chunk in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            // Repetitive data (chunk repeated) with a seed-based prefix.
            let mut data = vec![seed; 8];
            for _ in 0..reps {
                data.extend_from_slice(&chunk);
            }
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn decoder_never_panics_on_garbage(wire in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&wire); // must not panic, Err is fine
        }
    }
}
