//! Metric names owned by the redo-replication subsystem.
//!
//! Shipping totals are recorded live at flush time (channels are replaced
//! on promote/rejoin, so their internal stats cannot be summed after the
//! fact).

/// Log-shipping batches sealed and sent.
pub const SHIP_BATCHES: &str = "replication.ship.batches";
/// Redo records shipped.
pub const SHIP_RECORDS: &str = "replication.ship.records";
/// Redo bytes before compression.
pub const SHIP_RAW_BYTES: &str = "replication.ship.raw_bytes";
/// Redo bytes on the wire (post-compression).
pub const SHIP_WIRE_BYTES: &str = "replication.ship.wire_bytes";
/// Seal-to-arrival latency of one shipped batch.
pub const SHIP_BATCH_US: &str = "replication.ship.batch_us";

/// Per-replica RCP lag gauge prefix: `<prefix>.s<shard>.r<replica>` is
/// how far (in µs of virtual time) the replica's replayed commit
/// timestamp trails the present — the freshness a DBA inspects before
/// redirecting read-only traffic (paper §IV).
pub const REPLICA_RCP_LAG_PREFIX: &str = "replication.replica_rcp_lag_us";
/// Per-replica log-ship backlog gauge prefix: `<prefix>.s<shard>.r<replica>`
/// is the number of sealed redo records the shipping channel has not yet
/// drained to the replica.
pub const REPLICA_BACKLOG_PREFIX: &str = "replication.replica_backlog_records";

/// Gauge name for one replica's RCP lag.
pub fn replica_rcp_lag_gauge(shard: usize, replica: usize) -> String {
    format!("{REPLICA_RCP_LAG_PREFIX}.s{shard}.r{replica}")
}

/// Gauge name for one replica's log-ship backlog.
pub fn replica_backlog_gauge(shard: usize, replica: usize) -> String {
    format!("{REPLICA_BACKLOG_PREFIX}.s{shard}.r{replica}")
}

use gdb_obs::{CounterId, HistId, MetricsRegistry};

/// Pre-registered handles for the per-batch shipping hot path (recorded
/// once per shipped batch at flush time).
#[derive(Debug, Clone, Copy)]
pub struct ShipHandles {
    pub batches: CounterId,
    pub records: CounterId,
    pub raw_bytes: CounterId,
    pub wire_bytes: CounterId,
    pub batch_us: HistId,
}

impl ShipHandles {
    pub fn register(m: &mut MetricsRegistry) -> Self {
        ShipHandles {
            batches: m.register_counter(SHIP_BATCHES),
            records: m.register_counter(SHIP_RECORDS),
            raw_bytes: m.register_counter(SHIP_RAW_BYTES),
            wire_bytes: m.register_counter(SHIP_WIRE_BYTES),
            batch_us: m.register_histogram(SHIP_BATCH_US),
        }
    }
}
